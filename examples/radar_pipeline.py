#!/usr/bin/env python3
"""Radar pipeline: compile-time feasibility analysis on a second workload.

A classic radar processing chain (ADC -> per-channel beamform / pulse
compression / doppler -> CFAR fusion -> tracking) put through the full
toolchain, demonstrating the layered compile-time verdicts:

1. **feasibility bounds** — assignment-invariant necessary conditions
   (window structure, node throughput, bisection).  A placement that
   fails these can never be scheduled, at any rate, before any LP runs;
2. **the compiler** — the sufficient check: bounds may pass while the
   LPs still prove the rate unreachable (necessary is not sufficient);
3. the compiled schedule, visualized as link-occupancy bars.

Run:  python examples/radar_pipeline.py
"""

from repro import (
    CompilerConfig,
    SchedulingError,
    binary_hypercube,
    compile_schedule,
    feasibility_bounds,
    link_occupancy_chart,
    standard_setup,
)
from repro.report import format_table
from repro.tfg.radar import radar_tfg

LOADS = (0.3, 0.5, 0.7, 0.9, 1.0)


def main() -> None:
    tfg = radar_tfg(4)
    topology = binary_hypercube(5)  # 32 nodes for 15 tasks
    print(f"workload: {tfg!r} on {topology!r}\n")

    rows = []
    compiled = None
    for bandwidth in (64.0, 128.0):
        setup = standard_setup(tfg, topology, bandwidth=bandwidth)
        bounds = feasibility_bounds(
            setup.timing, topology, setup.allocation
        )
        verdicts = []
        for load in LOADS:
            tau_in = setup.tau_in_for_load(load)
            if not bounds.admits(tau_in):
                verdicts.append(f"{load:.1f}:bound")
                continue
            try:
                routing = compile_schedule(
                    setup.timing, topology, setup.allocation, tau_in,
                    CompilerConfig(seed=0),
                )
                verdicts.append(f"{load:.1f}:OK")
                compiled = routing
            except SchedulingError as error:
                verdicts.append(f"{load:.1f}:{error.stage}")
        rows.append((
            f"{int(bandwidth)}",
            "ok" if bounds.structurally_feasible else "never schedulable",
            f"{bounds.min_period:.1f}",
            "  ".join(verdicts),
        ))

    print(format_table(
        ("B (bytes/us)", "window check", "min period bound (us)",
         "per-load verdict"),
        rows,
        title="Radar chain: bounds (necessary) vs compiler (sufficient)",
    ))
    print(
        "\n'bound' = rejected by the assignment-invariant bounds alone; "
        "a stage name = the LP pipeline proved it; OK = schedule compiled "
        "and machine-validated."
    )

    if compiled is not None:
        print()
        print(link_occupancy_chart(compiled.schedule, width=48, top=6))


if __name__ == "__main__":
    main()
