#!/usr/bin/env python3
"""Real-time vision pipeline: wormhole routing vs scheduled routing.

The paper's motivating scenario: camera frames arrive periodically and a
recognition result must come out at the same rate.  This example runs the
DVB task-flow graph on a binary 6-cube at several input rates and shows
what the application actually observes:

- under wormhole routing, output inconsistency — recognition results
  arriving at irregular intervals even though frames arrive like
  clockwork;
- under scheduled routing, a constant output interval equal to the frame
  interval, at every rate the compiler accepts.

Run:  python examples/vision_pipeline.py
"""

from repro import (
    CompilerConfig,
    ScheduledRoutingExecutor,
    SchedulingError,
    WormholeSimulator,
    binary_hypercube,
    compile_schedule,
    dvb_tfg,
    standard_setup,
)
from repro.report import format_spike, format_table


def main() -> None:
    setup = standard_setup(dvb_tfg(5), binary_hypercube(6), bandwidth=128.0)
    print(
        f"DVB recognition pipeline on {setup.topology.name}: "
        f"{setup.tfg.num_tasks} tasks, {setup.tfg.num_messages} messages, "
        f"frame processing time tau_c = {setup.tau_c:.0f} us"
    )

    rows = []
    for load in (0.4, 0.52, 0.68, 0.84, 1.0):
        tau_in = setup.tau_in_for_load(load)

        wormhole = WormholeSimulator(
            setup.timing, setup.topology, setup.allocation
        ).run(tau_in, invocations=48, warmup=12)

        try:
            routing = compile_schedule(
                setup.timing, setup.topology, setup.allocation, tau_in,
                CompilerConfig(seed=0),
            )
            scheduled = ScheduledRoutingExecutor(
                routing, setup.timing, setup.topology, setup.allocation
            ).run(invocations=48, warmup=12)
            sr_cell = format_spike(scheduled.throughput_stats())
            sr_lat = format_spike(scheduled.latency_stats())
        except SchedulingError as error:
            sr_cell = f"infeasible ({error.stage})"
            sr_lat = "-"

        rows.append((
            f"{load:.2f}",
            f"{tau_in:.1f}",
            format_spike(wormhole.throughput_stats()),
            "IRREGULAR" if wormhole.has_oi() else "steady",
            sr_cell,
            sr_lat,
        ))

    print()
    print(format_table(
        ("load", "frame interval (us)", "WR throughput", "WR output",
         "SR throughput", "SR latency"),
        rows,
        title="Recognition-rate behaviour, wormhole vs scheduled routing",
    ))
    print(
        "\nA spike like 0.8/1.0/1.3 means successive recognition results "
        "arrived up to 25% early and 20% late — output inconsistency.  "
        "Scheduled routing pins the interval to the frame rate exactly."
    )


if __name__ == "__main__":
    main()
