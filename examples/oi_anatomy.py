#!/usr/bin/env python3
"""Anatomy of output inconsistency (paper Section 3).

Reconstructs the paper's two-message claim at machine granularity: a
chain t0 -> t1 -> t2 placed so that message M1 (into t1) and message M2
(out of t1) share a link.  With a tight input period, M2 of invocation j
is still holding the shared link when M1 of invocation j+1 arrives; the
FCFS arbitration then delays alternate invocations and the output
interval oscillates.

The script prints the per-invocation completion timeline under wormhole
routing — the oscillation is visible directly — then the scheduled-
routing timeline, where AssignPaths moves M1 to the disjoint path and
every interval equals the input period.

Run:  python examples/oi_anatomy.py
"""

from repro import (
    ScheduledRoutingExecutor,
    TFGTiming,
    WormholeSimulator,
    binary_hypercube,
    compile_schedule,
)
from repro.tfg.graph import build_tfg

# tau_c is 10us and the shared link carries 20us of traffic per
# invocation; at tau_in = 21 the link is sustainable on average but M2 of
# invocation j still overlaps M1 of invocation j+1 — the paper's claim
# conditions — so the delay alternates between invocations.
TAU_IN = 21.0


def timeline(label, result):
    print(f"\n{label}")
    print("  invocation   completion (us)   interval (us)")
    completions = result.completion_times
    for j, t in enumerate(completions[:14]):
        interval = "" if j == 0 else f"{t - completions[j - 1]:14.2f}"
        print(f"  {j:10d}   {t:15.2f}   {interval}")
    intervals = result.intervals
    print(
        f"  measured intervals: min {min(intervals):.2f} / "
        f"mean {sum(intervals) / len(intervals):.2f} / "
        f"max {max(intervals):.2f}  "
        f"(input period {result.tau_in:.2f})"
    )


def main() -> None:
    tfg = build_tfg(
        "claim3",
        [("t0", 400), ("t1", 400), ("t2", 400)],
        [("M1", "t0", "t1", 1280), ("M2", "t1", "t2", 1280)],
    )
    timing = TFGTiming(tfg, bandwidth=128.0, speeds=40.0)
    topology = binary_hypercube(3)
    allocation = {"t0": 0, "t1": 3, "t2": 1}

    simulator = WormholeSimulator(timing, topology, allocation)
    print(
        "wormhole routes: "
        f"M1 {simulator.route(0, 3)}  M2 {simulator.route(3, 1)} "
        "-- both cross link (1, 3)"
    )

    # The collision is predictable statically (paper Section 3):
    from repro import predict_oi_risks

    for risk in predict_oi_risks(timing, topology, allocation, TAU_IN):
        print(
            f"predicted risk: {risk.blocked!r} of the next invocation "
            f"arrives at t={risk.available_at:.0f}us while {risk.holder!r} "
            f"holds {risk.link} during "
            f"[{risk.busy_from:.0f}, {risk.busy_until:.0f}]us"
        )

    wr = simulator.run(TAU_IN, invocations=40, warmup=8)
    timeline("WORMHOLE ROUTING (FCFS contention on the shared link):", wr)

    routing = compile_schedule(timing, topology, allocation, TAU_IN)
    print(
        f"\nscheduled routing reassigns M1 to "
        f"{list(routing.paths['M1'])} (link-disjoint from M2)"
    )
    sr = ScheduledRoutingExecutor(routing, timing, topology, allocation).run(
        invocations=40, warmup=8
    )
    timeline("SCHEDULED ROUTING (compile-time clear paths):", sr)


if __name__ == "__main__":
    main()
