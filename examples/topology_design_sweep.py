#!/usr/bin/env python3
"""Design-space sweep: which interconnect sustains the workload?

A system designer's question the paper answers at compile time: given the
application (DVB) and a target input rate, does a candidate machine meet
the communication requirements at all?  Scheduled routing decides this
statically — no simulation, no deployment.

The sweep compiles the workload on four 64-node interconnects at two link
bandwidths across the full load range and prints, per configuration, the
highest sustainable input rate and where the compiler gave up.

Run:  python examples/topology_design_sweep.py
"""

from repro import (
    CompilerConfig,
    GeneralizedHypercube,
    SchedulingError,
    Torus,
    binary_hypercube,
    compile_schedule,
    dvb_tfg,
    load_sweep,
    standard_setup,
)
from repro.report import format_table

CANDIDATES = [
    ("binary 6-cube", binary_hypercube(6)),
    ("GHC(4,4,4)", GeneralizedHypercube((4, 4, 4))),
    ("8x8 torus", Torus((8, 8))),
    ("4x4x4 torus", Torus((4, 4, 4))),
]


def main() -> None:
    tfg = dvb_tfg(5)
    config = CompilerConfig(seed=0, max_paths=32, max_restarts=2, retries=1)
    loads = load_sweep(12)

    rows = []
    for bandwidth in (64.0, 128.0):
        for name, topology in CANDIDATES:
            setup = standard_setup(tfg, topology, bandwidth)
            best_load = None
            feasible = 0
            last_failure = "-"
            for load in loads:
                try:
                    compile_schedule(
                        setup.timing, setup.topology, setup.allocation,
                        setup.tau_in_for_load(load), config,
                    )
                    feasible += 1
                    best_load = load
                except SchedulingError as error:
                    last_failure = error.stage
            rows.append((
                name,
                f"{int(bandwidth)}",
                f"{topology.num_links}",
                f"{feasible}/{len(loads)}",
                "-" if best_load is None else f"{best_load:.2f}",
                last_failure if feasible < len(loads) else "-",
            ))

    print(format_table(
        ("interconnect", "B (bytes/us)", "links", "schedulable points",
         "highest load", "limiting stage"),
        rows,
        title="Compile-time design-space verdicts for the DVB pipeline",
    ))
    print(
        "\nReading: the GHC's extra links buy schedulability at B=64 that "
        "the 6-cube lacks; the tori need B=128; 'utilization' means the "
        "requirements exceed raw link capacity, while the LP stages mark "
        "workloads that fit on average but cannot be packed."
    )


if __name__ == "__main__":
    main()
