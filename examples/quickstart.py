#!/usr/bin/env python3
"""Quickstart: compile a contention-free communication schedule.

Builds the paper's DARPA-Vision-Benchmark workload, places it on a binary
6-cube, compiles the scheduled-routing solution for a pipelined input
period, and inspects the result — including one node's switching schedule
(the artifact each communication processor executes independently).

Run:  python examples/quickstart.py
"""

from repro import (
    CompilerConfig,
    ScheduledRoutingExecutor,
    binary_hypercube,
    compile_schedule,
    dvb_tfg,
    standard_setup,
)


def main() -> None:
    # 1. The workload: model-based object recognition, 5 object models.
    tfg = dvb_tfg(5)
    print(f"workload: {tfg!r}")

    # 2. The machine: 64-node binary hypercube, links at 128 bytes/us,
    #    processor speeds calibrated as in the paper (tau_m/tau_c = 0.5).
    setup = standard_setup(tfg, binary_hypercube(6), bandwidth=128.0)
    print(f"machine:  {setup.topology!r}, tau_c = {setup.tau_c:.1f} us")

    # 3. Pipeline at 60% of the maximum input rate.
    tau_in = setup.tau_in_for_load(0.6)
    print(f"period:   tau_in = {tau_in:.2f} us (normalized load 0.6)")

    # 4. Compile: time bounds -> AssignPaths -> allocation LP -> interval
    #    scheduling -> node switching schedules (paper Fig. 3).
    routing = compile_schedule(
        setup.timing, setup.topology, setup.allocation, tau_in,
        CompilerConfig(seed=0),
    )
    print(
        f"\ncompiled: peak utilisation U = {routing.utilization.peak:.3f}, "
        f"{len(routing.subsets)} maximal subsets, "
        f"{routing.schedule.num_commands} switching commands on "
        f"{len(routing.schedule.node_schedules)} nodes"
    )

    # 5. Look at one communication processor's schedule.
    node, schedule = sorted(routing.schedule.node_schedules.items())[0]
    print(f"\nnode {node} switching schedule (omega_{node}):")
    for command in schedule.commands[:8]:
        print(
            f"  t={command.time:7.2f}us  for {command.duration:6.2f}us  "
            f"{str(command.input_port):>3} -> {str(command.output_port):<3} "
            f"carrying {command.message!r}"
        )
    if len(schedule.commands) > 8:
        print(f"  ... and {len(schedule.commands) - 8} more commands")

    # ... or as a Gantt chart, plus the busiest links of the frame.
    from repro.viz import link_occupancy_chart, node_gantt

    print()
    print(node_gantt(routing.schedule, node, width=48))
    print()
    print(link_occupancy_chart(routing.schedule, width=48, top=5))

    # 6. Machine-verify: replay the schedule on the event simulator.
    executor = ScheduledRoutingExecutor(
        routing, setup.timing, setup.topology, setup.allocation
    )
    result = executor.run(invocations=32, warmup=8)
    stats = result.throughput_stats()
    print(
        f"\nreplay:   normalized throughput = {stats.mean:.3f} "
        f"(min {stats.minimum:.3f} / max {stats.maximum:.3f}), "
        f"output inconsistency: {result.has_oi()}"
    )


if __name__ == "__main__":
    main()
