"""Legacy setup shim.

The environment this repository is developed in has no network access and
no ``wheel`` package, so PEP 660 editable installs cannot build; this shim
enables ``pip install -e . --no-use-pep517 --no-build-isolation``.  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
