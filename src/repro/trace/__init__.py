"""Structured tracing & profiling for runs and compilations.

- :mod:`repro.trace.tracer` — the event model: :class:`TraceEvent`,
  the no-op :class:`Tracer` / :data:`NULL_TRACER`, and the in-memory
  :class:`TraceRecorder`;
- :mod:`repro.trace.export` — Chrome/Perfetto ``trace.json`` export;
- :mod:`repro.trace.profile` — compiler stage wall-time/LP-size
  profiling.

Quick use::

    from repro.trace import TraceRecorder, write_chrome_trace
    from repro.results import RunConfig

    tracer = TraceRecorder()
    result = executor.run(config=RunConfig(invocations=12, tracer=tracer))
    write_chrome_trace(tracer.events, "trace.json")   # open in Perfetto
"""

from repro.trace.export import to_chrome_trace, write_chrome_trace
from repro.trace.profile import (
    NULL_PROFILER,
    CompileProfile,
    CompileProfiler,
    NullProfiler,
    StageProfile,
)
from repro.trace.tracer import NULL_TRACER, TraceEvent, Tracer, TraceRecorder

__all__ = [
    "CompileProfile",
    "CompileProfiler",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "StageProfile",
    "TraceEvent",
    "Tracer",
    "TraceRecorder",
    "to_chrome_trace",
    "write_chrome_trace",
]
