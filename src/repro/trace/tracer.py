"""Structured event tracing for simulations and the compiler.

The tracing layer answers the question the paper's whole argument hangs
on: *when* does each link carry each flit, and *when* does each output
appear?  Aggregates (mean throughput, peak-to-peak jitter) summarise a
run; a trace lets you replay it — see output inconsistency as the
alternating link grants of Section 3, or check that a scheduled replay's
link occupancy is exactly the compiled ``absolute_slots`` windows.

Design constraints:

- **Zero cost when disabled.**  Every producer holds a
  :class:`Tracer`; the default is the module-level :data:`NULL_TRACER`,
  whose methods are no-ops and whose :attr:`Tracer.enabled` flag is
  ``False`` so hot paths can skip even argument construction with a
  single attribute test (``if tracer.enabled: ...``).
- **Typed, flat events.**  A :class:`TraceEvent` is a span (has a
  duration) or an instant, carries a *category* from the taxonomy below,
  a *track* (the timeline it belongs to — a link, a node's CP, a
  message), and free-form ``args``.

Event taxonomy (``category`` values)
------------------------------------
``sim``
    Kernel bookkeeping: event scheduling and agenda steps
    (:class:`~repro.sim.environment.Environment`).  High volume; filter
    them out with ``TraceRecorder(categories=...)`` unless debugging the
    kernel itself.
``link``
    Link-resource activity (:class:`~repro.sim.resources.Resource`):
    ``occupy`` spans (grant -> release) and ``blocked`` spans (request ->
    grant when the grant was not immediate).  One track per link.
``crossbar``
    CP switching commands replayed on the crossbar model
    (:mod:`repro.cp`): one ``switch`` span per command, one track per
    node's CP.
``slot``
    Scheduled transmission windows the SR executor replays: one span per
    message occurrence, tracked per message.
``flight``
    Wormhole path setup + transmission: one span per message instance
    from first link request to delivery; ``abort`` instants mark
    deadlock/fault recoveries.
``task``
    Task executions (one track per node's AP or task owner).
``run``
    Run-level milestones: invocation ``completion`` instants.
``fault``
    Injected machine degradation: ``down`` / ``up`` instants per link,
    ``detection`` and ``repair`` milestones from the survivability
    experiment.
``compile``
    Compiler stage spans (wall-clock, from
    :class:`~repro.trace.profile.CompileProfiler`).
``check``
    Conformance-analyzer findings
    (:meth:`repro.check.analyzer.ConformanceReport.emit`): one instant
    per finding at the start of its offending time range, on a
    ``check:<code>`` track, with severity / message / link in ``args``.
``diagnose``
    Static instance-diagnosis refutations
    (:meth:`repro.diagnose.Diagnosis.emit`): one instant per
    certificate at the start of its witness window, on a
    ``diagnose:<kind>`` track, with demand / capacity / links /
    messages in ``args``.
``serve``
    Compile-farm request lifecycle
    (:class:`repro.serve.CompileService`): ``enqueue`` / ``admit`` /
    ``reject`` / ``dispatch`` / ``complete`` / ``coalesce`` / ``fail``
    instants on a ``serve:<kind>`` track, timed in wall-clock seconds
    since service start, each carrying the job id, cache-key prefix and
    the in-flight queue depth in ``args``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: The complete event taxonomy (one entry per section of the module
#: docstring above).  Producers must emit categories from this set —
#: the ``trace-taxonomy`` lint rule statically checks every literal
#: category in emit calls, :class:`TraceEvent` constructions and
#: :class:`TraceRecorder` filters against it, so a typo'd category
#: cannot silently vanish from filtered recordings.
TRACE_CATEGORIES = (
    "sim",
    "link",
    "crossbar",
    "slot",
    "flight",
    "task",
    "run",
    "fault",
    "compile",
    "check",
    "diagnose",
    "serve",
)


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    Attributes
    ----------
    category:
        Taxonomy bucket (see module docstring).
    name:
        Event name within the category (``"occupy"``, ``"blocked"``...).
    time:
        Start instant.  Simulation events use model microseconds;
        compiler events use wall-clock milliseconds re-based to zero.
    duration:
        Span length; ``0.0`` marks an instant event.
    track:
        The timeline this event belongs to (a link name, ``"CP5"``,
        ``"msg M3"``...).  Exporters render one row/thread per track.
    args:
        Free-form structured payload (owner, invocation, cause...).
    """

    category: str
    name: str
    time: float
    duration: float = 0.0
    track: str = ""
    args: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Span end (equals :attr:`time` for instants)."""
        return self.time + self.duration

    @property
    def is_span(self) -> bool:
        return self.duration > 0.0


class Tracer:
    """No-op tracer: the null object every producer defaults to.

    Subclasses that record must set :attr:`enabled` truthy; producers
    guard hot paths with it so a disabled tracer costs one attribute
    check per potential event.
    """

    #: Hot-path guard: producers skip event construction when False.
    enabled: bool = False

    def instant(
        self, category: str, name: str, time: float, track: str = "", **args: Any
    ) -> None:
        """Record a point event."""

    def span(
        self,
        category: str,
        name: str,
        start: float,
        end: float,
        track: str = "",
        **args: Any,
    ) -> None:
        """Record an interval event ``[start, end]``."""

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Recorded events (empty for non-recording tracers)."""
        return ()


#: Shared null tracer; safe to use as a default everywhere (stateless).
NULL_TRACER = Tracer()


class TraceRecorder(Tracer):
    """In-memory tracer collecting :class:`TraceEvent` objects.

    Parameters
    ----------
    categories:
        When given, only events whose category is in this set are kept
        (cheap pre-filter — high-volume ``sim`` events never allocate).
    """

    enabled = True

    def __init__(self, categories: Iterable[str] | None = None) -> None:
        self._events: list[TraceEvent] = []
        self.categories = frozenset(categories) if categories is not None else None

    def wants(self, category: str) -> bool:
        """True when events of ``category`` are being kept."""
        return self.categories is None or category in self.categories

    def instant(
        self, category: str, name: str, time: float, track: str = "", **args: Any
    ) -> None:
        if self.wants(category):
            self._events.append(
                TraceEvent(category, name, time, 0.0, track, args)
            )

    def span(
        self,
        category: str,
        name: str,
        start: float,
        end: float,
        track: str = "",
        **args: Any,
    ) -> None:
        if self.wants(category):
            self._events.append(
                TraceEvent(category, name, start, end - start, track, args)
            )

    # -- queries ---------------------------------------------------------

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def select(
        self,
        category: str | None = None,
        name: str | None = None,
        track: str | None = None,
    ) -> list[TraceEvent]:
        """Events matching every given filter, in recording order."""
        return [
            e
            for e in self._events
            if (category is None or e.category == category)
            and (name is None or e.name == name)
            and (track is None or e.track == track)
        ]

    def spans(self, category: str | None = None, **filters: Any) -> list[TraceEvent]:
        """Span events matching the filters."""
        return [e for e in self.select(category, **filters) if e.is_span]

    def instants(self, category: str | None = None, **filters: Any) -> list[TraceEvent]:
        """Instant events matching the filters."""
        return [e for e in self.select(category, **filters) if not e.is_span]

    def tracks(self) -> list[str]:
        """Distinct non-empty tracks, in first-seen order."""
        return list(dict.fromkeys(e.track for e in self._events if e.track))

    def occupancy(
        self, category: str = "link", name: str = "occupy"
    ) -> dict[str, list[tuple[float, float, Any]]]:
        """Per-track busy windows ``(start, end, owner)``, time-sorted.

        The default pulls link-occupancy spans — the timeline the
        Gantt renderers and the golden-trace tests consume.
        """
        timelines: dict[str, list[tuple[float, float, Any]]] = {}
        for event in self._events:
            if event.category != category or event.name != name:
                continue
            timelines.setdefault(event.track, []).append(
                (event.time, event.end, event.args.get("owner"))
            )
        for windows in timelines.values():
            windows.sort()
        return timelines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        categories: dict[str, int] = {}
        for event in self._events:
            categories[event.category] = categories.get(event.category, 0) + 1
        return f"<TraceRecorder {len(self._events)} events {categories}>"
