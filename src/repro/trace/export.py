"""Trace exporters: Chrome/Perfetto ``trace.json`` and text timelines.

The Chrome trace event format (the JSON array flavour understood by
``chrome://tracing`` and https://ui.perfetto.dev) maps cleanly onto our
events: every :class:`~repro.trace.tracer.TraceEvent` track becomes one
named thread, spans become complete (``"ph": "X"``) events and instants
become ``"ph": "i"`` events.  Model time is microseconds, which is also
the format's timestamp unit, so timestamps pass through unscaled.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.trace.tracer import TraceEvent

#: Synthetic process ids: simulation tracks vs compiler tracks.
SIM_PID = 1
COMPILE_PID = 2


def _sort_key(track: str) -> tuple:
    """Stable, human-friendly track ordering: links first, grouped."""
    return (track.split()[0] if track else "", track)


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Render events as a Chrome trace object (``{"traceEvents": [...]}``).

    One named thread per track; events with an empty track land on a
    catch-all ``"(run)"`` thread.  ``compile``-category events get their
    own process so wall-clock compiler time never visually interleaves
    with model time.
    """
    events = list(events)
    tracks: dict[tuple[int, str], int] = {}
    trace_events: list[dict] = []

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tracks:
            tracks[key] = len(tracks) + 1
        return tracks[key]

    for event in events:
        pid = COMPILE_PID if event.category == "compile" else SIM_PID
        tid = tid_for(pid, event.track or "(run)")
        record = {
            "name": event.name,
            "cat": event.category,
            "pid": pid,
            "tid": tid,
            "ts": event.time,
            "args": dict(event.args),
        }
        if event.is_span:
            record["ph"] = "X"
            record["dur"] = event.duration
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)

    metadata: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SIM_PID,
            "args": {"name": "simulation (model us)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": COMPILE_PID,
            "args": {"name": "compiler (wall time)"},
        },
    ]
    for (pid, track), tid in sorted(
        tracks.items(), key=lambda item: (item[0][0], _sort_key(item[0][1]))
    ):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
        metadata.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: str) -> str:
    """Write a Perfetto-loadable ``trace.json``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(events), handle, default=str)
    return path
