"""Compiler profiling: per-stage wall time and problem sizes.

As experiment matrices grow, the scheduled-routing compiler dominates
wall-clock cost; this module answers *where*.  A :class:`CompileProfiler`
is passed to :func:`~repro.core.compiler.compile_schedule`; every stage
wraps itself in :meth:`CompileProfiler.stage` and attaches structured
detail (message counts, LP variable counts).  The result renders as a
text table or as ``compile``-category trace events alongside a run trace.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.trace.tracer import TraceEvent


def _json_safe(value: Any) -> Any:
    """Coerce a stage-detail value into a JSON-representable one.

    Stage details are almost always numbers and strings; anything
    exotic (tuples, sets, objects) is flattened so profiles can cross
    process boundaries as JSON instead of pickles.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(v) for v in value)
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


@dataclass(frozen=True)
class StageProfile:
    """One profiled compiler stage."""

    stage: str
    wall_ms: float
    start_ms: float
    detail: Mapping[str, Any] = field(default_factory=dict)

    def describe_detail(self) -> str:
        """``key=value`` rendering of the stage detail."""
        return " ".join(f"{k}={v}" for k, v in self.detail.items())

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (wire transfer, progress events)."""
        return {
            "stage": self.stage,
            "wall_ms": self.wall_ms,
            "start_ms": self.start_ms,
            "detail": {k: _json_safe(v) for k, v in self.detail.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StageProfile":
        return cls(
            stage=str(payload["stage"]),
            wall_ms=float(payload["wall_ms"]),
            start_ms=float(payload["start_ms"]),
            detail=dict(payload.get("detail", {})),
        )


@dataclass(frozen=True)
class CompileProfile:
    """All stages of one compilation, in execution order."""

    stages: tuple[StageProfile, ...]

    @property
    def total_ms(self) -> float:
        return sum(stage.wall_ms for stage in self.stages)

    def table(self) -> str:
        """Text table of stage timings (CLI / benchmark output)."""
        from repro.report import format_table

        total = self.total_ms or 1.0
        rows = [
            (
                stage.stage,
                f"{stage.wall_ms:.2f}",
                f"{stage.wall_ms / total:6.1%}",
                stage.describe_detail(),
            )
            for stage in self.stages
        ]
        rows.append(("TOTAL", f"{self.total_ms:.2f}", "100.0%", ""))
        return format_table(
            ("stage", "wall ms", "share", "detail"),
            rows,
            title="compile profile",
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload: ``{"stages": [...]}``."""
        return {"stages": [stage.to_dict() for stage in self.stages]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CompileProfile":
        return cls(
            stages=tuple(
                StageProfile.from_dict(s) for s in payload.get("stages", ())
            )
        )

    def to_json(self) -> str:
        """The profile as a JSON document (wire transfer, artifacts).

        Round-trips exactly through :meth:`from_json`: every field —
        including per-stage LP tallies like ``lp_wall_ms`` — survives,
        so results can cross process boundaries without pickling.
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "CompileProfile":
        return cls.from_dict(json.loads(document))

    def trace_events(self) -> list[TraceEvent]:
        """The profile as ``compile``-category spans (wall-clock us,
        re-based to the profiler's start) for the Chrome exporter."""
        return [
            TraceEvent(
                category="compile",
                name=stage.stage,
                time=stage.start_ms * 1000.0,
                duration=max(stage.wall_ms, 1e-3) * 1000.0,
                track="compiler",
                args=dict(stage.detail),
            )
            for stage in self.stages
        ]


class CompileProfiler:
    """Collects :class:`StageProfile` records during a compilation.

    Nested/repeated stage names are fine (retry attempts, per-subset
    LP solves each record their own row).

    Parameters
    ----------
    on_enter:
        Called with ``(stage_name, detail)`` the moment a stage starts —
        the progress hook of the staged pipeline
        (:mod:`repro.core.pipeline`): every stage wraps itself in
        :meth:`stage`, so a callback here observes the compilation
        stage-by-stage as it runs.  The serve farm streams these as
        live job progress events.
    on_stage:
        Called with the completed :class:`StageProfile` when a stage
        finishes (including its late detail and LP tallies).

    Callbacks run on the compiling thread/process; they must not raise
    (an exception would abort the stage it observes).
    """

    def __init__(
        self,
        on_enter: Callable[[str, Mapping[str, Any]], None] | None = None,
        on_stage: Callable[[StageProfile], None] | None = None,
    ) -> None:
        self._origin = time.perf_counter()
        self._stages: list[StageProfile] = []
        self._on_enter = on_enter
        self._on_stage = on_stage

    @contextmanager
    def stage(self, name: str, **detail: Any) -> Iterator[dict]:
        """Profile one stage; mutate the yielded dict to add late detail
        (sizes known only after the stage body ran)."""
        late: dict[str, Any] = dict(detail)
        if self._on_enter is not None:
            self._on_enter(name, dict(late))
        start = time.perf_counter()
        try:
            yield late
        finally:
            end = time.perf_counter()
            profile = StageProfile(
                stage=name,
                wall_ms=(end - start) * 1000.0,
                start_ms=(start - self._origin) * 1000.0,
                detail=late,
            )
            self._stages.append(profile)
            if self._on_stage is not None:
                self._on_stage(profile)

    @property
    def profile(self) -> CompileProfile:
        return CompileProfile(stages=tuple(self._stages))


class NullProfiler:
    """No-op stand-in accepted wherever a :class:`CompileProfiler` is."""

    @contextmanager
    def stage(self, name: str, **detail: Any) -> Iterator[dict]:
        yield dict(detail)  # mutations go nowhere

    @property
    def profile(self) -> CompileProfile:
        return CompileProfile(stages=())


#: Shared null profiler (stateless); the compiler's default.
NULL_PROFILER = NullProfiler()
