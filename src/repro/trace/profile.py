"""Compiler profiling: per-stage wall time and problem sizes.

As experiment matrices grow, the scheduled-routing compiler dominates
wall-clock cost; this module answers *where*.  A :class:`CompileProfiler`
is passed to :func:`~repro.core.compiler.compile_schedule`; every stage
wraps itself in :meth:`CompileProfiler.stage` and attaches structured
detail (message counts, LP variable counts).  The result renders as a
text table or as ``compile``-category trace events alongside a run trace.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.trace.tracer import TraceEvent


@dataclass(frozen=True)
class StageProfile:
    """One profiled compiler stage."""

    stage: str
    wall_ms: float
    start_ms: float
    detail: Mapping[str, Any] = field(default_factory=dict)

    def describe_detail(self) -> str:
        """``key=value`` rendering of the stage detail."""
        return " ".join(f"{k}={v}" for k, v in self.detail.items())


@dataclass(frozen=True)
class CompileProfile:
    """All stages of one compilation, in execution order."""

    stages: tuple[StageProfile, ...]

    @property
    def total_ms(self) -> float:
        return sum(stage.wall_ms for stage in self.stages)

    def table(self) -> str:
        """Text table of stage timings (CLI / benchmark output)."""
        from repro.report import format_table

        total = self.total_ms or 1.0
        rows = [
            (
                stage.stage,
                f"{stage.wall_ms:.2f}",
                f"{stage.wall_ms / total:6.1%}",
                stage.describe_detail(),
            )
            for stage in self.stages
        ]
        rows.append(("TOTAL", f"{self.total_ms:.2f}", "100.0%", ""))
        return format_table(
            ("stage", "wall ms", "share", "detail"),
            rows,
            title="compile profile",
        )

    def trace_events(self) -> list[TraceEvent]:
        """The profile as ``compile``-category spans (wall-clock us,
        re-based to the profiler's start) for the Chrome exporter."""
        return [
            TraceEvent(
                category="compile",
                name=stage.stage,
                time=stage.start_ms * 1000.0,
                duration=max(stage.wall_ms, 1e-3) * 1000.0,
                track="compiler",
                args=dict(stage.detail),
            )
            for stage in self.stages
        ]


class CompileProfiler:
    """Collects :class:`StageProfile` records during a compilation.

    Nested/repeated stage names are fine (retry attempts, per-subset
    LP solves each record their own row).
    """

    def __init__(self) -> None:
        self._origin = time.perf_counter()
        self._stages: list[StageProfile] = []

    @contextmanager
    def stage(self, name: str, **detail: Any) -> Iterator[dict]:
        """Profile one stage; mutate the yielded dict to add late detail
        (sizes known only after the stage body ran)."""
        late: dict[str, Any] = dict(detail)
        start = time.perf_counter()
        try:
            yield late
        finally:
            end = time.perf_counter()
            self._stages.append(
                StageProfile(
                    stage=name,
                    wall_ms=(end - start) * 1000.0,
                    start_ms=(start - self._origin) * 1000.0,
                    detail=late,
                )
            )

    @property
    def profile(self) -> CompileProfile:
        return CompileProfile(stages=tuple(self._stages))


class NullProfiler:
    """No-op stand-in accepted wherever a :class:`CompileProfiler` is."""

    @contextmanager
    def stage(self, name: str, **detail: Any) -> Iterator[dict]:
        yield dict(detail)  # mutations go nowhere

    @property
    def profile(self) -> CompileProfile:
        return CompileProfile(stages=())


#: Shared null profiler (stateless); the compiler's default.
NULL_PROFILER = NullProfiler()
