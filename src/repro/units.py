"""Time and bandwidth conventions used throughout the library.

All compile-time and simulation quantities are plain floats in a single
consistent unit system:

- time is in **microseconds**,
- message sizes are in **bytes**,
- link bandwidth ``B`` is in **bytes per microsecond** (equivalently MB/s),

matching the paper's figures (B = 64 or 128 bytes/usec).  A message of
``m`` bytes therefore occupies a link for ``m / B`` microseconds.

Floating-point schedules are compared with an absolute tolerance
:data:`EPS` that is far below one packet time for any realistic packet
size, so equality tests on schedule boundaries are robust.
"""

from __future__ import annotations

EPS = 1e-9
"""Absolute tolerance for schedule-time comparisons (microseconds)."""


def transmission_time(size_bytes: float, bandwidth: float) -> float:
    """Time, in microseconds, to transmit ``size_bytes`` at ``bandwidth``
    bytes/us.  Raises ``ValueError`` for non-positive bandwidth."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if size_bytes < 0:
        raise ValueError(f"message size must be non-negative, got {size_bytes}")
    return size_bytes / bandwidth


def close(a: float, b: float, tol: float = EPS) -> bool:
    """True when two schedule times are equal within tolerance."""
    return abs(a - b) <= tol


def le(a: float, b: float, tol: float = EPS) -> bool:
    """Tolerant ``a <= b`` for schedule times."""
    return a <= b + tol


def lt(a: float, b: float, tol: float = EPS) -> bool:
    """Tolerant strict ``a < b`` for schedule times."""
    return a < b - tol


def wrap(t: float, period: float) -> float:
    """Reduce an absolute time onto the canonical frame ``[0, period)``.

    The scheduled-routing formulation observes a single time frame of
    ``[0, tau_in]`` (paper Section 4); all release times and deadlines are
    wrapped onto it.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    r = t % period
    # Guard against values like period - 1e-16 produced by the modulo.
    if close(r, period) or close(r, 0.0):
        return 0.0
    return r
