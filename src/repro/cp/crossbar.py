"""A crossbar switch with exclusive channel ports.

Ports are identified as in :mod:`repro.core.switching`: the sentinel
``AP_PORT`` for the local application processor's buffer bank, or an
adjacent node id for the (half-duplex) channel towards that node.  The AP
buffer bank has a separate buffer per channel (paper Fig. 2), so ``AP``
connections never conflict with each other; channel ports are exclusive
in both directions at once (half-duplex).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.switching import AP_PORT, Port
from repro.errors import ScheduleValidationError
from repro.trace.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class Connection:
    """An active crossbar connection carrying one message."""

    input_port: Port
    output_port: Port
    message: str


class Crossbar:
    """Tracks active connections and enforces port exclusivity.

    Parameters
    ----------
    node:
        Owning node id (for error messages).
    channel_ports:
        The neighbor ids this crossbar has channels to.
    tracer:
        Optional event sink; ``connect``/``disconnect`` emit
        ``crossbar``-category instants on the ``CP<node>`` track when the
        caller supplies the switching instant via ``at=``.
    """

    def __init__(
        self,
        node: int,
        channel_ports: tuple[int, ...],
        tracer: Tracer | None = None,
    ):
        self.node = node
        self.channel_ports = frozenset(channel_ports)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._active: dict[Port, Connection] = {}  # channel port -> connection

    @property
    def active_connections(self) -> tuple[Connection, ...]:
        """Distinct live connections."""
        return tuple(dict.fromkeys(self._active.values()))

    def _check_port(self, port: Port) -> None:
        if port == AP_PORT:
            return
        if port not in self.channel_ports:
            raise ScheduleValidationError(
                f"node {self.node}: no channel to {port!r} "
                f"(channels: {sorted(self.channel_ports)})"
            )

    def connect(
        self,
        input_port: Port,
        output_port: Port,
        message: str,
        at: float | None = None,
    ) -> Connection:
        """Establish a connection; both channel ports must be free.

        ``at`` is the model instant of the switch (for tracing only —
        the crossbar itself has no clock).
        """
        self._check_port(input_port)
        self._check_port(output_port)
        if input_port == output_port:
            raise ScheduleValidationError(
                f"node {self.node}: connection loops port {input_port!r}"
            )
        connection = Connection(input_port, output_port, message)
        for port in (input_port, output_port):
            if port == AP_PORT:
                continue  # per-channel AP buffers never conflict
            busy = self._active.get(port)
            if busy is not None:
                raise ScheduleValidationError(
                    f"node {self.node}: channel {port!r} busy with "
                    f"{busy.message!r} while connecting {message!r}"
                )
        for port in (input_port, output_port):
            if port != AP_PORT:
                self._active[port] = connection
        if self.tracer.enabled and at is not None:
            self.tracer.instant(
                "crossbar",
                "connect",
                at,
                track=f"CP{self.node}",
                input=str(input_port),
                output=str(output_port),
                message=message,
            )
        return connection

    def disconnect(self, connection: Connection, at: float | None = None) -> None:
        """Tear down a connection previously returned by :meth:`connect`."""
        if self.tracer.enabled and at is not None:
            self.tracer.instant(
                "crossbar",
                "disconnect",
                at,
                track=f"CP{self.node}",
                input=str(connection.input_port),
                output=str(connection.output_port),
                message=connection.message,
            )
        found = False
        for port in (connection.input_port, connection.output_port):
            if port == AP_PORT:
                continue
            if self._active.get(port) is connection:
                del self._active[port]
                found = True
        if not found:
            # connect() rejects AP->AP loops, so every live connection
            # holds at least one channel port.
            raise ScheduleValidationError(
                f"node {self.node}: disconnect of inactive connection "
                f"{connection}"
            )
