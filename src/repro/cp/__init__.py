"""Communication processor (CP) model — paper Fig. 2.

Each node's CP is an ``(n+1) x (n+1)`` crossbar (``n`` = topology degree)
whose controller executes the node's switching schedule: at the commanded
instants it connects input channels (from adjacent nodes, or the AP's
output buffers) to output channels (to adjacent nodes, or the AP's input
buffers).  Separate per-channel AP buffers let a node send and receive
simultaneously on different channels; a channel itself carries one
message at a time.

This package is an independent hardware-level re-validation of a
communication schedule: :class:`~repro.cp.processor.CommunicationProcessor`
replays a node's schedule on a :class:`~repro.cp.crossbar.Crossbar` and
raises on any physically impossible configuration.
"""

from repro.cp.crossbar import Crossbar
from repro.cp.processor import CommunicationProcessor, replay_schedule

__all__ = ["CommunicationProcessor", "Crossbar", "replay_schedule"]
