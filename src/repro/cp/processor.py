"""Replay of a node switching schedule on the crossbar model.

This is an independent check of a communication schedule at the hardware
level: where :meth:`repro.core.switching.CommunicationSchedule.validate`
reasons about slot intervals, the CP replay actually *drives* a crossbar
through the command sequence (connect at ``time``, disconnect at
``time + duration``, in event order) and lets the crossbar's port
exclusivity catch conflicts.  The two checks agreeing is a useful
two-implementations property the test suite exploits.
"""

from __future__ import annotations

from repro.core.switching import CommunicationSchedule, NodeSchedule
from repro.cp.crossbar import Connection, Crossbar
from repro.errors import ScheduleValidationError
from repro.topology.base import Topology
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.units import EPS


class CommunicationProcessor:
    """One node's CP: a crossbar plus its switching-schedule controller."""

    def __init__(
        self, node: int, topology: Topology, tracer: Tracer | None = None
    ):
        self.node = node
        self.topology = topology
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.crossbar = Crossbar(node, topology.neighbors(node), tracer=self.tracer)

    def execute(self, schedule: NodeSchedule, frame_length: float) -> int:
        """Replay one frame of the node's schedule; returns the number of
        commands executed.

        Raises :class:`~repro.errors.ScheduleValidationError` on any
        physically impossible command (unknown channel, port conflict,
        command outside the frame).
        """
        if schedule.node != self.node:
            raise ScheduleValidationError(
                f"schedule for node {schedule.node} replayed on CP "
                f"{self.node}"
            )
        events: list[tuple[float, int, object]] = []
        for index, command in enumerate(schedule.commands):
            if command.time < -EPS or command.end > frame_length + EPS:
                raise ScheduleValidationError(
                    f"node {self.node}: command for {command.message!r} "
                    f"[{command.time}, {command.end}] outside frame "
                    f"[0, {frame_length}]"
                )
            # Disconnects sort before connects at the same instant so that
            # back-to-back slots on one channel hand over cleanly; pulling
            # disconnects EPS earlier also absorbs solver rounding hairs.
            events.append((command.time, 1, command))
            events.append((command.end - EPS, 0, command))
        events.sort(key=lambda e: (e[0], e[1]))

        live: dict[int, Connection] = {}
        executed = 0
        for _, kind, command in events:
            if kind == 1:
                live[id(command)] = self.crossbar.connect(
                    command.input_port,
                    command.output_port,
                    command.message,
                    at=command.time,
                )
                if self.tracer.enabled:
                    self.tracer.span(
                        "crossbar",
                        "switch",
                        command.time,
                        command.end,
                        track=f"CP{self.node}",
                        input=str(command.input_port),
                        output=str(command.output_port),
                        message=command.message,
                    )
                executed += 1
            else:
                self.crossbar.disconnect(live.pop(id(command)), at=command.end)
        if self.crossbar.active_connections:
            raise ScheduleValidationError(
                f"node {self.node}: connections left live after the frame"
            )
        return executed


def replay_schedule(
    schedule: CommunicationSchedule,
    topology: Topology,
    tracer: Tracer | None = None,
) -> int:
    """Replay every node's switching schedule on its CP model.

    Returns the total number of commands executed across nodes.  With a
    ``tracer``, each node's frame renders as ``switch`` spans on its
    ``CP<node>`` track — one frame of crossbar programming.
    """
    total = 0
    for node, node_schedule in schedule.node_schedules.items():
        cp = CommunicationProcessor(node, topology, tracer=tracer)
        total += cp.execute(node_schedule, schedule.tau_in)
    return total
