"""The lint engine: run rules over a project, apply pragmas + baseline."""

from __future__ import annotations

from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.context import ProjectContext
from repro.lint.findings import LintFinding, LintReport, sort_findings
from repro.lint.registry import LintRule, rules_named


def lint_project(
    project: ProjectContext,
    rules: list[LintRule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run ``rules`` (default: all registered) over a parsed project.

    Pipeline per finding: pragma suppression first (an inline
    ``# repro-lint: allow[rule]`` on the finding's line wins and is
    counted, not reported), then baseline absorption (multiset match on
    the line-independent fingerprint).  What survives is live.
    """
    active = rules if rules is not None else rules_named(None)
    raw: list[LintFinding] = []
    for rule in active:
        raw.extend(rule.check_project(project))

    by_path = {unit.relpath: unit for unit in project}
    unsuppressed: list[LintFinding] = []
    suppressed = 0
    for finding in raw:
        unit = by_path.get(finding.path)
        if unit is not None and unit.suppresses(finding.rule, finding.line):
            suppressed += 1
        else:
            unsuppressed.append(finding)

    if baseline is None:
        live, absorbed, stale = unsuppressed, [], 0
    else:
        live, absorbed, stale = baseline.partition(unsuppressed)

    return LintReport(
        findings=tuple(sort_findings(live)),
        files_scanned=len(project),
        rules_run=tuple(rule.id for rule in active),
        suppressed=suppressed,
        baselined=tuple(sort_findings(absorbed)),
        stale_baseline=stale,
    )


def lint_paths(
    root: Path | str,
    rule_ids: list[str] | None = None,
    baseline_path: Path | str | None = None,
) -> LintReport:
    """Lint every ``*.py`` under ``root`` — the CLI entry point's core."""
    project = ProjectContext.from_root(root)
    rules = rules_named(rule_ids)
    baseline = (
        Baseline.load(baseline_path) if baseline_path is not None else None
    )
    return lint_project(project, rules=rules, baseline=baseline)
