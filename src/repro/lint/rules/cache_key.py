"""Rule ``cache-key`` — config knobs must carry a cache-identity decision.

PR 9's perf-knob bug class, made impossible to reintroduce: the
content-addressed schedule key hashes ``CompilerConfig`` via
``asdict``, so a *new* field silently joins the key payload — unless
someone remembers to elide it — and either fragments the key space
(perf-only knob hashed) or poisons it (result-affecting knob elided).
The fix is an explicit decision ledger in :mod:`repro.cache.keys`:

- :data:`~repro.cache.keys.HASHED_CONFIG_FIELDS` — fields that are
  part of cache identity;
- :data:`~repro.cache.keys.PERF_ONLY_CONFIG_FIELDS` — fields proven
  not to change the compiled schedule, always elided.

This rule statically cross-checks the ledger against the dataclasses:

``config-undecided``
    A ``CompilerConfig`` field in neither list — a knob shipped without
    a cache-identity decision.
``config-conflict``
    A field in both lists.
``config-stale``
    A ledger entry naming no existing field (a removed or renamed knob
    whose decision outlived it).
``config-elide-unaudited``
    ``canonical_config`` pops a literal field name that is not in the
    perf-only list — an elision bypassing the ledger.
``serve-config-unknown``
    A key in ``repro.serve.jobs._CONFIG_FIELDS`` (the wire-format
    override whitelist) naming no ``CompilerConfig`` field — the farm
    would accept an override the compiler ignores.
``runconfig-undecided`` / ``runconfig-conflict`` / ``runconfig-stale``
    The same ledger discipline for :class:`repro.results.RunConfig`
    against ``RUN_RESULT_FIELDS`` (changes measured behaviour) and
    ``RUN_OBSERVER_FIELDS`` (pure observers) — a new run knob must
    declare which it is before replay comparisons can trust it.

Modules absent from the scanned tree are skipped (linting a subtree
checks what it can see); a ledger that *exists* but is not a literal
string tuple is itself a finding — the rule refuses to guess.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import (
    dataclass_fields,
    find_class,
    module_dict_string_keys,
    module_string_tuple,
)
from repro.lint.context import ModuleUnit, ProjectContext
from repro.lint.findings import LintFinding
from repro.lint.registry import LintRule, register_rule

#: Where the cross-checked declarations live (dotted module names).
COMPILER_MODULE = "repro.core.compiler"
KEYS_MODULE = "repro.cache.keys"
RESULTS_MODULE = "repro.results"
SERVE_JOBS_MODULE = "repro.serve.jobs"


def _ledger(
    unit: ModuleUnit, name: str, rule_id: str
) -> tuple[set[str], int] | LintFinding:
    """A ledger tuple's string set, or a finding when unreadable."""
    entry = module_string_tuple(unit.tree, name)
    if entry is None:
        return LintFinding(
            rule=rule_id,
            path=unit.relpath,
            line=1,
            col=0,
            symbol=name,
            detail=(
                f"{name} is missing from {unit.module} or is not a literal "
                "string tuple; the cache-key decision ledger must be "
                "statically readable"
            ),
        )
    strings, line = entry
    return set(strings), line


@register_rule
class CacheKeyCompletenessRule(LintRule):
    id = "cache-key"
    name = "cache-key completeness"
    description = (
        "Every CompilerConfig/RunConfig field must carry an explicit "
        "hash-or-elide (result-or-observer) decision"
    )

    def check_project(self, project: ProjectContext) -> Iterator[LintFinding]:
        yield from self._check_compiler_config(project)
        yield from self._check_run_config(project)

    # -- CompilerConfig vs the repro.cache.keys ledger --------------------

    def _check_compiler_config(
        self, project: ProjectContext
    ) -> Iterator[LintFinding]:
        compiler = project.module(COMPILER_MODULE)
        keys = project.module(KEYS_MODULE)
        if compiler is None or keys is None:
            return
        classdef = find_class(compiler.tree, "CompilerConfig")
        if classdef is None:
            return
        fields = dataclass_fields(classdef)
        field_names = {name for name, _line, _col in fields}

        hashed = _ledger(keys, "HASHED_CONFIG_FIELDS", self.id)
        if isinstance(hashed, LintFinding):
            yield hashed
            return
        perf_only = _ledger(keys, "PERF_ONLY_CONFIG_FIELDS", self.id)
        if isinstance(perf_only, LintFinding):
            yield perf_only
            return
        hashed_names, hashed_line = hashed
        perf_names, perf_line = perf_only

        for name, line, col in fields:
            in_hashed = name in hashed_names
            in_perf = name in perf_names
            if in_hashed and in_perf:
                yield LintFinding(
                    rule=self.id,
                    path=keys.relpath,
                    line=hashed_line,
                    col=0,
                    symbol=name,
                    detail=(
                        f"CompilerConfig.{name} is in both "
                        "HASHED_CONFIG_FIELDS and PERF_ONLY_CONFIG_FIELDS "
                        "(config-conflict): a knob is either cache "
                        "identity or elided, never both"
                    ),
                )
            elif not in_hashed and not in_perf:
                yield LintFinding(
                    rule=self.id,
                    path=compiler.relpath,
                    line=line,
                    col=col,
                    symbol=name,
                    detail=(
                        f"CompilerConfig.{name} has no cache-identity "
                        "decision (config-undecided): add it to "
                        "HASHED_CONFIG_FIELDS, or prove it perf-only and "
                        "add it to PERF_ONLY_CONFIG_FIELDS in "
                        "repro.cache.keys"
                    ),
                )
        for name in sorted((hashed_names | perf_names) - field_names):
            line = hashed_line if name in hashed_names else perf_line
            yield LintFinding(
                rule=self.id,
                path=keys.relpath,
                line=line,
                col=0,
                symbol=name,
                detail=(
                    f"ledger entry {name!r} names no CompilerConfig field "
                    "(config-stale): remove it or rename it with the knob"
                ),
            )
        yield from self._check_elisions(keys, perf_names)
        yield from self._check_serve_overrides(project, field_names)

    def _check_elisions(
        self, keys: ModuleUnit, perf_names: set[str]
    ) -> Iterator[LintFinding]:
        """Literal ``fields.pop("name")`` calls inside ``canonical_config``
        must draw from the perf-only ledger."""
        for node in keys.tree.body:
            if not (
                isinstance(node, ast.FunctionDef)
                and node.name == "canonical_config"
            ):
                continue
            for call in ast.walk(node):
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "pop"
                    and call.args
                ):
                    continue
                popped = call.args[0]
                if not (
                    isinstance(popped, ast.Constant)
                    and isinstance(popped.value, str)
                ):
                    continue
                if popped.value not in perf_names:
                    yield LintFinding(
                        rule=self.id,
                        path=keys.relpath,
                        line=call.lineno,
                        col=call.col_offset,
                        symbol=popped.value,
                        detail=(
                            f"canonical_config elides {popped.value!r} "
                            "outside PERF_ONLY_CONFIG_FIELDS "
                            "(config-elide-unaudited): route every elision "
                            "through the ledger"
                        ),
                    )

    def _check_serve_overrides(
        self, project: ProjectContext, field_names: set[str]
    ) -> Iterator[LintFinding]:
        jobs = project.module(SERVE_JOBS_MODULE)
        if jobs is None:
            return
        entry = module_dict_string_keys(jobs.tree, "_CONFIG_FIELDS")
        if entry is None:
            return
        keys, line = entry
        for key in keys:
            if key not in field_names:
                yield LintFinding(
                    rule=self.id,
                    path=jobs.relpath,
                    line=line,
                    col=0,
                    symbol=key,
                    detail=(
                        f"serve override {key!r} names no CompilerConfig "
                        "field (serve-config-unknown): the farm would "
                        "accept an override the compiler ignores"
                    ),
                )

    # -- RunConfig vs the repro.results ledger ----------------------------

    def _check_run_config(
        self, project: ProjectContext
    ) -> Iterator[LintFinding]:
        results = project.module(RESULTS_MODULE)
        if results is None:
            return
        classdef = find_class(results.tree, "RunConfig")
        if classdef is None:
            return
        fields = dataclass_fields(classdef)
        field_names = {name for name, _line, _col in fields}

        result_fields = _ledger(results, "RUN_RESULT_FIELDS", self.id)
        if isinstance(result_fields, LintFinding):
            yield result_fields
            return
        observer_fields = _ledger(results, "RUN_OBSERVER_FIELDS", self.id)
        if isinstance(observer_fields, LintFinding):
            yield observer_fields
            return
        result_names, result_line = result_fields
        observer_names, observer_line = observer_fields

        for name, line, col in fields:
            in_result = name in result_names
            in_observer = name in observer_names
            if in_result and in_observer:
                yield LintFinding(
                    rule=self.id,
                    path=results.relpath,
                    line=result_line,
                    col=0,
                    symbol=name,
                    detail=(
                        f"RunConfig.{name} is in both RUN_RESULT_FIELDS "
                        "and RUN_OBSERVER_FIELDS (runconfig-conflict)"
                    ),
                )
            elif not in_result and not in_observer:
                yield LintFinding(
                    rule=self.id,
                    path=results.relpath,
                    line=line,
                    col=col,
                    symbol=name,
                    detail=(
                        f"RunConfig.{name} has no replay decision "
                        "(runconfig-undecided): declare it in "
                        "RUN_RESULT_FIELDS (changes measured behaviour) "
                        "or RUN_OBSERVER_FIELDS (pure observer)"
                    ),
                )
        for name in sorted((result_names | observer_names) - field_names):
            line = result_line if name in result_names else observer_line
            yield LintFinding(
                rule=self.id,
                path=results.relpath,
                line=line,
                col=0,
                symbol=name,
                detail=(
                    f"ledger entry {name!r} names no RunConfig field "
                    "(runconfig-stale)"
                ),
            )
