"""Rule ``determinism`` — no ambient nondeterminism in reproducible paths.

The compile/cache/delta/serve pipeline promises byte-identical
artifacts for identical inputs (the fuzz differential in
``repro.check.fuzz`` enforces it dynamically); this rule enforces the
*static* discipline that makes the promise cheap to keep.  Within the
scoped modules it flags three families:

wall-clock (``det-wall-clock``)
    Calls (or ``default_factory=`` references) resolving to
    ``time.time``/``monotonic``/``perf_counter`` (and ``_ns``
    variants), ``datetime.datetime.now``/``utcnow``/``today``,
    ``datetime.date.today``.  A timestamp that reaches an artifact
    makes two identical compilations differ.

ambient randomness (``det-rng``)
    ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``, calls on the
    module-level ``random`` generator (``random.random``,
    ``random.choice``...), ``random.Random()`` constructed without a
    seed, and numpy's global generator
    (``numpy.random.rand``/``default_rng()`` unseeded...).  Seeded
    generators (``random.Random(seed)``, ``default_rng(seed)``) pass.

unstable ordering (``det-ordering``)
    ``json.dumps``/``json.dump`` without ``sort_keys=True`` (dict
    insertion order is deterministic per-process but not across code
    paths that build the dict differently), and set expressions
    serialized or hashed directly (set iteration order varies with
    insertion history and, for strings, with ``PYTHONHASHSEED``).

Scope and allowlist
-------------------
Only modules under :data:`SCOPE_PREFIXES` are checked — the paper
harness, examples and benchmarks may time and randomize freely.
Measurement code *inside* the scope that legitimately reads the clock
is allowlisted per ``(module, family)`` in :data:`ALLOWLIST`, each
entry carrying its audit reason; one-off sites use an inline
``# repro-lint: allow[determinism] -- reason`` pragma instead.  The
allowlist exempts exactly one family — a timing-allowlisted module is
still checked for randomness and ordering.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import (
    build_import_table,
    is_set_expression,
    qualified_name,
)
from repro.lint.context import ModuleUnit, ProjectContext
from repro.lint.findings import LintFinding
from repro.lint.registry import LintRule, register_rule

#: Dotted-module prefixes the rule applies to (segment-aligned).
SCOPE_PREFIXES = (
    "repro.core.pipeline",
    "repro.core.compiler",
    "repro.cache",
    "repro.serve",
    "repro.solvers",
)

#: ``(module, family) -> audit reason`` exemptions.  Every entry must
#: say *why* the nondeterminism is harmless; the linter's own test
#: suite asserts the reasons are non-empty.
ALLOWLIST: dict[tuple[str, str], str] = {
    (
        "repro.solvers.base",
        "det-wall-clock",
    ): "TalliedBackend measures solver wall time; lp_wall_ms is "
    "reporting-only and stripped from cache entries by routing_to_entry",
    (
        "repro.serve.loadgen",
        "det-wall-clock",
    ): "load generator is a measurement harness; latencies are the "
    "product, not an artifact input",
    (
        "repro.solvers.ilp_backend",
        "det-wall-clock",
    ): "ILP reference solves time themselves for optimality-gap "
    "reporting; wall_ms is telemetry, never part of a cached artifact",
    (
        "repro.serve.jobs",
        "det-wall-clock",
    ): "job lifecycle timestamps (submitted/started/finished) are "
    "operational telemetry, never part of compiled artifacts",
    (
        "repro.serve.service",
        "det-wall-clock",
    ): "service uptime and trace timeline are wall-clock by definition; "
    "compile results flow through the deterministic compiler unchanged",
}

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_RNG_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
    }
)

#: Module-level ``random.<fn>`` functions driven by the global,
#: ambiently-seeded generator.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
        "normalvariate",
    }
)

#: ``numpy.random.<fn>`` legacy global-state API.
_GLOBAL_NUMPY_FNS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
    }
)

_HASHLIB_CTORS = frozenset(
    {"md5", "sha1", "sha224", "sha256", "sha384", "sha512", "blake2b", "blake2s"}
)


def in_scope(module: str) -> bool:
    """Whether a dotted module name falls under the determinism scope."""
    for prefix in SCOPE_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


def _wall_clock_name(name: str | None) -> bool:
    if name is None:
        return False
    if name in _WALL_CLOCK:
        return True
    # ``from datetime import datetime; datetime.now()`` resolves to
    # ``datetime.datetime.now`` through the import table, but a bare
    # ``datetime.now()`` in a module doing ``import datetime`` does not.
    return name.endswith((".datetime.now", ".datetime.utcnow"))


@register_rule
class DeterminismRule(LintRule):
    id = "determinism"
    name = "determinism sanitizer"
    description = (
        "Compile/cache/delta/serve modules must not read wall clocks, "
        "ambient RNG state, or serialize unordered collections"
    )

    def check_module(
        self, unit: ModuleUnit, project: ProjectContext
    ) -> Iterator[LintFinding]:
        if not in_scope(unit.module):
            return
        imports = build_import_table(unit.tree)
        allowed = {
            family
            for (module, family), _reason in ALLOWLIST.items()
            if module == unit.module
        }
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(unit, node, imports, allowed)
            elif isinstance(node, ast.keyword):
                yield from self._check_keyword(unit, node, imports, allowed)

    # -- helpers ----------------------------------------------------------

    def _finding(
        self,
        unit: ModuleUnit,
        node: ast.AST,
        family: str,
        symbol: str,
        detail: str,
    ) -> LintFinding:
        return LintFinding(
            rule=self.id,
            path=unit.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=symbol,
            detail=f"{detail} ({family})",
        )

    def _check_call(
        self,
        unit: ModuleUnit,
        node: ast.Call,
        imports: dict[str, str],
        allowed: set[str],
    ) -> Iterator[LintFinding]:
        name = qualified_name(node.func, imports)

        if _wall_clock_name(name) and "det-wall-clock" not in allowed:
            yield self._finding(
                unit,
                node,
                "det-wall-clock",
                name or "",
                f"wall-clock read {name}() in a reproducible path; pass "
                "timestamps in from the caller or allowlist the module "
                "with an audit reason",
            )

        yield from self._check_rng_call(unit, node, name, allowed)
        yield from self._check_ordering_call(unit, node, name, imports, allowed)

    def _check_rng_call(
        self,
        unit: ModuleUnit,
        node: ast.Call,
        name: str | None,
        allowed: set[str],
    ) -> Iterator[LintFinding]:
        if "det-rng" in allowed or name is None:
            return
        if name in _RNG_CALLS:
            yield self._finding(
                unit,
                node,
                "det-rng",
                name,
                f"{name}() draws ambient entropy; derive ids from the "
                "cache key or a seeded generator",
            )
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in _GLOBAL_RANDOM_FNS:
                yield self._finding(
                    unit,
                    node,
                    "det-rng",
                    name,
                    f"{name}() uses the global random generator; construct "
                    "random.Random(seed) from config.seed instead",
                )
            elif parts[1] == "Random" and not node.args:
                yield self._finding(
                    unit,
                    node,
                    "det-rng",
                    name,
                    "random.Random() without a seed is entropy-seeded; "
                    "pass config.seed",
                )
        elif name.startswith("numpy.random."):
            tail = name[len("numpy.random.") :]
            if tail in _GLOBAL_NUMPY_FNS:
                yield self._finding(
                    unit,
                    node,
                    "det-rng",
                    name,
                    f"{name}() uses numpy's global RNG state; use "
                    "numpy.random.default_rng(seed)",
                )
            elif tail == "default_rng" and not node.args:
                yield self._finding(
                    unit,
                    node,
                    "det-rng",
                    name,
                    "numpy.random.default_rng() without a seed is "
                    "entropy-seeded; pass config.seed",
                )

    def _check_ordering_call(
        self,
        unit: ModuleUnit,
        node: ast.Call,
        name: str | None,
        imports: dict[str, str],
        allowed: set[str],
    ) -> Iterator[LintFinding]:
        if "det-ordering" in allowed or name is None:
            return
        if name in ("json.dumps", "json.dump"):
            sort_keys = next(
                (kw for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            if sort_keys is None or (
                isinstance(sort_keys.value, ast.Constant)
                and sort_keys.value.value is False
            ):
                yield self._finding(
                    unit,
                    node,
                    "det-ordering",
                    name,
                    f"{name}() without sort_keys=True; serialized key "
                    "order must not depend on dict construction order",
                )
            if node.args and is_set_expression(node.args[0]):
                yield self._finding(
                    unit,
                    node,
                    "det-ordering",
                    name,
                    "serializing a set literal; sort it into a list first "
                    "(set iteration order is insertion/hash dependent)",
                )
        elif (
            name.startswith("hashlib.")
            and name.split(".")[-1] in _HASHLIB_CTORS
            and node.args
            and is_set_expression(node.args[0])
        ):
            yield self._finding(
                unit,
                node,
                "det-ordering",
                name,
                "hashing a set; sort it first — the digest would vary "
                "with iteration order",
            )

    def _check_keyword(
        self,
        unit: ModuleUnit,
        node: ast.keyword,
        imports: dict[str, str],
        allowed: set[str],
    ) -> Iterator[LintFinding]:
        """``field(default_factory=time.time)`` smuggles a clock read in
        without a visible call expression."""
        if node.arg != "default_factory" or "det-wall-clock" in allowed:
            return
        name = qualified_name(node.value, imports)
        if _wall_clock_name(name):
            yield self._finding(
                unit,
                node.value,
                "det-wall-clock",
                name or "",
                f"default_factory={name} stamps wall-clock time into a "
                "dataclass in a reproducible path",
            )
