"""Rule ``trace-taxonomy`` — emitted trace categories must exist.

Every :meth:`Tracer.instant`/:meth:`Tracer.span` call names a category
from the taxonomy documented in :mod:`repro.trace.tracer` and declared
in its :data:`TRACE_CATEGORIES` frozenset.  A typo'd category
(``"compiler"`` for ``"compile"``) fails *silently*: the recorder's
``categories=`` pre-filter simply never matches, the Chrome exporter
renders an orphan row, and downstream analysis that selects by category
misses the events.  This rule makes the typo a lint error instead.

Checked shapes (anywhere under the scanned tree):

- ``<anything>.instant("<cat>", ...)`` / ``<anything>.span("<cat>", ...)``
  — any receiver, so ``self.tracer.instant`` and bare ``tracer.span``
  both count; only literal string first arguments are judged (a
  variable category is assumed to have been validated upstream).
- ``TraceEvent(category=...)`` constructions with a literal category
  (positional or keyword).
- ``TraceRecorder(categories=[...])`` filters whose literal elements
  name nonexistent categories — a filter that can never match is a
  latent bug, not a preference.

The taxonomy itself is read *from the scanned tree* (the
``TRACE_CATEGORIES`` literal in ``repro.trace.tracer``), never from the
running interpreter, so the rule lints exactly the code in front of it.
When the tracer module is not part of the scan the rule is silent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import iter_calls, literal_strings, module_string_tuple
from repro.lint.context import ModuleUnit, ProjectContext
from repro.lint.findings import LintFinding
from repro.lint.registry import LintRule, register_rule

TRACER_MODULE = "repro.trace.tracer"


@register_rule
class TraceTaxonomyRule(LintRule):
    id = "trace-taxonomy"
    name = "trace taxonomy conformance"
    description = (
        "Literal trace categories in emit calls, TraceEvent constructions "
        "and recorder filters must be declared in TRACE_CATEGORIES"
    )

    def check_project(self, project: ProjectContext) -> Iterator[LintFinding]:
        tracer = project.module(TRACER_MODULE)
        if tracer is None:
            return
        entry = module_string_tuple(tracer.tree, "TRACE_CATEGORIES")
        if entry is None:
            yield LintFinding(
                rule=self.id,
                path=tracer.relpath,
                line=1,
                col=0,
                symbol="TRACE_CATEGORIES",
                detail=(
                    "TRACE_CATEGORIES is missing from repro.trace.tracer "
                    "or is not a literal string collection; the taxonomy "
                    "must be statically readable"
                ),
            )
            return
        categories = frozenset(entry[0])
        for unit in project:
            yield from self._check_unit(unit, categories)

    def _check_unit(
        self, unit: ModuleUnit, categories: frozenset[str]
    ) -> Iterator[LintFinding]:
        for call in iter_calls(unit.tree):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "instant",
                "span",
            ):
                yield from self._check_literal_category(
                    unit, call, categories, arg_index=0, context=func.attr
                )
            elif isinstance(func, ast.Name) and func.id == "TraceEvent":
                yield from self._check_literal_category(
                    unit, call, categories, arg_index=0, context="TraceEvent"
                )
            elif isinstance(func, ast.Name) and func.id == "TraceRecorder":
                yield from self._check_filter(unit, call, categories)

    def _check_literal_category(
        self,
        unit: ModuleUnit,
        call: ast.Call,
        categories: frozenset[str],
        arg_index: int,
        context: str,
    ) -> Iterator[LintFinding]:
        category: ast.expr | None = None
        if len(call.args) > arg_index:
            category = call.args[arg_index]
        else:
            for kw in call.keywords:
                if kw.arg == "category":
                    category = kw.value
                    break
        if not (
            isinstance(category, ast.Constant)
            and isinstance(category.value, str)
        ):
            return
        if category.value not in categories:
            yield LintFinding(
                rule=self.id,
                path=unit.relpath,
                line=category.lineno,
                col=category.col_offset,
                symbol=category.value,
                detail=(
                    f"{context}() emits unknown trace category "
                    f"{category.value!r}; declare it in TRACE_CATEGORIES "
                    "and the taxonomy docstring of repro.trace.tracer, "
                    "or fix the typo"
                ),
            )

    def _check_filter(
        self, unit: ModuleUnit, call: ast.Call, categories: frozenset[str]
    ) -> Iterator[LintFinding]:
        for kw in call.keywords:
            if kw.arg != "categories":
                continue
            strings = literal_strings(kw.value)
            if strings is None:
                continue
            for value in strings:
                if value not in categories:
                    yield LintFinding(
                        rule=self.id,
                        path=unit.relpath,
                        line=kw.value.lineno,
                        col=kw.value.col_offset,
                        symbol=value,
                        detail=(
                            f"TraceRecorder filter names unknown category "
                            f"{value!r}; this filter can never match an "
                            "emitted event"
                        ),
                    )
