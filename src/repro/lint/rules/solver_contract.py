"""Rule ``solver-contract`` — hot paths stay sparse and solutions stay frozen.

PR 7 rebuilt the LP hot path on batched *sparse* solves: the modules in
:data:`HOT_PATH_MODULES` must never materialize a dense constraint
matrix (``to_dense``/``toarray`` exist only for the dense reference
backends and certificate checkers), and :class:`repro.solvers.base\
.LPSolution` arrays are read-only views shared across warm-start
reuse — mutating one in place corrupts every later consumer of the
cached solution.

Findings:

``solver-dense``
    A ``.to_dense()`` / ``.toarray()`` / ``.todense()`` call, or a
    ``from_dense(...)`` construction, inside a hot-path module.  Dense
    round-trips are O(rows x cols) memory on problems the sparse path
    handles in O(nnz) — reintroducing one silently reverts the PR-7
    speedup.
``solver-mutation``
    A write through a solution array: ``sol.x[i] = ...``,
    ``sol.dual_eq[...] += ...``, rebinding ``.x``/``.dual_eq``
    attributes, mutating ndarray methods (``fill``/``sort``/``put``/
    ``resize``/``partition``) on them, ``np.copyto(sol.x, ...)``, or
    flipping ``.setflags(write=True)`` / ``.flags.writeable`` to defeat
    the read-only guard.  Copy first: ``x = solution.x.copy()``.

Scope is the static hot-path module list — dense backends
(``reference``, ``scipy_backend``) and certificate checkers legitimately
densify and are simply out of scope, not allowlisted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import qualified_name
from repro.lint.context import ModuleUnit, ProjectContext
from repro.lint.findings import LintFinding
from repro.lint.registry import LintRule, register_rule

#: PR-7-vectorized modules that must stay sparse / mutation-free.
HOT_PATH_MODULES = frozenset(
    {
        "repro.core.interval_allocation",
        "repro.core.interval_scheduling",
        "repro.core.assign_paths",
        "repro.solvers.highs_engine",
        "repro.solvers.ilp_backend",
    }
)

_DENSE_METHODS = frozenset({"to_dense", "toarray", "todense"})
_SOLUTION_ARRAYS = frozenset({"x", "dual_eq"})
_MUTATING_METHODS = frozenset(
    {"fill", "sort", "put", "resize", "partition", "itemset"}
)


def _solution_array_base(node: ast.expr) -> str | None:
    """The array attribute name when ``node`` reaches ``.x``/``.dual_eq``.

    Matches the attribute itself (``sol.x``) and one subscript layer
    over it (``sol.x[i]``) — the shapes an in-place write goes through.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in _SOLUTION_ARRAYS:
        return node.attr
    return None


@register_rule
class SolverContractRule(LintRule):
    id = "solver-contract"
    name = "solver sparse/immutability contract"
    description = (
        "Hot-path modules must not densify sparse matrices or mutate "
        "LPSolution arrays"
    )

    def check_module(
        self, unit: ModuleUnit, project: ProjectContext
    ) -> Iterator[LintFinding]:
        if unit.module not in HOT_PATH_MODULES:
            return
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(unit, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_store(unit, node)

    def _finding(
        self, unit: ModuleUnit, node: ast.AST, symbol: str, detail: str
    ) -> LintFinding:
        return LintFinding(
            rule=self.id,
            path=unit.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=symbol,
            detail=detail,
        )

    def _check_call(
        self, unit: ModuleUnit, node: ast.Call
    ) -> Iterator[LintFinding]:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _DENSE_METHODS:
                yield self._finding(
                    unit,
                    node,
                    func.attr,
                    f".{func.attr}() materializes a dense matrix in a "
                    "hot-path module (solver-dense); keep the sparse CSR "
                    "representation end to end",
                )
                return
            base = _solution_array_base(func.value)
            if base is not None:
                if func.attr in _MUTATING_METHODS:
                    yield self._finding(
                        unit,
                        node,
                        base,
                        f".{base}.{func.attr}() mutates an LPSolution "
                        "array in place (solver-mutation); copy first",
                    )
                elif func.attr == "setflags":
                    yield self._finding(
                        unit,
                        node,
                        base,
                        f".{base}.setflags() toggles the read-only guard "
                        "on a shared solution array (solver-mutation)",
                    )
        elif isinstance(func, ast.Name) and func.id == "from_dense":
            yield self._finding(
                unit,
                node,
                "from_dense",
                "from_dense() builds a CSR matrix through a dense "
                "intermediate in a hot-path module (solver-dense)",
            )
        name = qualified_name(func)
        if (
            name in ("numpy.copyto", "np.copyto")
            and node.args
            and _solution_array_base(node.args[0]) is not None
        ):
            yield self._finding(
                unit,
                node,
                _solution_array_base(node.args[0]) or "",
                "np.copyto() writes into an LPSolution array "
                "(solver-mutation); allocate a fresh array instead",
            )

    def _check_store(
        self, unit: ModuleUnit, node: ast.Assign | ast.AugAssign
    ) -> Iterator[LintFinding]:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            base = _solution_array_base(target)
            if base is not None:
                shape = (
                    f".{base}[...]"
                    if isinstance(target, ast.Subscript)
                    else f".{base}"
                )
                yield self._finding(
                    unit,
                    node,
                    base,
                    f"assignment to {shape} mutates an LPSolution in a "
                    "hot-path module (solver-mutation); solutions are "
                    "shared read-only across warm starts",
                )
            elif (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
            ):
                yield self._finding(
                    unit,
                    node,
                    "writeable",
                    "assignment to .flags.writeable defeats the "
                    "LPSolution read-only guard (solver-mutation)",
                )
