"""Domain rule modules (imported for their registration side effect)."""

from repro.lint.rules import (  # noqa: F401
    cache_key,
    determinism,
    solver_contract,
    trace_taxonomy,
)
