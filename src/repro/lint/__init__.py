"""repro.lint — AST-based invariant linter for the repro codebase.

Where ruff enforces style and mypy enforces types, this package
enforces the *domain* invariants the rest of the system is built on:
cache-key completeness, determinism of reproducible paths, trace
taxonomy conformance, and the sparse/immutable solver contract.  Run it
with ``repro-sr lint``; see ``docs/analysis.md`` for the rules, the
pragma grammar, and the baseline workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.context import ModuleUnit, ProjectContext
from repro.lint.engine import lint_paths, lint_project
from repro.lint.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    LintFinding,
    LintReport,
    sort_findings,
)
from repro.lint.output import render_json, render_sarif, render_text
from repro.lint.registry import (
    RULE_REGISTRY,
    LintRule,
    all_rules,
    register_rule,
    rules_named,
)

__all__ = [
    "Baseline",
    "LintFinding",
    "LintReport",
    "LintRule",
    "ModuleUnit",
    "ProjectContext",
    "RULE_REGISTRY",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "all_rules",
    "lint_paths",
    "lint_project",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_named",
    "sort_findings",
]
