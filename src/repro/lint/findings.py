"""Structured lint findings, reports, and baseline-stable identities.

The shapes here mirror :mod:`repro.check.analyzer`: a rule never raises
on offending source — it yields :class:`LintFinding` records, and the
engine aggregates them into a :class:`LintReport` with the same
``ok``/``summary()`` ergonomics the conformance analyzer has.  The one
extra concept is the **fingerprint**: a line-independent identity used
by the committed baseline (``lint-baseline.json``), so a finding that
merely moves when unrelated code is edited does not churn the baseline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: Finding severities (same vocabulary as ``repro.check``).
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class LintFinding:
    """One invariant violation (or advisory) in the source tree.

    Attributes
    ----------
    rule:
        Stable rule identifier (``"determinism"``, ``"cache-key"``, ...).
    path:
        Path of the offending file, relative to the scanned root, in
        POSIX form — the identity the baseline keys on.
    line, col:
        1-based line and 0-based column of the offending node.
    symbol:
        The offending name when one is identifiable (a call like
        ``time.time``, a dataclass field, a category literal).
    detail:
        Human-readable description of the violated invariant.
    severity:
        :data:`SEVERITY_ERROR` or :data:`SEVERITY_WARNING`.
    """

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    detail: str
    severity: str = SEVERITY_ERROR

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline.

        Deliberately excludes ``line``/``col`` so unrelated edits above
        a baselined finding do not invalidate it; two *distinct*
        findings that collide (same rule, path, symbol and detail) are
        handled as a multiset by :class:`Baseline` matching.
        """
        return f"{self.rule}|{self.path}|{self.symbol}|{self.detail}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def __str__(self) -> str:
        return (
            f"[{self.severity}] {self.location()} {self.rule}: "
            f"{self.detail}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "detail": self.detail,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LintFinding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload.get("line", 0)),
            col=int(payload.get("col", 0)),
            symbol=str(payload.get("symbol", "")),
            detail=str(payload["detail"]),
            severity=str(payload.get("severity", SEVERITY_ERROR)),
        )


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint pass over a source tree.

    ``findings`` are the *live* violations: not pragma-suppressed and
    not covered by the baseline.  ``suppressed`` counts per-line pragma
    suppressions (kept as a count, not records — pragmas are the audited
    in-source mechanism); ``baselined`` carries the findings a committed
    baseline absorbed, so ``--fix-baseline`` can regenerate the file
    without re-scanning.
    """

    findings: tuple[LintFinding, ...]
    files_scanned: int
    rules_run: tuple[str, ...]
    suppressed: int = 0
    baselined: tuple[LintFinding, ...] = ()
    stale_baseline: int = 0

    @property
    def ok(self) -> bool:
        """True when no unsuppressed error-severity finding remains."""
        return not any(f.severity == SEVERITY_ERROR for f in self.findings)

    def by_rule(self) -> dict[str, int]:
        """Live finding counts per rule id, sorted by rule id."""
        counts = Counter(f.rule for f in self.findings)
        return dict(sorted(counts.items()))

    def summary(self) -> str:
        head = (
            f"{len(self.findings)} finding(s) over {self.files_scanned} "
            f"file(s), {len(self.rules_run)} rule(s)"
        )
        parts = [head]
        if self.suppressed:
            parts.append(f"{self.suppressed} pragma-suppressed")
        if self.baselined:
            parts.append(f"{len(self.baselined)} baselined")
        if self.stale_baseline:
            parts.append(f"{self.stale_baseline} stale baseline entr(ies)")
        return "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "suppressed": self.suppressed,
            "stale_baseline": self.stale_baseline,
            "by_rule": self.by_rule(),
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def sort_findings(findings: Iterable[LintFinding]) -> list[LintFinding]:
    """Deterministic report order: path, line, column, rule."""
    return sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.detail)
    )
