"""The committed lint baseline (``lint-baseline.json``).

A baseline is the audited debt ledger: findings that predate a rule (or
are accepted for now) live in a committed JSON file instead of blocking
CI.  Entries are :meth:`~repro.lint.findings.LintFinding.fingerprint`
components — rule, root-relative POSIX path, symbol, detail — with *no*
line numbers, so edits elsewhere in a file do not churn the file.
Matching is a multiset: two identical violations need two entries, and
fixing one of them surfaces the other.

The file is regenerated with ``repro-sr lint --fix-baseline`` and is
byte-deterministic: entries sorted by fingerprint, two-space indent,
trailing newline — the same output from any machine.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.lint.findings import LintFinding, sort_findings

BASELINE_VERSION = "repro.lint-baseline/1"


class Baseline:
    """Multiset of accepted finding fingerprints."""

    def __init__(self, entries: Iterable[dict[str, str]] = ()) -> None:
        self.entries = list(entries)
        self._counts = Counter(
            self._fingerprint(entry) for entry in self.entries
        )

    @staticmethod
    def _fingerprint(entry: dict[str, str]) -> str:
        return "|".join(
            (
                entry.get("rule", ""),
                entry.get("path", ""),
                entry.get("symbol", ""),
                entry.get("detail", ""),
            )
        )

    def __len__(self) -> int:
        return len(self.entries)

    def partition(
        self, findings: Iterable[LintFinding]
    ) -> tuple[list[LintFinding], list[LintFinding], int]:
        """Split findings into ``(live, absorbed)`` + stale entry count.

        Each baseline entry absorbs at most one finding (multiset
        semantics); entries matching nothing are *stale* — the debt was
        paid and the ledger should be regenerated.
        """
        budget = Counter(self._counts)
        live: list[LintFinding] = []
        absorbed: list[LintFinding] = []
        for finding in sort_findings(findings):
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                absorbed.append(finding)
            else:
                live.append(finding)
        stale = sum(budget.values())
        return live, absorbed, stale

    @classmethod
    def from_findings(cls, findings: Iterable[LintFinding]) -> "Baseline":
        entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
                "detail": f.detail,
            }
            for f in sort_findings(findings)
        ]
        entries.sort(key=cls._fingerprint)
        return cls(entries)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_VERSION!r}); regenerate with "
                "repro-sr lint --fix-baseline"
            )
        return cls(payload.get("entries", []))

    def save(self, path: Path | str) -> None:
        """Write deterministically (sorted entries, stable layout)."""
        entries = sorted(self.entries, key=self._fingerprint)
        payload = {"version": BASELINE_VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
