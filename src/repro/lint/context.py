"""Parsed source units and the whole-project context rules consume.

A :class:`ModuleUnit` is one parsed file: path, dotted module name, AST,
and the per-line suppression pragmas.  A :class:`ProjectContext` is the
set of units one lint pass sees — rules that cross-check *between*
modules (cache-key completeness reads the ``CompilerConfig`` dataclass
in one file and the elide lists in another) resolve their peers through
:meth:`ProjectContext.module`.

Suppression pragmas
-------------------
A finding is suppressed by a trailing comment on its line::

    self._started = time.time()  # repro-lint: allow[determinism] -- uptime metric

The bracket names one rule id (or ``*`` for any rule); everything after
``--`` is the audit reason.  Pragmas are extracted with :mod:`tokenize`
so string literals that merely *contain* the pragma text never
suppress anything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Pragma grammar: ``# repro-lint: allow[rule-id]`` with an optional
#: ``-- reason`` tail.  Multiple pragmas may share one comment:
#: ``allow[determinism] allow[trace-taxonomy]``.
PRAGMA_PATTERN = re.compile(r"repro-lint:\s*((?:allow\[[\w*-]+\]\s*)+)")
_ALLOW_PATTERN = re.compile(r"allow\[([\w*-]+)\]")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppressed rule ids (``"*"`` suppresses every rule).

    Tokenizes rather than regex-scanning raw lines so pragma text inside
    string literals is inert.  A file that fails to tokenize (it will
    also fail :func:`ast.parse`) yields no suppressions.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_PATTERN.search(token.string)
            if match is None:
                continue
            rules = set(_ALLOW_PATTERN.findall(match.group(1)))
            if rules:
                line = token.start[0]
                suppressions.setdefault(line, set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return {line: frozenset(rules) for line, rules in suppressions.items()}


@dataclass(frozen=True)
class ModuleUnit:
    """One parsed source file.

    Attributes
    ----------
    relpath:
        POSIX path relative to the scanned root (baseline identity).
    module:
        Dotted module name derived from the path
        (``repro/cache/keys.py`` → ``repro.cache.keys``;
        ``__init__.py`` maps to its package).
    tree:
        The parsed :class:`ast.Module`.
    suppressions:
        ``line -> rule ids`` pragma map from :func:`parse_suppressions`.
    """

    relpath: str
    module: str
    source: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    def suppresses(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and (rule_id in rules or "*" in rules)


def module_name_for(relpath: str) -> str:
    """Dotted module name of a POSIX-relative source path."""
    parts = relpath.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(part for part in parts if part)


class ProjectContext:
    """Every module of one lint pass, addressable by dotted name."""

    def __init__(self, units: Iterable[ModuleUnit]) -> None:
        self.units: tuple[ModuleUnit, ...] = tuple(units)
        self.by_module: dict[str, ModuleUnit] = {
            unit.module: unit for unit in self.units
        }

    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self) -> Iterator[ModuleUnit]:
        return iter(self.units)

    def module(self, name: str) -> ModuleUnit | None:
        """The unit of one dotted module name, when scanned."""
        return self.by_module.get(name)

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ProjectContext":
        """Build a context from in-memory sources, keyed by module name.

        The self-check corpus and the rule unit tests use this to lint
        synthetic files without touching the filesystem.  Paths are
        derived from the module names (``a.b`` → ``a/b.py``).
        """
        units = []
        for module, source in sorted(sources.items()):
            relpath = module.replace(".", "/") + ".py"
            units.append(
                ModuleUnit(
                    relpath=relpath,
                    module=module,
                    source=source,
                    tree=ast.parse(source),
                    suppressions=parse_suppressions(source),
                )
            )
        return cls(units)

    @classmethod
    def from_root(cls, root: Path | str) -> "ProjectContext":
        """Parse every ``*.py`` under ``root`` (sorted, deterministic).

        Unparsable files are skipped — the invariant linter's job is
        domain rules, not syntax checking (the interpreter and ruff both
        report syntax errors already).
        """
        root = Path(root)
        units = []
        for path in sorted(root.rglob("*.py")):
            relpath = path.relative_to(root).as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, SyntaxError, ValueError):
                continue
            units.append(
                ModuleUnit(
                    relpath=relpath,
                    module=module_name_for(relpath),
                    source=source,
                    tree=tree,
                    suppressions=parse_suppressions(source),
                )
            )
        return cls(units)
