"""Render a :class:`~repro.lint.findings.LintReport` as text/JSON/SARIF.

SARIF output targets the 2.1.0 schema — the minimal honest subset
(tool descriptor with rule metadata, one result per live finding with a
physical location) that code-scanning UIs ingest.  All three formats
are byte-deterministic for a given report.
"""

from __future__ import annotations

import json

from repro.lint.findings import SEVERITY_ERROR, LintFinding, LintReport
from repro.lint.registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    """Human-readable listing: one line per finding, then the summary."""
    lines = [str(finding) for finding in report.findings]
    if report.stale_baseline:
        lines.append(
            f"note: {report.stale_baseline} baseline entr(ies) no longer "
            "match any finding; run `repro-sr lint --fix-baseline`"
        )
    lines.append(report.summary())
    lines.append("OK" if report.ok else "FAIL")
    return "\n".join(lines) + "\n"


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"


def _sarif_result(finding: LintFinding) -> dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error" if finding.severity == SEVERITY_ERROR else "warning",
        "message": {"text": finding.detail},
        "partialFingerprints": {"reproLint/v1": finding.fingerprint()},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log with rule metadata and one result per finding."""
    rules_meta = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
        }
        for rule in all_rules()
        if rule.id in report.rules_run
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/analysis"
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": [
                    _sarif_result(finding) for finding in report.findings
                ],
                "properties": {
                    "filesScanned": report.files_scanned,
                    "suppressed": report.suppressed,
                    "baselined": len(report.baselined),
                    "staleBaseline": report.stale_baseline,
                },
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
