"""Shared AST analysis helpers for the lint rules.

The rules only ever need a small, honest subset of static analysis:
resolve a call expression to a dotted name *through the module's
imports* (so ``from time import time as now; now()`` is still seen as
``time.time``), read literal string tuples/dict keys from module-level
assignments, and enumerate dataclass fields.  Everything here is pure
:mod:`ast`; nothing imports or executes the linted code.
"""

from __future__ import annotations

import ast
from typing import Iterator


def build_import_table(tree: ast.Module) -> dict[str, str]:
    """Local alias → fully qualified dotted name, from all imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as clock`` maps ``clock -> time.perf_counter``;
    relative imports keep their module tail (``from .keys import X`` →
    ``keys.X``) — good enough for the rules, which match on suffixes of
    well-known absolute names.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    table[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def qualified_name(
    node: ast.expr, imports: dict[str, str] | None = None
) -> str | None:
    """The dotted name of a ``Name``/``Attribute`` chain, else ``None``.

    The chain's root is substituted through ``imports`` when given, so
    ``np.zeros`` resolves to ``numpy.zeros``.  Chains rooted in calls,
    subscripts or literals resolve to ``None``.
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = current.id
    if imports and root in imports:
        root = imports[root]
    parts.append(root)
    return ".".join(reversed(parts))


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def literal_strings(node: ast.expr) -> list[str] | None:
    """The string elements of a literal tuple/list/set, else ``None``.

    Non-literal or mixed-type collections resolve to ``None`` — a rule
    that cannot *prove* the contents never guesses.
    """
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    values = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        values.append(element.value)
    return values


def module_string_tuple(
    tree: ast.Module, name: str
) -> tuple[list[str], int] | None:
    """A module-level ``NAME = ("a", "b", ...)`` literal and its line.

    Matches plain assignments and annotated assignments whose value is
    a literal tuple/list/set of strings (also a ``frozenset({...})`` /
    ``tuple([...])`` call over one).  Returns ``None`` when the name is
    absent or its value is not statically a string collection.
    """
    for node in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        assert value is not None
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "tuple", "set", "list")
            and len(value.args) == 1
        ):
            value = value.args[0]
        strings = literal_strings(value)
        if strings is None:
            return None
        return strings, node.lineno
    return None


def module_dict_string_keys(
    tree: ast.Module, name: str
) -> tuple[list[str], int] | None:
    """The literal string keys of a module-level ``NAME = {...}`` dict."""
    for node in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if not isinstance(value, ast.Dict):
            return None
        keys = []
        for key in value.keys:
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                return None
            keys.append(key.value)
        return keys, node.lineno
    return None


def find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def dataclass_fields(classdef: ast.ClassDef) -> list[tuple[str, int, int]]:
    """``(name, line, col)`` of each annotated field in a class body.

    ``ClassVar``-annotated names are skipped (not dataclass fields);
    underscore-prefixed names are kept — a private knob still needs a
    cache-identity decision.
    """
    fields = []
    for node in classdef.body:
        if not isinstance(node, ast.AnnAssign):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        annotation = node.annotation
        base = annotation
        if isinstance(base, ast.Subscript):
            base = base.value
        base_name = qualified_name(base) or ""
        if base_name.split(".")[-1] == "ClassVar":
            continue
        fields.append((node.target.id, node.lineno, node.col_offset))
    return fields


def is_set_expression(node: ast.expr) -> bool:
    """Whether an expression is statically an unordered set value."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False
