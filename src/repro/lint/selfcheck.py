"""Mutation self-validation of the lint rules (the ``repro.check.mutate``
pattern turned on the linter itself).

A static rule that silently stops matching is worse than no rule — CI
stays green while the invariant rots.  So each rule ships a *corpus*:
a clean in-memory project that must lint clean, plus seeded mutants —
single injected violations the rule must flag.  The test gate
(``tests/unit/test_lint_selfcheck.py``) requires a >=95% kill rate per
rule and zero findings on every clean template.

Mutants are derived from the clean sources by textual substitution, so
each one is a *minimal* delta; the seed drives cosmetic variation
(identifier names, filler statements) to keep rules honest about
matching structure rather than the exact template text.  Everything is
deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.lint.context import ProjectContext
from repro.lint.engine import lint_project
from repro.lint.registry import rules_named


@dataclass(frozen=True)
class Mutant:
    """One seeded violation the named rule must detect."""

    rule: str
    name: str
    sources: dict[str, str]


@dataclass(frozen=True)
class KillResult:
    rule: str
    total: int
    killed: int
    survivors: tuple[str, ...]

    @property
    def rate(self) -> float:
        return self.killed / self.total if self.total else 1.0


# ---------------------------------------------------------------------------
# Clean templates, one project per rule.
# ---------------------------------------------------------------------------

_DETERMINISM_CLEAN = {
    "repro.cache.synthetic": (
        "import json\n"
        "import random\n"
        "import time  # used only via caller-provided timestamps\n"
        "\n"
        "\n"
        "def canonical(payload, now):\n"
        "    blob = json.dumps(payload, sort_keys=True)\n"
        "    return blob, now\n"
        "\n"
        "\n"
        "def make_rng(seed):\n"
        "    return random.Random(seed)\n"
    ),
    # Out-of-scope module: may do anything without tripping the rule.
    "repro.bench.harness": (
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
    ),
}

_TRACE_CLEAN = {
    "repro.trace.tracer": (
        'TRACE_CATEGORIES = ("sim", "link", "compile", "serve")\n'
    ),
    "repro.demo": (
        "from repro.trace.tracer import TraceEvent, TraceRecorder\n"
        "\n"
        "\n"
        "def emit(tracer, t):\n"
        '    tracer.instant("sim", "tick", t)\n'
        '    tracer.span("link", "occupy", t, t + 1.0)\n'
        '    event = TraceEvent("compile", "stage", t)\n'
        '    recorder = TraceRecorder(categories=["serve"])\n'
        "    return event, recorder\n"
    ),
}

_SOLVER_CLEAN = {
    "repro.core.interval_allocation": (
        "def extract(solution, matrix):\n"
        "    x = solution.x.copy()\n"
        "    duals = solution.dual_eq.copy()\n"
        "    nnz = matrix.nnz\n"
        "    return float(x[0]), float(duals[0]), nnz\n"
    ),
    # Dense backends are out of scope by design.
    "repro.solvers.reference": (
        "def solve(matrix):\n"
        "    return matrix.to_dense()\n"
    ),
}

_CACHE_KEY_CLEAN = {
    "repro.core.compiler": (
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass(frozen=True)\n"
        "class CompilerConfig:\n"
        "    seed: int = 0\n"
        "    max_paths: int = 4\n"
        "    lp_batch: bool = True\n"
    ),
    "repro.cache.keys": (
        'HASHED_CONFIG_FIELDS = ("seed", "max_paths")\n'
        'PERF_ONLY_CONFIG_FIELDS = ("lp_batch",)\n'
        "\n"
        "\n"
        "def canonical_config(fields):\n"
        "    fields = dict(fields)\n"
        "    for name in PERF_ONLY_CONFIG_FIELDS:\n"
        "        fields.pop(name, None)\n"
        "    return fields\n"
    ),
    "repro.results": (
        "from dataclasses import dataclass\n"
        "\n"
        'RUN_RESULT_FIELDS = ("invocations", "seed")\n'
        'RUN_OBSERVER_FIELDS = ("tracer",)\n'
        "\n"
        "\n"
        "@dataclass(frozen=True)\n"
        "class RunConfig:\n"
        "    invocations: int = 1\n"
        "    seed: int = 0\n"
        "    tracer: object = None\n"
    ),
    "repro.serve.jobs": (
        '_CONFIG_FIELDS = {"seed": int, "max_paths": int}\n'
    ),
}

CLEAN_TEMPLATES: dict[str, dict[str, str]] = {
    "determinism": _DETERMINISM_CLEAN,
    "trace-taxonomy": _TRACE_CLEAN,
    "solver-contract": _SOLVER_CLEAN,
    "cache-key": _CACHE_KEY_CLEAN,
}


def clean_sources(rule_id: str) -> dict[str, str]:
    try:
        return dict(CLEAN_TEMPLATES[rule_id])
    except KeyError:
        raise ValueError(f"no self-check corpus for rule {rule_id!r}")


# ---------------------------------------------------------------------------
# Mutant generation.
# ---------------------------------------------------------------------------

#: Statements the determinism rule must flag when injected into the
#: in-scope module's function body.  ``{var}`` is seeded filler.
_DETERMINISM_INJECTIONS = [
    ("wall-clock-time", "", "    {var} = time.time()\n"),
    ("wall-clock-time-ns", "", "    {var} = time.time_ns()\n"),
    ("wall-clock-monotonic", "", "    {var} = time.monotonic()\n"),
    ("wall-clock-perf", "", "    {var} = time.perf_counter()\n"),
    (
        "wall-clock-datetime",
        "import datetime\n",
        "    {var} = datetime.datetime.now()\n",
    ),
    (
        "wall-clock-from-import",
        "from datetime import datetime\n",
        "    {var} = datetime.now()\n",
    ),
    (
        "wall-clock-aliased",
        "from time import perf_counter as clock\n",
        "    {var} = clock()\n",
    ),
    ("rng-urandom", "import os\n", "    {var} = os.urandom(8)\n"),
    ("rng-uuid4", "import uuid\n", "    {var} = uuid.uuid4()\n"),
    ("rng-uuid1", "import uuid\n", "    {var} = uuid.uuid1()\n"),
    ("rng-global-random", "", "    {var} = random.random()\n"),
    ("rng-global-choice", "", "    {var} = random.choice([1, 2])\n"),
    ("rng-global-shuffle", "", "    random.shuffle({var}_items)\n"),
    ("rng-unseeded-instance", "", "    {var} = random.Random()\n"),
    (
        "rng-numpy-global",
        "import numpy\n",
        "    {var} = numpy.random.rand(3)\n",
    ),
    (
        "rng-numpy-unseeded",
        "import numpy\n",
        "    {var} = numpy.random.default_rng()\n",
    ),
    ("ordering-dumps", "", "    {var} = json.dumps(payload)\n"),
    (
        "ordering-dumps-false",
        "",
        "    {var} = json.dumps(payload, sort_keys=False)\n",
    ),
    (
        "ordering-set-literal",
        "",
        '    {var} = json.dumps({{"a", "b"}}, sort_keys=True)\n',
    ),
    (
        "ordering-hash-set",
        "import hashlib\n",
        "    {var} = hashlib.sha256(frozenset(payload))\n",
    ),
    (
        "wall-clock-default-factory",
        "from dataclasses import dataclass, field\n",
        "",
        # Appended at module level rather than inside the function:
        "\n\n@dataclass\nclass Stamped:\n"
        "    at: float = field(default_factory=time.time)\n",
    ),
]

_TRACE_TYPOS = ["simm", "compiler", "links", "Serve", "tracee"]

_SOLVER_INJECTIONS = [
    ("mutate-x-subscript", "    solution.x[0] = 1.0\n"),
    ("mutate-dual-augassign", "    solution.dual_eq[0] += 2.0\n"),
    ("mutate-x-fill", "    solution.x.fill(0.0)\n"),
    ("mutate-x-sort", "    solution.x.sort()\n"),
    ("mutate-x-rebind", "    solution.x = x\n"),
    ("mutate-writeable", "    solution.x.flags.writeable = True\n"),
    ("mutate-setflags", "    solution.x.setflags(write=True)\n"),
    ("dense-to-dense", "    dense = matrix.to_dense()\n"),
    ("dense-toarray", "    dense = matrix.toarray()\n"),
    ("dense-todense", "    dense = matrix.todense()\n"),
]


def _filler_var(rng: random.Random) -> str:
    return "v_" + "".join(rng.choice("abcdefgh") for _ in range(4))


def _determinism_mutants(seed: int) -> list[Mutant]:
    rng = random.Random(seed)
    mutants = []
    for entry in _DETERMINISM_INJECTIONS:
        name, prelude, body = entry[0], entry[1], entry[2]
        tail = entry[3] if len(entry) > 3 else ""
        sources = clean_sources("determinism")
        source = sources["repro.cache.synthetic"]
        if prelude:
            source = prelude + source
        marker = "    return blob, now\n"
        injected = body.format(var=_filler_var(rng))
        source = source.replace(marker, injected + marker) + tail
        sources["repro.cache.synthetic"] = source
        mutants.append(Mutant("determinism", name, sources))
    # np.copyto-style mutation lives in the solver rule; here add one
    # mutant in a *different* in-scope package to prove the scope is
    # prefix-based, not a single-module match.
    sources = clean_sources("determinism")
    sources["repro.serve.synthetic"] = (
        "import time\n\n\ndef stamp():\n    return time.monotonic()\n"
    )
    mutants.append(Mutant("determinism", "wall-clock-serve-module", sources))
    return mutants


def _trace_mutants(seed: int) -> list[Mutant]:
    rng = random.Random(seed)
    sites = [
        ("instant", '"sim", "tick"'),
        ("span", '"link", "occupy"'),
        ("event", '"compile", "stage"'),
        ("filter", '["serve"]'),
    ]
    replacements = {
        "instant": '"{typo}", "tick"',
        "span": '"{typo}", "occupy"',
        "event": '"{typo}", "stage"',
        "filter": '["{typo}"]',
    }
    mutants = []
    for site, original in sites:
        for typo in rng.sample(_TRACE_TYPOS, 3):
            sources = clean_sources("trace-taxonomy")
            sources["repro.demo"] = sources["repro.demo"].replace(
                original, replacements[site].format(typo=typo)
            )
            mutants.append(
                Mutant("trace-taxonomy", f"{site}-{typo}", sources)
            )
    # Keyword-form TraceEvent construction.
    sources = clean_sources("trace-taxonomy")
    sources["repro.demo"] += (
        "\n\ndef emit_kw(t):\n"
        '    return TraceEvent(category="fault2", name="down", time=t)\n'
    )
    mutants.append(Mutant("trace-taxonomy", "event-keyword-fault2", sources))
    # Unreadable taxonomy must itself be a finding.
    sources = clean_sources("trace-taxonomy")
    sources["repro.trace.tracer"] = (
        "TRACE_CATEGORIES = tuple(sorted(__import__('os').environ))\n"
    )
    mutants.append(Mutant("trace-taxonomy", "taxonomy-unreadable", sources))
    return mutants


def _solver_mutants(seed: int) -> list[Mutant]:
    mutants = []
    for name, line in _SOLVER_INJECTIONS:
        sources = clean_sources("solver-contract")
        source = sources["repro.core.interval_allocation"]
        marker = "    return float(x[0]), float(duals[0]), nnz\n"
        sources["repro.core.interval_allocation"] = source.replace(
            marker, line + marker
        )
        mutants.append(Mutant("solver-contract", name, sources))
    # np.copyto through an import alias.
    sources = clean_sources("solver-contract")
    sources["repro.core.interval_allocation"] = (
        "import numpy as np\n\n"
        + sources["repro.core.interval_allocation"].replace(
            "    return float(x[0]), float(duals[0]), nnz\n",
            "    np.copyto(solution.x, x)\n"
            "    return float(x[0]), float(duals[0]), nnz\n",
        )
    )
    mutants.append(Mutant("solver-contract", "mutate-np-copyto", sources))
    # A second hot-path module must be covered too.
    sources = clean_sources("solver-contract")
    sources["repro.solvers.ilp_backend"] = (
        "def tighten(matrix):\n    return matrix.to_dense()\n"
    )
    mutants.append(Mutant("solver-contract", "dense-ilp-backend", sources))
    return mutants


def _cache_key_mutants(seed: int) -> list[Mutant]:
    mutants = []

    def variant(name: str, module: str, old: str, new: str) -> None:
        sources = clean_sources("cache-key")
        mutated = sources[module].replace(old, new)
        assert mutated != sources[module], name
        sources[module] = mutated
        mutants.append(Mutant("cache-key", name, sources))

    variant(
        "config-undecided",
        "repro.core.compiler",
        "    lp_batch: bool = True\n",
        "    lp_batch: bool = True\n    retries: int = 3\n",
    )
    variant(
        "config-conflict",
        "repro.cache.keys",
        'PERF_ONLY_CONFIG_FIELDS = ("lp_batch",)',
        'PERF_ONLY_CONFIG_FIELDS = ("lp_batch", "seed")',
    )
    variant(
        "config-stale",
        "repro.cache.keys",
        'HASHED_CONFIG_FIELDS = ("seed", "max_paths")',
        'HASHED_CONFIG_FIELDS = ("seed", "max_paths", "ghost_knob")',
    )
    variant(
        "config-elide-unaudited",
        "repro.cache.keys",
        "    return fields\n",
        '    fields.pop("sync_margin", None)\n    return fields\n',
    )
    variant(
        "ledger-unreadable",
        "repro.cache.keys",
        'HASHED_CONFIG_FIELDS = ("seed", "max_paths")',
        "HASHED_CONFIG_FIELDS = tuple(sorted(_SOMEWHERE))",
    )
    variant(
        "serve-config-unknown",
        "repro.serve.jobs",
        '"max_paths": int}',
        '"max_paths": int, "unknown_knob": int}',
    )
    variant(
        "runconfig-undecided",
        "repro.results",
        "    tracer: object = None\n",
        "    tracer: object = None\n    warmup: int = 0\n",
    )
    variant(
        "runconfig-conflict",
        "repro.results",
        'RUN_OBSERVER_FIELDS = ("tracer",)',
        'RUN_OBSERVER_FIELDS = ("tracer", "seed")',
    )
    variant(
        "runconfig-stale",
        "repro.results",
        'RUN_RESULT_FIELDS = ("invocations", "seed")',
        'RUN_RESULT_FIELDS = ("invocations", "seed", "phantom")',
    )
    variant(
        "runconfig-ledger-missing",
        "repro.results",
        'RUN_OBSERVER_FIELDS = ("tracer",)\n',
        "",
    )
    return mutants


_GENERATORS = {
    "determinism": _determinism_mutants,
    "trace-taxonomy": _trace_mutants,
    "solver-contract": _solver_mutants,
    "cache-key": _cache_key_mutants,
}


def mutants(rule_id: str, seed: int = 0) -> list[Mutant]:
    """The seeded mutant corpus of one rule."""
    try:
        return _GENERATORS[rule_id](seed)
    except KeyError:
        raise ValueError(f"no self-check corpus for rule {rule_id!r}")


def corpus_rule_ids() -> list[str]:
    return sorted(_GENERATORS)


# ---------------------------------------------------------------------------
# The kill gate.
# ---------------------------------------------------------------------------


def _rule_findings(rule_id: str, sources: dict[str, str]) -> int:
    project = ProjectContext.from_sources(sources)
    report = lint_project(project, rules=rules_named([rule_id]))
    return len(report.findings)


def clean_finding_count(rule_id: str) -> int:
    """Findings the rule raises on its own clean template (must be 0)."""
    return _rule_findings(rule_id, clean_sources(rule_id))


def kill_check(rule_id: str, seed: int = 0) -> KillResult:
    """Run the rule over its corpus; a mutant is *killed* when flagged."""
    corpus = mutants(rule_id, seed)
    survivors = []
    for mutant in corpus:
        if _rule_findings(rule_id, mutant.sources) == 0:
            survivors.append(mutant.name)
    return KillResult(
        rule=rule_id,
        total=len(corpus),
        killed=len(corpus) - len(survivors),
        survivors=tuple(survivors),
    )
