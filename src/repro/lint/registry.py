"""The lint rule contract and registry.

A rule is a class with a stable ``id``, registered at import time via
:func:`register_rule`; the engine instantiates every registered rule
(or the subset ``--rules`` names) per pass.  Rules see the whole
:class:`~repro.lint.context.ProjectContext` — most iterate its modules,
but cross-module rules (cache-key completeness) address specific peers
by dotted name.

Adding a rule
-------------
1. Subclass :class:`LintRule` in a module under ``repro/lint/rules/``,
   set ``id``/``name``/``description``, implement either
   :meth:`LintRule.check_module` (per-file rules) or override
   :meth:`LintRule.check_project` (cross-module rules).
2. Decorate it with ``@register_rule``.
3. Import the module from ``repro/lint/rules/__init__.py``.
4. Add a seeded mutation corpus for it in
   :mod:`repro.lint.selfcheck` — the ≥95% kill gate in
   ``tests/unit/test_lint_selfcheck.py`` will refuse a rule that cannot
   catch its own seeded violations.

See ``docs/analysis.md`` for the full walk-through.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.context import ModuleUnit, ProjectContext
from repro.lint.findings import LintFinding


class LintRule:
    """Base class of every invariant rule."""

    #: Stable machine-readable identifier (baseline + pragma key).
    id: str = ""
    #: Short human-readable name (SARIF rule title).
    name: str = ""
    #: One-line description of the invariant the rule certifies.
    description: str = ""

    def check_project(self, project: ProjectContext) -> Iterator[LintFinding]:
        """Findings over the whole project (default: per-module)."""
        for unit in project:
            yield from self.check_module(unit, project)

    def check_module(
        self, unit: ModuleUnit, project: ProjectContext
    ) -> Iterator[LintFinding]:
        """Findings in one module (cross-module rules may ignore this)."""
        return iter(())


#: Registered rule classes by id, in registration order.
RULE_REGISTRY: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[LintRule]:
    """One instance of every registered rule, in registration order."""
    import repro.lint.rules  # noqa: F401  - registration side effect

    return [cls() for cls in RULE_REGISTRY.values()]


def rules_named(ids: list[str] | None) -> list[LintRule]:
    """Instances of the named rules (all when ``ids`` is ``None``)."""
    rules = all_rules()
    if ids is None:
        return rules
    known = {rule.id for rule in rules}
    unknown = [rule_id for rule_id in ids if rule_id not in known]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(sorted(unknown))}; "
            f"expected a subset of {', '.join(sorted(known))}"
        )
    wanted = set(ids)
    return [rule for rule in rules if rule.id in wanted]
