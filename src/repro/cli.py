"""Command-line interface: ``repro-sr``.

Runs a figure-style experiment from the shell::

    repro-sr utilization --topology hypercube6 --bandwidth 64
    repro-sr pipeline --topology torus4x4x4 --bandwidth 128 --loads 0.5 1.0
    repro-sr compile --topology ghc444 --bandwidth 64 --load 0.5
    repro-sr matrix --jobs 4 --cache-dir ~/.cache/repro-schedules
    repro-sr diagnose --topology hypercube6 --models 16 --load 1.0 --wr
    repro-sr faults --topology 6cube --fail-links 1 --seed 0
    repro-sr trace --mode sr --load 0.5 --out trace.json
    repro-sr check omega.json --topology hypercube6
    repro-sr fuzz --count 24 --out fuzz-reproducers/
    repro-sr serve --port 8750 --workers 4 --cache-dir ~/.cache/repro-farm
    repro-sr submit --topology ghc444 --bandwidth 128 --load 0.5 --port 8750
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError, RepairInfeasibleError, SchedulingError
from repro.experiments import (
    pipeline_comparison,
    standard_setup,
    utilization_comparison,
)
from repro.core.compiler import CompilerConfig, compile_schedule
from repro.mapping.allocation import (
    bfs_allocation,
    random_allocation,
    sequential_allocation,
)
from repro.metrics import load_sweep
from repro.report import format_spike, format_table
from repro.tfg import dvb_tfg
from repro.topology import (
    STANDARD_TOPOLOGIES as TOPOLOGIES,
    TOPOLOGY_ALIASES,
    make_topology,
)

ALLOCATORS = ("sequential", "bfs", "random", "annealed")


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        choices=sorted(TOPOLOGIES) + sorted(TOPOLOGY_ALIASES),
        default="hypercube6",
    )
    parser.add_argument("--bandwidth", type=float, default=64.0)
    parser.add_argument("--models", type=int, default=8, help="DVB object models")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--allocator", choices=ALLOCATORS, default="sequential",
        help="task placement strategy (random/annealed honour --seed)",
    )


def _allocator(args):
    """The placement function a run uses; seeded variants close over
    ``--seed`` so repeated invocations are reproducible."""
    name = getattr(args, "allocator", "sequential")
    if name == "sequential":
        return sequential_allocation
    if name == "bfs":
        return bfs_allocation
    if name == "random":
        return lambda tfg, topology: random_allocation(tfg, topology, args.seed)
    from repro.mapping.annealing import annealed_allocation

    return lambda tfg, topology: annealed_allocation(tfg, topology, seed=args.seed)


def _setup(args):
    return standard_setup(
        dvb_tfg(args.models),
        make_topology(args.topology),
        args.bandwidth,
        allocator=_allocator(args),
    )


def _cmd_utilization(args) -> int:
    setup = _setup(args)
    loads = args.loads or load_sweep()
    points = utilization_comparison(setup, loads, seed=args.seed)
    rows = [
        (f"{p.load:.4f}", f"{p.u_lsd:.4f}", f"{p.u_heuristic:.4f}")
        for p in points
    ]
    print(
        format_table(
            ("load", "U (LSD->MSD)", "U (AssignPaths)"),
            rows,
            title=f"{setup.topology.name} @ B={args.bandwidth} bytes/us",
        )
    )
    return 0


def _cmd_pipeline(args) -> int:
    setup = _setup(args)
    loads = args.loads or load_sweep()
    points = pipeline_comparison(setup, loads, compiler_config=CompilerConfig(seed=args.seed))
    rows = []
    for p in points:
        rows.append(
            (
                f"{p.load:.4f}",
                "deadlock" if p.wr_deadlock else format_spike(p.wr_throughput),
                "-" if p.wr_deadlock else format_spike(p.wr_latency),
                "-" if p.wr_oi is None else ("yes" if p.wr_oi else "no"),
                p.sr_status,
                "-" if p.sr_throughput is None else f"{p.sr_throughput:.3f}",
                "-" if p.sr_latency is None else f"{p.sr_latency:.3f}",
            )
        )
    print(
        format_table(
            ("load", "WR thr", "WR lat", "WR OI", "SR status", "SR thr", "SR lat"),
            rows,
            title=f"DVB on {setup.topology.name} @ B={args.bandwidth} bytes/us",
        )
    )
    return 0


def _cmd_compile(args) -> int:
    setup = _setup(args)
    tau_in = setup.tau_in_for_load(args.load)
    cache = None
    if args.cache_dir is not None:
        from repro.cache import ScheduleCache

        cache = ScheduleCache(args.cache_dir)
    try:
        routing = compile_schedule(
            setup.timing,
            setup.topology,
            setup.allocation,
            tau_in,
            CompilerConfig(seed=args.seed, lp_backend=args.lp_backend),
            cache=cache,
        )
    except SchedulingError as error:
        print(f"infeasible at load {args.load}: {error}")
        return 1
    print(
        f"feasible: U={routing.utilization.peak:.4f}, "
        f"{len(routing.subsets)} maximal subsets, "
        f"{routing.schedule.num_commands} switching commands over "
        f"{len(routing.schedule.node_schedules)} nodes"
    )
    if cache is not None:
        hit = routing.extra.get("cache", {}).get("hit", False)
        print(f"cache: {'hit' if hit else 'miss'} ({args.cache_dir})")
    if args.export:
        from repro.core.io import save_schedule

        save_schedule(routing.schedule, args.export)
        print(f"schedule written to {args.export}")
    if args.gantt is not None:
        from repro.viz import node_gantt

        print()
        print(node_gantt(routing.schedule, args.gantt))
    return 0


def _cmd_matrix(args) -> int:
    from repro.experiments.matrix import (
        format_matrix_result,
        run_feasibility_matrix,
    )

    loads = args.loads or load_sweep()
    names = args.topologies or sorted(TOPOLOGIES)
    topologies = [make_topology(name) for name in names]
    allocator = _allocator(args)
    result = run_feasibility_matrix(
        dvb_tfg(args.models),
        topologies,
        args.bandwidths,
        loads,
        config=CompilerConfig(seed=args.seed, lp_backend=args.lp_backend),
        allocation=lambda tfg, topology: allocator(tfg, topology),
        jobs=args.jobs,
        cache=args.cache_dir,
        analyze=args.check,
        prescreen=args.prescreen,
    )
    print(format_matrix_result(result))
    return 0


def _cmd_diagnose(args) -> int:
    import json

    from repro.diagnose import analyze_wormhole, diagnose_instance

    setup = _setup(args)
    tau_in = setup.tau_in_for_load(args.load)
    cache = None
    if args.cache_dir is not None:
        from repro.cache import ScheduleCache

        cache = ScheduleCache(args.cache_dir)
    diagnosis = diagnose_instance(
        setup.timing, setup.topology, setup.allocation, tau_in, cache=cache
    )
    deep: list = []
    if args.deep:
        from repro.core.assign_paths import lsd_assignment
        from repro.core.pipeline import routed_and_local_messages
        from repro.core.timebounds import compute_time_bounds
        from repro.solvers import get_backend

        routed, _local = routed_and_local_messages(
            setup.timing, setup.allocation
        )
        if routed and not diagnosis.refuted:
            from repro.diagnose import explain_assignment

            bounds = compute_time_bounds(setup.timing, tau_in, routed)
            endpoints = {
                m.name: (
                    setup.allocation[m.src], setup.allocation[m.dst]
                )
                for m in setup.timing.tfg.messages
                if m.name in set(routed)
            }
            assignment = lsd_assignment(setup.topology, endpoints)
            deep = list(
                explain_assignment(
                    bounds, assignment, get_backend(args.lp_backend)
                )
            )
    wr = None
    if args.wr:
        wr = analyze_wormhole(
            setup.timing, setup.topology, setup.allocation, tau_in
        )
    if args.json:
        payload = {
            "instance": {
                "topology": setup.topology.name,
                "bandwidth": args.bandwidth,
                "models": args.models,
                "load": args.load,
                "tau_in": tau_in,
                "allocator": args.allocator,
            },
            "diagnosis": diagnosis.to_dict(),
        }
        if args.deep:
            payload["deep"] = [r.to_dict() for r in deep]
        if wr is not None:
            payload["wormhole"] = wr.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if diagnosis.refuted else 0
    print(
        f"{setup.topology.name} @ B={args.bandwidth} bytes/us, "
        f"load {args.load} (tau_in={tau_in:g}us)"
    )
    print(diagnosis.summary())
    for refutation in diagnosis.refutations:
        print(f"  {refutation.describe()}")
    if args.deep:
        if deep:
            print(f"deep: {len(deep)} LP infeasibility certificate(s) "
                  "for the LSD->MSD assignment")
            for refutation in deep:
                print(f"  {refutation.describe()}")
        elif diagnosis.refuted:
            print("deep: skipped (instance already statically refuted)")
        else:
            print("deep: allocation LP feasible for the LSD->MSD assignment")
    if wr is not None:
        print(
            f"wormhole: {wr.routes_analyzed} route(s), "
            f"deadlock-free={wr.deadlock_free}, oi-safe={wr.oi_safe}"
        )
        for finding in wr.findings:
            print(f"  [{finding.kind}] {finding.detail}")
    return 1 if diagnosis.refuted else 0


def _cmd_check(args) -> int:
    from repro.check import analyze_schedule
    from repro.core.io import load_schedule

    topology = make_topology(args.topology)
    schedule = load_schedule(args.schedule) if args.revalidate else None
    if schedule is None:
        from repro.check.analyzer import analyze_file

        report = analyze_file(args.schedule, topology)
    else:
        report = analyze_schedule(schedule, topology)
    print(f"{args.schedule} on {topology.name}:")
    print(report.summary())
    if args.trace:
        from repro.trace import TraceRecorder, write_chrome_trace

        tracer = TraceRecorder()
        emitted = report.emit(tracer)
        write_chrome_trace(tracer.events, args.trace)
        print(f"{emitted} finding event(s) written to {args.trace}")
    return 0 if report.ok else 1


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.lint import Baseline, ProjectContext, lint_project, rules_named
    from repro.lint.output import RENDERERS

    root = Path(args.root)
    if not root.exists():
        print(f"error: scan root {root} does not exist", file=sys.stderr)
        return 2
    try:
        rules = rules_named(args.rules)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    project = ProjectContext.from_root(root)

    if args.fix_baseline:
        report = lint_project(project, rules=rules, baseline=None)
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"baseline rewritten: {len(report.findings)} entr(ies) in "
            f"{baseline_path}"
        )
        return 0

    try:
        baseline = (
            Baseline.load(baseline_path) if not args.no_baseline else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = lint_project(project, rules=rules, baseline=baseline)
    rendered = RENDERERS[args.format](report)
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"{args.format} report written to {args.out}")
        print(report.summary())
    else:
        sys.stdout.write(rendered)
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    from repro.check import run_fuzz

    seeds = range(args.base_seed, args.base_seed + args.count)
    report = run_fuzz(
        seeds,
        out_dir=args.out,
        progress=print if args.verbose else None,
    )
    print(report.summary())
    for path in report.reproducers:
        print(f"reproducer written to {path}")
    return 0 if report.ok else 1


def _cmd_inspect(args) -> int:
    from repro.core.io import load_schedule
    from repro.viz import link_occupancy_chart, node_gantt

    schedule = load_schedule(args.schedule)
    messages = len(schedule.slots)
    print(
        f"{args.schedule}: period {schedule.tau_in:g} us, {messages} "
        f"messages, {schedule.num_commands} commands on "
        f"{len(schedule.node_schedules)} nodes (re-validated on load)"
    )
    if args.gantt is not None:
        print()
        print(node_gantt(schedule, args.gantt))
    if args.occupancy:
        print()
        print(link_occupancy_chart(schedule, top=args.occupancy))
    return 0


def _cmd_faults(args) -> int:
    from repro.faults.compare import fault_recovery_experiment
    from repro.results import RunConfig

    setup = _setup(args)
    try:
        report = fault_recovery_experiment(
            setup,
            args.load,
            n_link_faults=args.fail_links,
            n_drifts=args.drifts,
            config=CompilerConfig(seed=args.seed),
            run=RunConfig(
                invocations=args.invocations,
                warmup=args.warmup,
                seed=args.seed,
            ),
        )
    except SchedulingError as error:
        print(f"infeasible at load {args.load} on {setup.topology.name}: {error}")
        return 1
    except RepairInfeasibleError as error:
        print(f"unrepairable fault on {setup.topology.name}: {error}")
        return 1
    except (ValueError, ReproError) as error:
        print(f"bad fault request on {setup.topology.name}: {error}")
        return 1
    print(
        f"{setup.topology.name} @ B={args.bandwidth} bytes/us, "
        f"load {args.load} (tau_in={report.tau_in:g}us), seed {args.seed}"
    )
    print(report.describe())
    return 0


def _cmd_trace(args) -> int:
    from repro.results import RunConfig
    from repro.trace import CompileProfiler, TraceRecorder, write_chrome_trace

    setup = _setup(args)
    tau_in = setup.tau_in_for_load(args.load)
    tracer = TraceRecorder()
    run = RunConfig(
        invocations=args.invocations,
        warmup=args.warmup,
        seed=args.seed,
        tracer=tracer,
    )
    events = []
    if args.mode == "sr":
        from repro.core.executor import ScheduledRoutingExecutor

        profiler = CompileProfiler()
        try:
            routing = compile_schedule(
                setup.timing,
                setup.topology,
                setup.allocation,
                tau_in,
                CompilerConfig(seed=args.seed),
                profiler=profiler,
            )
        except SchedulingError as error:
            print(f"infeasible at load {args.load}: {error}")
            return 1
        result = ScheduledRoutingExecutor(
            routing, setup.timing, setup.topology, setup.allocation
        ).run(config=run)
        # One frame of CP crossbar programming, on CP<node> tracks.
        from repro.cp import replay_schedule

        replay_schedule(routing.schedule, setup.topology, tracer=tracer)
        profile = profiler.profile
        events.extend(profile.trace_events())
        print(profile.table())
        print()
    else:
        from repro.wormhole import WormholeSimulator

        result = WormholeSimulator(
            setup.timing, setup.topology, setup.allocation
        ).run(tau_in, config=run)
    events.extend(tracer.events)
    print(
        f"{args.mode.upper()} run on {setup.topology.name} @ load {args.load} "
        f"(tau_in={tau_in:g}us): {len(result.completion_times)} invocations, "
        f"OI={result.has_oi()}, "
        f"jitter peak-to-peak={result.jitter().peak_to_peak:.3f}us"
    )
    print(
        f"captured {len(events)} trace events on "
        f"{len(tracer.tracks())} tracks"
    )
    if args.chart:
        from repro.viz import trace_occupancy_chart

        print()
        print(trace_occupancy_chart(tracer, top=args.chart))
    write_chrome_trace(events, args.out)
    print(f"Chrome trace written to {args.out} (open in https://ui.perfetto.dev)")
    return 0


def _cmd_topology(args) -> int:
    from repro.topology import summarize

    rows = []
    for name in sorted(TOPOLOGIES):
        summary = summarize(TOPOLOGIES[name]())
        rows.append((
            name,
            summary.num_nodes,
            summary.num_links,
            f"{summary.degree_min}-{summary.degree_max}"
            if summary.degree_min != summary.degree_max
            else str(summary.degree_min),
            summary.diameter,
            f"{summary.average_distance:.2f}",
            summary.bisection_width,
        ))
    print(format_table(
        ("machine", "nodes", "links", "degree", "diameter", "avg dist",
         "bisection"),
        rows,
        title="Supported 64-node interconnects",
    ))
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, serve_forever

    return serve_forever(
        ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_dir=args.cache_dir,
            admission=not args.no_admission,
        )
    )


def _cmd_submit(args) -> int:
    import json

    from repro.serve import ServeClient

    payload = {
        "kind": args.kind,
        "topology": args.topology,
        "bandwidth": args.bandwidth,
        "models": args.models,
        "load": args.load,
        "allocator": args.allocator,
        "seed": args.seed,
    }
    with ServeClient(args.host, args.port) as client:
        status, body = client.submit(
            payload, wait=not args.no_wait, timeout=args.timeout
        )
        if args.json:
            print(json.dumps(body, indent=2, sort_keys=True))
        else:
            state = body.get("state", "?")
            result = body.get("result") or {}
            line = f"job {body.get('id', '?')}: {state}"
            if result.get("verdict"):
                line += f" ({result['verdict']})"
            if result.get("utilization") is not None:
                line += (
                    f", U={result['utilization']:.4f}, "
                    f"{result.get('commands', 0)} commands"
                )
            if body.get("elapsed_ms") is not None:
                line += f", {body['elapsed_ms']:.1f}ms"
            print(line)
            if body.get("error"):
                print(f"  error: {body['error']}")
    if status >= 400:
        return 1
    return 0 if body.get("state") in ("done", "queued", "admitted", "running") else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-sr`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-sr",
        description="Scheduled-routing experiments (Shukla & Agrawal, ISCA'91)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_util = sub.add_parser("utilization", help="Fig. 5/6 style U sweep")
    _add_common(p_util)
    p_util.add_argument("--loads", type=float, nargs="*", default=None)
    p_util.set_defaults(func=_cmd_utilization)

    p_pipe = sub.add_parser("pipeline", help="Fig. 7-10 style WR-vs-SR sweep")
    _add_common(p_pipe)
    p_pipe.add_argument("--loads", type=float, nargs="*", default=None)
    p_pipe.set_defaults(func=_cmd_pipeline)

    p_comp = sub.add_parser("compile", help="compile one schedule")
    _add_common(p_comp)
    p_comp.add_argument("--load", type=float, default=0.5)
    p_comp.add_argument(
        "--export", metavar="FILE", default=None,
        help="write the compiled schedule (Omega) to a JSON file",
    )
    p_comp.add_argument(
        "--gantt", type=int, metavar="NODE", default=None,
        help="print the switching-schedule Gantt chart of one node",
    )
    p_comp.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="content-addressed schedule cache directory (reused across runs)",
    )
    p_comp.add_argument(
        "--lp-backend",
        choices=("auto", "highs", "highs-ds", "ilp", "reference"),
        default="auto",
        help="LP solver backend for both LP stages",
    )
    p_comp.set_defaults(func=_cmd_compile)

    p_matrix = sub.add_parser(
        "matrix", help="feasibility matrix over topologies x bandwidths x loads"
    )
    p_matrix.add_argument(
        "--topologies", nargs="*",
        choices=sorted(TOPOLOGIES) + sorted(TOPOLOGY_ALIASES),
        default=None,
        help="machines to sweep (default: all)",
    )
    p_matrix.add_argument(
        "--bandwidths", type=float, nargs="*", default=[64.0, 128.0]
    )
    p_matrix.add_argument("--loads", type=float, nargs="*", default=None)
    p_matrix.add_argument("--models", type=int, default=8, help="DVB object models")
    p_matrix.add_argument("--seed", type=int, default=0)
    p_matrix.add_argument(
        "--allocator", choices=ALLOCATORS, default="sequential",
        help="task placement strategy (random/annealed honour --seed)",
    )
    p_matrix.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes compiling matrix points in parallel",
    )
    p_matrix.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="shared schedule cache directory (warm reruns skip the LPs)",
    )
    p_matrix.add_argument(
        "--lp-backend",
        choices=("auto", "highs", "highs-ds", "ilp", "reference"),
        default="auto",
        help="LP solver backend for both LP stages",
    )
    p_matrix.add_argument(
        "--check", action="store_true",
        help="run the conformance analyzer on every feasible point "
             "(flagged points show CHK instead of OK)",
    )
    p_matrix.add_argument(
        "--prescreen", action="store_true",
        help="statically refute points before LP work (refuted points "
             "show REF; feasible verdicts are unchanged)",
    )
    p_matrix.set_defaults(func=_cmd_matrix)

    p_diag = sub.add_parser(
        "diagnose",
        help="static instance diagnosis: infeasibility certificates "
             "and wormhole hazards, no compilation",
    )
    _add_common(p_diag)
    p_diag.add_argument("--load", type=float, default=0.5)
    p_diag.add_argument(
        "--json", action="store_true",
        help="emit the diagnosis as JSON instead of text",
    )
    p_diag.add_argument(
        "--deep", action="store_true",
        help="also extract Farkas LP certificates for the LSD->MSD "
             "assignment when the instance is not statically refuted",
    )
    p_diag.add_argument(
        "--wr", action="store_true",
        help="also run the static wormhole analysis (CDG deadlock "
             "cycles, OI prediction)",
    )
    p_diag.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache directory for diagnosis results",
    )
    p_diag.add_argument(
        "--lp-backend",
        choices=("auto", "highs", "highs-ds", "ilp", "reference"),
        default="auto",
        help="LP solver backend used by --deep",
    )
    p_diag.set_defaults(func=_cmd_diagnose)

    p_check = sub.add_parser(
        "check",
        help="independent conformance analysis of a saved schedule",
    )
    p_check.add_argument("schedule", help="path to a saved schedule (omega.json)")
    p_check.add_argument(
        "--topology",
        choices=sorted(TOPOLOGIES) + sorted(TOPOLOGY_ALIASES),
        default="hypercube6",
        help="machine the schedule targets",
    )
    p_check.add_argument(
        "--revalidate", action="store_true",
        help="also run the loader's own validation (raises on first "
             "failure) instead of analyzing the raw serialized form",
    )
    p_check.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write the findings as Chrome trace events",
    )
    p_check.set_defaults(func=_cmd_check)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzz: both LP backends, cold+warm cache, "
             "analyzer vs replay verdicts",
    )
    p_fuzz.add_argument(
        "--count", type=int, default=24, help="number of fuzz points"
    )
    p_fuzz.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the corpus (seeds are consecutive)",
    )
    p_fuzz.add_argument(
        "--out", metavar="DIR", default=None,
        help="directory for reproducer files (written on disagreement)",
    )
    p_fuzz.add_argument(
        "--verbose", action="store_true", help="print one line per point"
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_lint = sub.add_parser(
        "lint",
        help="AST invariant linter (cache keys, determinism, trace, solver)",
    )
    p_lint.add_argument(
        "root", nargs="?", default="src",
        help="directory to scan (default: src)",
    )
    p_lint.add_argument(
        "--rules", nargs="*", default=None, metavar="RULE",
        help="run only these rule ids (default: all registered)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    p_lint.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the report to a file instead of stdout",
    )
    p_lint.add_argument(
        "--baseline", metavar="FILE", default="lint-baseline.json",
        help="committed baseline file (default: lint-baseline.json)",
    )
    p_lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file (report all findings)",
    )
    p_lint.add_argument(
        "--fix-baseline", action="store_true",
        help="regenerate the baseline from current findings and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_faults = sub.add_parser(
        "faults",
        help="inject link failures, repair the schedule, compare with WR",
    )
    _add_common(p_faults)
    p_faults.add_argument("--load", type=float, default=0.5)
    p_faults.add_argument(
        "--fail-links", type=_nonnegative_int, default=1,
        help="permanent link failures to inject (on schedule-used links)",
    )
    p_faults.add_argument(
        "--drifts", type=_nonnegative_int, default=0,
        help="nodes given a random CP clock-drift offset",
    )
    p_faults.add_argument("--invocations", type=int, default=40)
    p_faults.add_argument("--warmup", type=int, default=8)
    p_faults.set_defaults(func=_cmd_faults, bandwidth=128.0)

    p_trace = sub.add_parser(
        "trace",
        help="run one traced SR or WR execution and export a Chrome trace",
    )
    _add_common(p_trace)
    p_trace.add_argument(
        "--mode", choices=("sr", "wr"), default="sr",
        help="scheduled routing (with compile profile) or wormhole routing",
    )
    p_trace.add_argument("--load", type=float, default=0.5)
    p_trace.add_argument("--invocations", type=int, default=12)
    p_trace.add_argument("--warmup", type=int, default=4)
    p_trace.add_argument(
        "--out", metavar="FILE", default="trace.json",
        help="Chrome/Perfetto trace output path",
    )
    p_trace.add_argument(
        "--chart", type=_nonnegative_int, metavar="TOP", default=0,
        help="also print the TOP busiest traced links as ASCII bars",
    )
    p_trace.set_defaults(func=_cmd_trace, bandwidth=128.0)

    p_serve = sub.add_parser(
        "serve",
        help="run the compile-farm daemon (HTTP/JSON job queue)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8750,
        help="TCP port to bind (0 picks a free one)",
    )
    p_serve.add_argument(
        "--workers", type=_nonnegative_int, default=2,
        help="compile worker processes (0 = inline, single process)",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="shared schedule cache directory (default: ephemeral)",
    )
    p_serve.add_argument(
        "--no-admission", action="store_true",
        help="disable the static-diagnoser admission fast path",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running compile farm"
    )
    _add_common(p_submit)
    p_submit.add_argument("--load", type=float, default=0.5)
    p_submit.add_argument(
        "--kind", choices=("compile", "diagnose", "check"),
        default="compile",
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8750)
    p_submit.add_argument(
        "--no-wait", action="store_true",
        help="return the job id immediately instead of waiting",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None,
        help="cap on --wait blocking, seconds",
    )
    p_submit.add_argument(
        "--json", action="store_true",
        help="print the full job snapshot as JSON",
    )
    p_submit.set_defaults(func=_cmd_submit)

    p_topo = sub.add_parser("topology", help="structural summaries")
    p_topo.set_defaults(func=_cmd_topology)

    p_inspect = sub.add_parser(
        "inspect", help="inspect a saved schedule (omega.json)"
    )
    p_inspect.add_argument("schedule", help="path to a saved schedule")
    p_inspect.add_argument("--gantt", type=int, metavar="NODE", default=None)
    p_inspect.add_argument(
        "--occupancy", type=int, metavar="TOP", default=0,
        help="show the TOP busiest links",
    )
    p_inspect.set_defaults(func=_cmd_inspect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
