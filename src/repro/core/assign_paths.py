"""The AssignPaths heuristic (paper Fig. 4).

Finding the optimal path assignment would require solving the downstream
allocation and scheduling problems for each of more than ``2^z`` candidate
assignments, so the paper minimises peak utilisation ``U`` heuristically:

1. start from a random assignment of minimal paths;
2. *iterative improvement*: locate the peak (a link, or a (link, interval)
   hot-spot), consider every alternative path of every multi-hop message
   crossing it, and apply the reroute with the largest peak reduction;
   when no reroute reduces the peak, apply one that *repositions* it (same
   value, different link/spot) so the search moves through the
   link-interval space;
3. when the inner loop stalls, record the best assignment seen and restart
   from a fresh random assignment to escape local minima; terminate when a
   restart yields no improvement.

The LSD->MSD assignment (every message on its deterministic wormhole
route) is the comparison baseline of the paper's Figs. 5 and 6:
utilisation under LSD->MSD is uneven, and AssignPaths is "at least as
low ... for all load values".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.core.assignment import PathAssignment
from repro.core.timebounds import TimeBoundSet
from repro.core.utilization import (
    UtilizationReport,
    UtilizationState,
    utilization_report,
)
from repro.topology.base import Topology
from repro.topology.routing import lsd_to_msd_route
from repro.units import EPS


@dataclass(frozen=True)
class AssignPathsResult:
    """Outcome of the heuristic: the best assignment and its utilisation."""

    assignment: PathAssignment
    report: UtilizationReport
    inner_iterations: int
    restarts: int


def lsd_assignment(
    topology: Topology,
    endpoints: Mapping[str, tuple[int, int]],
) -> PathAssignment:
    """Every message on its deterministic LSD->MSD route (the baseline)."""
    paths = {
        name: lsd_to_msd_route(topology, src, dst)
        for name, (src, dst) in endpoints.items()
    }
    return PathAssignment(topology, endpoints, paths)


def assign_paths(
    bounds: TimeBoundSet,
    topology: Topology,
    endpoints: Mapping[str, tuple[int, int]],
    seed: int = 0,
    max_paths: int = 48,
    max_restarts: int = 4,
    max_inner: int = 200,
    max_repositions: int = 25,
    pools: Mapping[str, list[list[int]]] | None = None,
) -> AssignPathsResult:
    """Minimise peak utilisation ``U`` over path assignments.

    Parameters
    ----------
    bounds:
        Message time bounds at the target input period (they fix each
        message's activity profile, which is path-independent).
    topology, endpoints:
        The network and each routed message's (source node, destination
        node).
    seed:
        Seeds the random initial assignments and restarts; runs are
        reproducible per seed.
    max_paths:
        Cap on the alternative-path pool per message (the pool is the
        deterministic prefix of the full enumeration).
    max_restarts:
        Random restarts after the first descent (the Fig. 4 escape from
        local minima).
    max_inner:
        Safety cap on iterative-improvement steps per descent.
    max_repositions:
        Cap on same-value peak-repositioning moves per descent (Fig. 4
        repositions unboundedly; a cap guarantees termination).
    pools:
        Pre-enumerated candidate pools (``message name -> paths``), in
        the same per-message order ``minimal_path_pool`` yields —
        callers that already enumerated the pools (delta compilation
        keys artifacts on them) pass them in so they aren't enumerated
        twice.  Must cover every endpoint and match the ``max_paths``
        cap; ``None`` enumerates them here.
    """
    rng = random.Random(seed)
    if pools is None:
        enumerated: dict[str, list[list[int]]] = {}
        for name, (src, dst) in endpoints.items():
            enumerated[name] = topology.minimal_path_pool(src, dst, max_paths)
        pools = enumerated

    def random_assignment() -> PathAssignment:
        return PathAssignment(
            topology,
            endpoints,
            {name: rng.choice(pool) for name, pool in pools.items()},
        )

    total_inner = 0
    best: PathAssignment | None = None
    best_peak = float("inf")
    restarts_used = 0

    for restart in range(max_restarts + 1):
        state = UtilizationState(bounds, random_assignment())
        total_inner += _descend(state, bounds, pools, max_inner, max_repositions)
        peak = state.peak().value
        if peak < best_peak - EPS:
            best = state.assignment.copy()
            best_peak = peak
        elif restart > 0:
            # A restart that finds nothing better: stop searching.
            restarts_used = restart
            break
        restarts_used = restart

    assert best is not None
    return AssignPathsResult(
        assignment=best,
        report=utilization_report(bounds, best),
        inner_iterations=total_inner,
        restarts=restarts_used,
    )


def _descend(
    state: UtilizationState,
    bounds: TimeBoundSet,
    pools: Mapping[str, list[list[int]]],
    max_inner: int,
    max_repositions: int,
) -> int:
    """One iterative-improvement descent; returns iterations performed."""
    repositions_left = max_repositions
    iterations = 0
    seen_positions: set = set()
    for iterations in range(1, max_inner + 1):
        witness = state.peak()
        seen_positions.add(witness.position())
        candidates = _reroutable_messages(state, bounds, witness)
        best_move: tuple[str, list[int]] | None = None
        best_value = witness.value
        reposition_move: tuple[str, list[int]] | None = None
        for name in candidates:
            current_path = state.assignment.path(name)
            pool = [
                path for path in pools[name] if tuple(path) != current_path
            ]
            for path, outcome in zip(
                pool, state.evaluate_reroutes(name, pool)
            ):
                if outcome.value < best_value - EPS:
                    best_value = outcome.value
                    best_move = (name, path)
                elif (
                    reposition_move is None
                    and abs(outcome.value - witness.value) <= EPS
                    and outcome.position() not in seen_positions
                ):
                    reposition_move = (name, path)
        if best_move is not None:
            state.reroute(*best_move)
        elif reposition_move is not None and repositions_left > 0:
            repositions_left -= 1
            state.reroute(*reposition_move)
        else:
            break
    return iterations


def _reroutable_messages(
    state: UtilizationState,
    bounds: TimeBoundSet,
    witness,
) -> list[str]:
    """Multi-hop messages crossing the peak link (and, for a hot-spot,
    active in the peak interval) — the Fig. 4 reroute candidates."""
    names = []
    for name in state.assignment.messages_on(witness.link):
        if state.assignment.hops(name) < 2:
            continue  # single-hop messages have a unique minimal path
        if witness.interval >= 0:
            i = bounds.index[name]
            if not bounds.activity[i, witness.interval]:
                continue
        names.append(name)
    return names
