"""Node switching schedules and the communication schedule Omega
(paper Sections 4.1 and 5.4).

A solved interval produces, per feasible-set slot, a concrete transmission
window for every message in the set.  Each transmission window expands
into one **switching command** per node along the message's path: the
source CP connects its AP output buffer to the first channel, intermediate
CPs connect incoming channel to outgoing channel, and the destination CP
connects the last channel to its AP input buffer.  The collection
``omega_i`` of a node's commands, sorted by time, is that node's switching
schedule; ``Omega = {omega_1 ... omega_N}`` is the communication schedule
the CPs execute independently every period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import PathAssignment
from repro.core.interval_scheduling import IntervalSchedule
from repro.core.timebounds import TimeBoundSet
from repro.errors import ScheduleValidationError
from repro.topology.base import Link, link_between
from repro.units import EPS, le

#: Port sentinel for the node's own application processor buffers.
AP_PORT = "AP"

Port = str | int
"""A CP port: ``AP_PORT`` or the adjacent node id the channel leads to."""


@dataclass(frozen=True)
class SwitchCommand:
    """One crossbar setting at one node: during ``[time, time + duration]``
    route data arriving on ``input_port`` to ``output_port``.

    Times are frame times in ``[0, tau_in]``; the CP executes the same
    schedule every period.
    """

    time: float
    duration: float
    input_port: Port
    output_port: Port
    message: str

    @property
    def end(self) -> float:
        return self.time + self.duration


@dataclass(frozen=True)
class NodeSchedule:
    """omega_i: the time-sorted switching commands of one node."""

    node: int
    commands: tuple[SwitchCommand, ...]

    def commands_for(self, message: str) -> tuple[SwitchCommand, ...]:
        return tuple(c for c in self.commands if c.message == message)


@dataclass(frozen=True)
class TransmissionSlot:
    """One contiguous clear-path transmission of (part of) a message."""

    message: str
    start: float
    duration: float
    path: tuple[int, ...]

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(
            link_between(u, v) for u, v in zip(self.path, self.path[1:])
        )


@dataclass
class CommunicationSchedule:
    """Omega plus the slot-level view it was derived from.

    Attributes
    ----------
    tau_in:
        The period (frame length).
    slots:
        ``message -> transmission slots`` covering its full duration.
    node_schedules:
        ``node -> NodeSchedule`` (only nodes with commands appear).
    bounds:
        The time bounds the schedule was computed against.
    assignment:
        The final message->path mapping.
    """

    tau_in: float
    slots: dict[str, tuple[TransmissionSlot, ...]]
    node_schedules: dict[int, NodeSchedule] = field(default_factory=dict)
    bounds: TimeBoundSet | None = None
    assignment: dict[str, tuple[int, ...]] = field(default_factory=dict)

    @property
    def num_commands(self) -> int:
        """Total switching commands across all nodes."""
        return sum(len(ns.commands) for ns in self.node_schedules.values())

    def all_slots(self) -> list[TransmissionSlot]:
        """Every transmission slot, across all messages."""
        return [slot for slots in self.slots.values() for slot in slots]

    # -- static validation ------------------------------------------------

    def validate(self) -> None:
        """Machine-check the schedule's invariants.

        1. every message's slots lie inside its timing windows and sum to
           exactly its transmission duration (deadlines are guaranteed);
        2. no two slots ever share a link (contention-freedom, which also
           makes deadlock a non-issue: every transmission has a clear
           path);
        3. the node schedules are exactly the per-node projection of the
           slots, and no node connects one channel to two places at once.

        Raises :class:`~repro.errors.ScheduleValidationError` on the first
        violation.
        """
        self._validate_slot_coverage()
        self._validate_link_exclusivity()
        self._validate_node_schedules()

    def _validate_slot_coverage(self) -> None:
        if self.bounds is None:
            return
        for name, slots in self.slots.items():
            b = self.bounds.bounds[name]
            total = sum(s.duration for s in slots)
            if abs(total - b.duration) > 1e-6 * max(1.0, b.duration):
                raise ScheduleValidationError(
                    f"message {name!r}: scheduled {total:.6f} of "
                    f"{b.duration:.6f} required transmission time"
                )
            for slot in slots:
                if not b.contains(slot.start, slot.end):
                    raise ScheduleValidationError(
                        f"message {name!r}: slot [{slot.start:.6f}, "
                        f"{slot.end:.6f}] outside windows {b.windows}"
                    )

    def _validate_link_exclusivity(self) -> None:
        by_link: dict[Link, list[TransmissionSlot]] = {}
        for slot in self.all_slots():
            for link in slot.links:
                by_link.setdefault(link, []).append(slot)
        for link, slots in by_link.items():
            slots.sort(key=lambda s: s.start)
            for first, second in zip(slots, slots[1:]):
                if second.start < first.end - EPS:
                    raise ScheduleValidationError(
                        f"link {link} double-booked: {first.message!r} "
                        f"[{first.start:.6f},{first.end:.6f}] overlaps "
                        f"{second.message!r} "
                        f"[{second.start:.6f},{second.end:.6f}]"
                    )

    def _validate_node_schedules(self) -> None:
        expected = {
            (cmd.time, cmd.duration, cmd.input_port, cmd.output_port,
             cmd.message, node)
            for node, ns in self.node_schedules.items()
            for cmd in ns.commands
        }
        derived = set()
        for slot in self.all_slots():
            for cmd, node in _slot_commands(slot):
                derived.add(
                    (cmd.time, cmd.duration, cmd.input_port,
                     cmd.output_port, cmd.message, node)
                )
        if expected != derived:
            missing = derived - expected
            spurious = expected - derived
            raise ScheduleValidationError(
                f"node schedules do not match slots: missing={missing} "
                f"spurious={spurious}"
            )
        # Channel-port exclusivity per node (AP buffers are per-channel and
        # never conflict; see paper Fig. 2).
        for node, ns in self.node_schedules.items():
            usage: dict[Port, list[SwitchCommand]] = {}
            for cmd in ns.commands:
                for port in (cmd.input_port, cmd.output_port):
                    if port == AP_PORT:
                        continue
                    usage.setdefault(port, []).append(cmd)
            for port, commands in usage.items():
                commands.sort(key=lambda c: c.time)
                for first, second in zip(commands, commands[1:]):
                    if second.time < first.end - EPS:
                        raise ScheduleValidationError(
                            f"node {node}: channel to {port} used by "
                            f"{first.message!r} and {second.message!r} "
                            "simultaneously"
                        )


def _slot_commands(slot: TransmissionSlot):
    """The per-node switching commands realizing one transmission slot."""
    path = slot.path
    for position, node in enumerate(path):
        input_port: Port = AP_PORT if position == 0 else path[position - 1]
        output_port: Port = (
            AP_PORT if position == len(path) - 1 else path[position + 1]
        )
        yield (
            SwitchCommand(
                time=slot.start,
                duration=slot.duration,
                input_port=input_port,
                output_port=output_port,
                message=slot.message,
            ),
            node,
        )


def build_schedule(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    interval_schedules: list[dict[int, IntervalSchedule]],
) -> CommunicationSchedule:
    """Assemble Omega from the per-subset interval schedules.

    Within each interval every subset's feasible-set slots are packed from
    the interval start; different subsets are link-disjoint inside a
    shared interval (see :mod:`repro.core.subsets`), so their slots may
    overlap in time.

    The result is validated before being returned.
    """
    slots: dict[str, list[TransmissionSlot]] = {
        name: [] for name in assignment.messages
    }
    for subset_schedules in interval_schedules:
        for k, schedule in subset_schedules.items():
            start, end = bounds.intervals.interval(k)
            cursor = start
            for feasible_slot in schedule.slots:
                for name in sorted(feasible_slot.messages):
                    slots[name].append(
                        TransmissionSlot(
                            message=name,
                            start=cursor,
                            duration=feasible_slot.duration,
                            path=assignment.path(name),
                        )
                    )
                cursor += feasible_slot.duration
            if not le(cursor, end):
                raise ScheduleValidationError(
                    f"interval {k} packing overruns: ends {cursor:.6f} > "
                    f"{end:.6f}"
                )

    node_commands: dict[int, list[SwitchCommand]] = {}
    frozen_slots = {name: tuple(s) for name, s in slots.items()}
    for message_slots in frozen_slots.values():
        for slot in message_slots:
            for cmd, node in _slot_commands(slot):
                node_commands.setdefault(node, []).append(cmd)

    node_schedules = {
        node: NodeSchedule(
            node=node,
            commands=tuple(sorted(commands, key=lambda c: (c.time, c.message))),
        )
        for node, commands in node_commands.items()
    }
    schedule = CommunicationSchedule(
        tau_in=bounds.tau_in,
        slots=frozen_slots,
        node_schedules=node_schedules,
        bounds=bounds,
        assignment=assignment.as_dict(),
    )
    schedule.validate()
    return schedule
