"""Path assignments: which minimal path each routed message uses.

The paper encodes an assignment as the ``N_m x N_l`` matrix ``B`` with
``b_ij = 1`` when message ``M_i`` uses link ``L_j``.  Here an assignment
maps message names to concrete node paths (from which ``B`` follows); it
is the object the AssignPaths heuristic mutates and the later compiler
stages consume.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import RoutingError
from repro.topology.base import Link, Topology
from repro.topology.routing import links_on_path, validate_path


class PathAssignment:
    """Message name -> minimal node path, with cached link sets.

    Parameters
    ----------
    topology:
        The interconnect the paths live on.
    endpoints:
        ``message name -> (src node, dst node)`` for every routed message.
    paths:
        Initial path per message; each is validated as a minimal simple
        path between the message's endpoints.
    """

    def __init__(
        self,
        topology: Topology,
        endpoints: Mapping[str, tuple[int, int]],
        paths: Mapping[str, list[int]],
    ):
        self.topology = topology
        self.endpoints = dict(endpoints)
        missing = sorted(set(self.endpoints) - set(paths))
        if missing:
            raise RoutingError(f"no path provided for messages {missing}")
        self._paths: dict[str, tuple[int, ...]] = {}
        self._links: dict[str, tuple[Link, ...]] = {}
        for name in self.endpoints:
            self.set_path(name, list(paths[name]))

    @property
    def messages(self) -> tuple[str, ...]:
        """Routed message names in a fixed order."""
        return tuple(self.endpoints)

    def path(self, name: str) -> tuple[int, ...]:
        """The node path currently assigned to a message."""
        return self._paths[name]

    def links(self, name: str) -> tuple[Link, ...]:
        """The undirected links of the assigned path."""
        return self._links[name]

    def hops(self, name: str) -> int:
        """Hop count of the assigned path."""
        return len(self._paths[name]) - 1

    def set_path(self, name: str, path: list[int]) -> None:
        """Reassign a message to a (validated) minimal path."""
        src, dst = self.endpoints[name]
        validate_path(self.topology, path, src, dst, require_minimal=True)
        self._paths[name] = tuple(path)
        self._links[name] = links_on_path(path)

    def used_links(self) -> set[Link]:
        """All links used by at least one message."""
        result: set[Link] = set()
        for links in self._links.values():
            result.update(links)
        return result

    def messages_on(self, link: Link) -> tuple[str, ...]:
        """Messages whose assigned path uses ``link``."""
        return tuple(
            name for name in self.endpoints if link in self._links[name]
        )

    def copy(self) -> "PathAssignment":
        """An independent copy (the heuristic snapshots its best state)."""
        return PathAssignment(
            self.topology,
            self.endpoints,
            {name: list(path) for name, path in self._paths.items()},
        )

    def as_dict(self) -> dict[str, tuple[int, ...]]:
        """Immutable view of the assignment for result objects."""
        return dict(self._paths)

    def __repr__(self) -> str:
        return (
            f"<PathAssignment {len(self.endpoints)} messages on "
            f"{self.topology.name}>"
        )
