"""The staged SR compilation pipeline (paper Fig. 3 made explicit).

The paper presents scheduled-routing compilation as a staged pipeline —
time bounds → path assignment → utilisation gate → maximal subsets →
message-interval allocation → interval scheduling → switching schedules.
This module gives each box of that figure its own :class:`CompilerStage`
object operating on one shared :class:`CompilationContext` artifact
record, so that retries, the allocation↔scheduling feedback loop,
per-stage profiling and the feasibility matrix's stage-verdict codes all
fall out of one mechanism:

- :func:`compile_stages` declares the per-attempt stage list for a
  config; :func:`run_stages` is the (deliberately dumb) driver;
- every stage reports wall time and problem sizes through
  ``context.profiler`` under the same stage names the profiler has
  always used, and the LP stages add their backend's solver tally
  (``lp_solves`` / ``lp_iterations`` / ``lp_wall_ms``) to the stage
  detail — which the tracer forwards as ``compile`` events;
- because every stage wraps itself in ``context.profiler.stage``, a
  :class:`~repro.trace.profile.CompileProfiler` constructed with
  ``on_enter``/``on_stage`` callbacks observes the pipeline live,
  stage by stage — the progress hook the ``repro.serve`` compile farm
  streams to clients while a job runs;
- a stage fails by raising the stage-specific
  :class:`~repro.errors.SchedulingError` subclass; :func:`verdict_code`
  maps any such error to the matrix's verdict abbreviation.

:func:`~repro.core.compiler.compile_schedule` is the public entry point
— it owns input validation, the retry loop, caching, and result
packaging, and drives these stages in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Protocol, runtime_checkable

from repro.core.assign_paths import assign_paths, lsd_assignment
from repro.core.assignment import PathAssignment
from repro.core.interval_allocation import IntervalAllocation, allocate_intervals
from repro.core.interval_scheduling import IntervalSchedule, schedule_intervals
from repro.core.subsets import maximal_subsets
from repro.core.switching import CommunicationSchedule, build_schedule
from repro.core.timebounds import TimeBoundSet, compute_time_bounds
from repro.core.utilization import UtilizationReport, utilization_report
from repro.errors import (
    IntervalAllocationError,
    IntervalSchedulingError,
    SchedulingError,
    UtilizationExceededError,
)
from repro.solvers import LPBackend
from repro.trace.profile import NULL_PROFILER, CompileProfiler

if TYPE_CHECKING:  # pragma: no cover - import cycle with repro.core.compiler
    from repro.cache.artifacts import DeltaState
    from repro.core.compiler import CompilerConfig
    from repro.tfg.analysis import TFGTiming
    from repro.topology.base import Topology

#: Verdict code when a matrix point compiled.
OK = "OK"

#: Verdict code when a matrix point compiled but the independent
#: conformance analyzer (:mod:`repro.check`) flagged the schedule.
CHECK_FLAGGED = "CHK"

#: Verdict code when the static prescreen refuted the point before any
#: path assignment or LP work (:mod:`repro.diagnose`).
STATICALLY_REFUTED = "REF"

#: ``SchedulingError.stage`` → feasibility-matrix verdict abbreviation.
STAGE_VERDICT_CODES = {
    "prescreen": STATICALLY_REFUTED,
    "utilization": "U>1",
    "interval-allocation": "ALO",
    "interval-scheduling": "SCH",
    "scheduling": "ERR",
}


def verdict_code(error: SchedulingError) -> str:
    """The matrix verdict abbreviation for a compilation failure."""
    return STAGE_VERDICT_CODES.get(getattr(error, "stage", "scheduling"), "ERR")


def routed_and_local_messages(
    timing: "TFGTiming",
    allocation: Mapping[str, int],
) -> tuple[list[str], list[str]]:
    """Split messages into network-traversing and node-local ones."""
    routed: list[str] = []
    local: list[str] = []
    for message in timing.tfg.messages:
        if allocation[message.src] == allocation[message.dst]:
            local.append(message.name)
        else:
            routed.append(message.name)
    return routed, local


@dataclass
class CompilationContext:
    """Everything one compilation knows, inputs and artifacts alike.

    The stage list communicates exclusively through this record: each
    :class:`CompilerStage` reads the artifacts of its predecessors and
    writes its own.  Per-attempt artifacts (assignment onward) are wiped
    by :meth:`reset_attempt` so the retry loop can re-run the attempt
    stages under a fresh seed.
    """

    # Inputs (``timing``/``topology``/``allocation`` may be None when a
    # caller enters the pipeline downstream of path assignment, as the
    # fault-repair engine does).
    tau_in: float
    config: "CompilerConfig"
    profiler: CompileProfiler = NULL_PROFILER
    backend: LPBackend | None = None
    timing: "TFGTiming | None" = None
    topology: "Topology | None" = None
    allocation: Mapping[str, int] | None = None
    #: Per-stage artifact broker for delta compilation (attached by
    #: ``compile_schedule`` when a cache is present; ``None`` otherwise,
    #: in which case every stage computes from scratch).
    delta: "DeltaState | None" = None

    # Artifacts, in pipeline order.
    routed: list[str] = field(default_factory=list)
    local: list[str] = field(default_factory=list)
    bounds: TimeBoundSet | None = None
    endpoints: dict[str, tuple[int, int]] = field(default_factory=dict)
    seed: int = 0
    attempt_number: int = 1
    assignment: PathAssignment | None = None
    report: UtilizationReport | None = None
    subsets: list[tuple[str, ...]] = field(default_factory=list)
    allocations: list[IntervalAllocation] = field(default_factory=list)
    interval_schedules: list[dict[int, IntervalSchedule]] = field(
        default_factory=list
    )
    schedule: CommunicationSchedule | None = None
    extra: dict = field(default_factory=dict)

    def reset_attempt(self, seed: int, attempt_number: int) -> None:
        """Wipe per-attempt artifacts before a retry under a new seed."""
        self.seed = seed
        self.attempt_number = attempt_number
        self.assignment = None
        self.report = None
        self.subsets = []
        self.allocations = []
        self.interval_schedules = []
        self.schedule = None
        if self.delta is not None:
            self.delta.reset_attempt()


@runtime_checkable
class CompilerStage(Protocol):
    """One box of the paper's Fig. 3.

    A stage mutates the :class:`CompilationContext` in place and fails
    by raising a :class:`~repro.errors.SchedulingError` subclass; it is
    responsible for its own ``context.profiler`` stage (names are part
    of the profiler's public output and must stay stable).
    """

    name: str

    def run(self, context: CompilationContext) -> None:  # pragma: no cover
        ...


def run_stages(
    stages: tuple[CompilerStage, ...], context: CompilationContext
) -> CompilationContext:
    """Run a stage list over a context; stage errors propagate."""
    for stage in stages:
        stage.run(context)
    return context


class PrescreenStage:
    """Refute statically before any LP work (``CompilerConfig.prescreen``).

    Runs the layer-1 necessary-condition certificates of
    :mod:`repro.diagnose` over the raw instance and raises
    :class:`~repro.errors.StaticallyRefutedError` when any
    instance-scoped certificate fires — skipping path assignment and
    both LP stages on points no assignment could save.  Certificates
    are sound (each is a necessary condition verified by the fuzz
    harness against both LP backends), so enabling the prescreen never
    changes a feasible point's outcome, only how fast infeasible ones
    fail.  The stage is config-gated and off by default.
    """

    name = "prescreen"

    def run(self, context: CompilationContext) -> None:
        from repro.diagnose import diagnose_instance
        from repro.errors import StaticallyRefutedError

        with context.profiler.stage(self.name) as detail:
            diagnosis = diagnose_instance(
                context.timing,
                context.topology,
                context.allocation,
                context.tau_in,
                sync_margin=context.config.sync_margin,
            )
            detail["checks"] = len(diagnosis.checks)
            detail["refutations"] = len(diagnosis.refutations)
        context.extra["diagnosis"] = diagnosis
        if diagnosis.refuted:
            raise StaticallyRefutedError(
                [r.to_dict() for r in diagnosis.instance_refutations]
            )


class TimeBoundsStage:
    """Split local/routed messages and compute release/deadline windows."""

    name = "time-bounds"

    def run(self, context: CompilationContext) -> None:
        timing, allocation = context.timing, context.allocation
        routed, local = routed_and_local_messages(timing, allocation)
        context.routed, context.local = routed, local
        with context.profiler.stage(
            self.name, messages=len(routed), local_messages=len(local)
        ):
            context.bounds = compute_time_bounds(
                timing,
                context.tau_in,
                routed,
                extra_duration=context.config.sync_margin,
            )
        context.endpoints = {
            name: (
                allocation[timing.tfg.message(name).src],
                allocation[timing.tfg.message(name).dst],
            )
            for name in routed
        }
        if context.delta is not None:
            # Bounds are cheap to recompute; their content digest keys
            # every artifact downstream.
            context.delta.record_bounds(context.bounds)


class AssignPathsStage:
    """Utilisation-minimising path assignment (the Section 6 heuristic)."""

    name = "assign-paths"

    def run(self, context: CompilationContext) -> None:
        with context.profiler.stage(
            self.name,
            attempt=context.attempt_number,
            messages=len(context.endpoints),
            max_paths=context.config.max_paths,
        ) as detail:
            delta = context.delta
            pools: dict[str, list[list[int]]] | None = None
            key: str | None = None
            if delta is not None:
                # The candidate pools feed both the artifact key and (on
                # a miss) the heuristic itself, so they are enumerated
                # once, in endpoint order — the order the heuristic's
                # RNG consumes them in.
                pools = {
                    name: context.topology.minimal_path_pool(
                        src, dst, context.config.max_paths
                    )
                    for name, (src, dst) in context.endpoints.items()
                }
                key = delta.assignment_key(pools, context.seed)
                cached = delta.fetch_assignment(
                    key, context.topology, context.endpoints
                )
                if cached is not None:
                    detail["artifact"] = "hit"
                    context.assignment = cached
                    context.report = utilization_report(
                        context.bounds, cached
                    )
                    return
            heuristic = assign_paths(
                context.bounds,
                context.topology,
                context.endpoints,
                seed=context.seed,
                max_paths=context.config.max_paths,
                max_restarts=context.config.max_restarts,
                pools=pools,
            )
            if delta is not None and key is not None:
                detail["artifact"] = "store"
                delta.store_assignment(key, heuristic.assignment)
        context.assignment = heuristic.assignment
        context.report = heuristic.report


class LsdAssignmentStage:
    """Deterministic LSD→MSD routing (the Fig. 5/6 baseline)."""

    name = "assign-paths(lsd)"

    def run(self, context: CompilationContext) -> None:
        with context.profiler.stage(
            self.name,
            attempt=context.attempt_number,
            messages=len(context.endpoints),
        ) as detail:
            delta = context.delta
            key: str | None = None
            if delta is not None:
                key = delta.lsd_assignment_key()
                cached = delta.fetch_assignment(
                    key, context.topology, context.endpoints
                )
                if cached is not None:
                    detail["artifact"] = "hit"
                    context.assignment = cached
                    context.report = utilization_report(
                        context.bounds, cached
                    )
                    return
            context.assignment = lsd_assignment(
                context.topology, context.endpoints
            )
            context.report = utilization_report(
                context.bounds, context.assignment
            )
            if delta is not None and key is not None:
                detail["artifact"] = "store"
                delta.store_assignment(key, context.assignment)


class UtilizationGateStage:
    """Reject U > 1 before any LP work (paper Section 5.1)."""

    name = "utilization-gate"

    def run(self, context: CompilationContext) -> None:
        report = context.report
        if not report.feasible:
            raise UtilizationExceededError(
                report.peak,
                witness=f"{report.witness_kind} {report.witness_link}",
            )


class MaximalSubsetsStage:
    """Partition messages into maximal subsets of overlapping windows."""

    name = "maximal-subsets"

    def run(self, context: CompilationContext) -> None:
        with context.profiler.stage(
            self.name, attempt=context.attempt_number
        ) as detail:
            context.subsets = maximal_subsets(
                context.bounds, context.assignment
            )
            detail["subsets"] = len(context.subsets)


class IntervalStage:
    """Allocation LP + interval-scheduling LP, with the feedback loop.

    Runs the paper's Fig. 3 feedback arrow per maximal subset: when
    interval scheduling reports an unpackable interval, the allocation
    LP is re-solved with the congested interval's total demand capped
    below the overflow.  Each subset gets its own profiler stage
    (``allocate+schedule[i]``), whose detail includes the LP backend's
    solve/iteration/wall-time tally for exactly that subset.
    """

    name = "allocate+schedule"

    def run(self, context: CompilationContext) -> None:
        bounds = context.bounds
        num_intervals = len(bounds.intervals.lengths)
        delta = context.delta
        for index, subset in enumerate(context.subsets):
            with context.profiler.stage(
                f"{self.name}[{index}]",
                attempt=context.attempt_number,
                messages=len(subset),
                lp_vars=len(subset) * num_intervals,
            ) as detail:
                key: str | None = None
                if delta is not None:
                    key = delta.subset_key(
                        bounds, context.assignment, subset, index
                    )
                    # Raises the recorded stage error on a negative hit,
                    # replaying the live feedback loop byte-identically.
                    cached = delta.fetch_subset(key, subset)
                    if cached is not None:
                        detail["artifact"] = "hit"
                        interval_allocation, schedules = cached
                        context.allocations.append(interval_allocation)
                        context.interval_schedules.append(schedules)
                        continue
                before = (
                    context.backend.tally.snapshot()
                    if context.backend is not None
                    else None
                )
                try:
                    interval_allocation, schedules = (
                        self._allocate_with_feedback(context, subset, index)
                    )
                except (
                    IntervalAllocationError,
                    IntervalSchedulingError,
                ) as error:
                    if delta is not None and key is not None:
                        delta.store_subset_failure(key, error)
                    raise
                if before is not None:
                    detail.update(context.backend.tally.since(before))
                if delta is not None and key is not None:
                    detail["artifact"] = "store"
                    delta.store_subset(key, interval_allocation, schedules)
            context.allocations.append(interval_allocation)
            context.interval_schedules.append(schedules)

    @staticmethod
    def _allocate_with_feedback(
        context: CompilationContext,
        subset: tuple[str, ...],
        index: int,
    ) -> tuple[IntervalAllocation, dict[int, IntervalSchedule]]:
        """Allocation ↔ interval-scheduling loop for one maximal subset.

        Raises the *first* scheduling error when the feedback budget runs
        out, or the allocation error if a cap makes the LP infeasible.
        """
        caps: dict[int, float] = {}
        first_error: IntervalSchedulingError | None = None
        for _ in range(context.config.feedback_rounds + 1):
            interval_allocation = allocate_intervals(
                context.bounds,
                context.assignment,
                subset,
                subset_index=index,
                interval_caps=caps or None,
                backend=context.backend,
            )
            try:
                schedules = schedule_intervals(
                    context.assignment,
                    interval_allocation,
                    context.bounds.intervals.lengths,
                    backend=context.backend,
                    batch=context.config.lp_batch,
                )
                return interval_allocation, schedules
            except IntervalSchedulingError as error:
                if first_error is None:
                    first_error = error
                k = error.interval_index
                current = sum(interval_allocation.per_interval(k).values())
                overflow = error.required - error.available
                caps[k] = min(
                    caps.get(k, float("inf")),
                    current - overflow * 1.05,
                )
        assert first_error is not None
        raise first_error


class BuildScheduleStage:
    """Assemble the node switching schedules Omega and validate them."""

    name = "build-schedule"

    def run(self, context: CompilationContext) -> None:
        with context.profiler.stage(
            self.name, attempt=context.attempt_number
        ) as detail:
            delta = context.delta
            key: str | None = None
            if delta is not None:
                key = delta.schedule_key()
                cached = delta.fetch_schedule(key)
                if cached is not None:
                    detail["artifact"] = "hit"
                    detail["commands"] = cached.num_commands
                    context.schedule = cached
                    return
            context.schedule = build_schedule(
                context.bounds, context.assignment, context.interval_schedules
            )
            detail["commands"] = context.schedule.num_commands
            if delta is not None and key is not None:
                detail["artifact"] = "store"
                delta.store_schedule(key, context.schedule)


#: Stages downstream of path assignment — shared by a fresh compile and
#: the fault-repair engine's local repair.
POST_ASSIGNMENT_STAGES: tuple[CompilerStage, ...] = (
    UtilizationGateStage(),
    MaximalSubsetsStage(),
    IntervalStage(),
    BuildScheduleStage(),
)


def compile_stages(config: "CompilerConfig") -> tuple[CompilerStage, ...]:
    """The per-attempt stage list for a config (paper Fig. 3)."""
    assigner: CompilerStage = (
        AssignPathsStage() if config.use_assign_paths else LsdAssignmentStage()
    )
    return (assigner, *POST_ASSIGNMENT_STAGES)
