"""Message-interval allocation (paper Section 5.2).

For one maximal subset, decide how much of each message is transmitted in
each of its active intervals.  The paper's constraints:

- (3) the allocations of a message across intervals sum to its
  transmission time;
- (4) the allocations of all messages using a link within an interval do
  not exceed the interval's length.

The paper notes the analogy to scheduling periodic tasks on multiple
processors [LM81] with the twist that a message occupies *several* links
simultaneously.  Because the downstream interval scheduling is preemptive,
the LP relaxation decides feasibility exactly at this stage; rather than a
bare feasibility check we minimise the worst per-(link, interval) load
factor ``z`` (constraint (4) scaled by ``z``), which spreads traffic and
maximises the chance that interval scheduling succeeds — the paper's
observed failure mode (Fig. 9) is exactly an allocation that satisfies
(4) but leaves some interval unpackable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import PathAssignment
from repro.core.timebounds import TimeBoundSet
from repro.errors import IntervalAllocationError
from repro.solvers import (
    LP_TOL,
    LPBackend,
    LPProblem,
    exceeds_tolerance,
    get_backend,
)
from repro.topology.base import Link

__all__ = ["LP_TOL", "IntervalAllocation", "allocate_intervals"]


@dataclass(frozen=True)
class IntervalAllocation:
    """Solution of the allocation LP for one maximal subset.

    ``allocation[(message, k)]`` is the transmission time assigned to the
    message within interval ``A_k`` (the paper's ``P = [p_ik]`` restricted
    to this subset); ``load_factor`` is the minimised worst
    (link, interval) load ratio ``z``.
    """

    subset: tuple[str, ...]
    allocation: dict[tuple[str, int], float]
    load_factor: float

    def per_interval(self, k: int) -> dict[str, float]:
        """Messages with positive allocation in interval ``k``."""
        return {
            name: time
            for (name, interval), time in self.allocation.items()
            if interval == k and time > LP_TOL
        }

    def intervals_used(self) -> tuple[int, ...]:
        """Sorted interval indices that carry any allocation."""
        return tuple(
            sorted({k for (_, k), t in self.allocation.items() if t > LP_TOL})
        )


def allocate_intervals(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    subset: tuple[str, ...],
    subset_index: int = 0,
    interval_caps: dict[int, float] | None = None,
    backend: LPBackend | None = None,
) -> IntervalAllocation:
    """Solve the allocation LP for one maximal subset.

    ``interval_caps`` optionally bounds the subset's *total* allocation
    placed into specific intervals — the feedback knob the compiler turns
    when interval scheduling reports an unpackable interval (the paper's
    Fig. 3 feedback arrow): demand is pushed out of the congested
    interval and the downstream packing retried.

    ``backend`` selects the LP solver (see :mod:`repro.solvers`); by
    default the environment's best available backend is used.

    Raises :class:`~repro.errors.IntervalAllocationError` when constraints
    (3)-(4) (plus any caps) cannot be met — the subset's messages demand
    more of some link-interval than it can carry.
    """
    lengths = bounds.intervals.lengths
    # Variable layout: one x per (message, active interval), then z.
    variables: list[tuple[str, int]] = []
    for name in subset:
        for k in bounds.active_intervals(name):
            variables.append((name, k))
    var_index = {v: i for i, v in enumerate(variables)}
    num_x = len(variables)
    z_index = num_x

    # Equality (3): per message, allocations sum to its duration.
    a_eq = np.zeros((len(subset), num_x + 1))
    b_eq = np.zeros(len(subset))
    for row, name in enumerate(subset):
        for k in bounds.active_intervals(name):
            a_eq[row, var_index[(name, k)]] = 1.0
        b_eq[row] = bounds.bounds[name].duration

    # Inequality (4), scaled by z: per (link, interval),
    # sum of allocations - z * |A_k| <= 0.
    rows: list[np.ndarray] = []
    links_seen: dict[tuple[Link, int], list[int]] = {}
    for name in subset:
        for link in assignment.links(name):
            for k in bounds.active_intervals(name):
                links_seen.setdefault((link, k), []).append(
                    var_index[(name, k)]
                )
    for (link, k), columns in links_seen.items():
        row = np.zeros(num_x + 1)
        row[columns] = 1.0
        row[z_index] = -lengths[k]
        rows.append(row)
    b_rows = [0.0] * len(rows)
    # Feedback caps: total subset allocation into interval k <= cap.
    for k, cap in (interval_caps or {}).items():
        columns = [
            var_index[(name, k)]
            for name in subset
            if (name, k) in var_index
        ]
        if not columns:
            continue
        row = np.zeros(num_x + 1)
        row[columns] = 1.0
        rows.append(row)
        b_rows.append(max(cap, 0.0))
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.asarray(b_rows) if rows else None

    # Objective: minimise z.  x bounded by interval lengths (a message
    # cannot transmit longer than the interval it sits in).
    c = np.zeros(num_x + 1)
    c[z_index] = 1.0
    x_bounds = [(0.0, lengths[k]) for (_, k) in variables] + [(0.0, None)]

    if backend is None:
        backend = get_backend()
    solution = backend.solve(
        LPProblem(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=x_bounds,
        )
    )
    if not solution.success:
        raise IntervalAllocationError(
            subset_index, f"allocation LP failed: {solution.message}"
        )
    z = float(solution.x[z_index])
    if exceeds_tolerance(z, 1.0):
        raise IntervalAllocationError(
            subset_index,
            f"minimal worst link-interval load {z:.4f} exceeds 1 "
            "(paper constraint (4))",
        )
    allocation = {
        variables[i]: float(solution.x[i])
        for i in range(num_x)
        if solution.x[i] > LP_TOL
    }
    return IntervalAllocation(
        subset=subset,
        allocation=allocation,
        load_factor=z,
    )
