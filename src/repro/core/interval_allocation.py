"""Message-interval allocation (paper Section 5.2).

For one maximal subset, decide how much of each message is transmitted in
each of its active intervals.  The paper's constraints:

- (3) the allocations of a message across intervals sum to its
  transmission time;
- (4) the allocations of all messages using a link within an interval do
  not exceed the interval's length.

The paper notes the analogy to scheduling periodic tasks on multiple
processors [LM81] with the twist that a message occupies *several* links
simultaneously.  Because the downstream interval scheduling is preemptive,
the LP relaxation decides feasibility exactly at this stage; rather than a
bare feasibility check we minimise the worst per-(link, interval) load
factor ``z`` (constraint (4) scaled by ``z``), which spreads traffic and
maximises the chance that interval scheduling succeeds — the paper's
observed failure mode (Fig. 9) is exactly an allocation that satisfies
(4) but leaves some interval unpackable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import PathAssignment
from repro.core.timebounds import TimeBoundSet
from repro.errors import IntervalAllocationError
from repro.solvers import (
    LP_TOL,
    LPBackend,
    LPProblem,
    exceeds_tolerance,
    get_backend,
)
from repro.topology.base import Link

__all__ = [
    "LP_TOL",
    "AllocationProblem",
    "IntervalAllocation",
    "allocate_intervals",
    "build_allocation_problem",
]


@dataclass(frozen=True)
class AllocationProblem:
    """The allocation LP plus the labels of its rows and columns.

    Shared between :func:`allocate_intervals` (which solves the
    ``z``-scaled optimisation form) and the dual diagnoser of
    :mod:`repro.diagnose.duals` (which probes the fixed-capacity
    feasibility form and needs to know *which message* each equality
    row and *which (link, interval)* each inequality row talks about in
    order to translate a Farkas ray into a refutation).

    Attributes
    ----------
    problem:
        The standard-form LP.
    variables:
        Column labels: one ``(message, interval)`` pair per ``x``
        column, in column order (the trailing ``z`` column of the
        scaled form is not listed).
    eq_messages:
        Equality-row labels: the message whose duration each row sums.
    ub_rows:
        Inequality-row labels: ``("link", link, k)`` for paper
        constraint (4) rows, ``("cap", None, k)`` for feedback-cap rows.
    fixed_capacity:
        True for the feasibility form (no ``z`` column, capacities at
        their real interval lengths).
    """

    problem: LPProblem
    variables: tuple[tuple[str, int], ...]
    eq_messages: tuple[str, ...]
    ub_rows: tuple[tuple[str, Link | None, int], ...]
    fixed_capacity: bool


@dataclass(frozen=True)
class IntervalAllocation:
    """Solution of the allocation LP for one maximal subset.

    ``allocation[(message, k)]`` is the transmission time assigned to the
    message within interval ``A_k`` (the paper's ``P = [p_ik]`` restricted
    to this subset); ``load_factor`` is the minimised worst
    (link, interval) load ratio ``z``.
    """

    subset: tuple[str, ...]
    allocation: dict[tuple[str, int], float]
    load_factor: float

    def per_interval(self, k: int) -> dict[str, float]:
        """Messages with positive allocation in interval ``k``."""
        return {
            name: time
            for (name, interval), time in self.allocation.items()
            if interval == k and time > LP_TOL
        }

    def intervals_used(self) -> tuple[int, ...]:
        """Sorted interval indices that carry any allocation."""
        return tuple(
            sorted({k for (_, k), t in self.allocation.items() if t > LP_TOL})
        )


def allocate_intervals(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    subset: tuple[str, ...],
    subset_index: int = 0,
    interval_caps: dict[int, float] | None = None,
    backend: LPBackend | None = None,
) -> IntervalAllocation:
    """Solve the allocation LP for one maximal subset.

    ``interval_caps`` optionally bounds the subset's *total* allocation
    placed into specific intervals — the feedback knob the compiler turns
    when interval scheduling reports an unpackable interval (the paper's
    Fig. 3 feedback arrow): demand is pushed out of the congested
    interval and the downstream packing retried.

    ``backend`` selects the LP solver (see :mod:`repro.solvers`); by
    default the environment's best available backend is used.

    Raises :class:`~repro.errors.IntervalAllocationError` when constraints
    (3)-(4) (plus any caps) cannot be met — the subset's messages demand
    more of some link-interval than it can carry.
    """
    built = build_allocation_problem(
        bounds, assignment, subset, interval_caps=interval_caps
    )
    if backend is None:
        backend = get_backend()
    solution = backend.solve(built.problem)
    if not solution.success:
        raise IntervalAllocationError(
            subset_index, f"allocation LP failed: {solution.message}"
        )
    num_x = len(built.variables)
    z = float(solution.x[num_x])
    if exceeds_tolerance(z, 1.0):
        raise IntervalAllocationError(
            subset_index,
            f"minimal worst link-interval load {z:.4f} exceeds 1 "
            "(paper constraint (4))",
        )
    allocation = {
        built.variables[i]: float(solution.x[i])
        for i in range(num_x)
        if solution.x[i] > LP_TOL
    }
    return IntervalAllocation(
        subset=subset,
        allocation=allocation,
        load_factor=z,
    )


def build_allocation_problem(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    subset: tuple[str, ...],
    interval_caps: dict[int, float] | None = None,
    fixed_capacity: bool = False,
) -> AllocationProblem:
    """Assemble the allocation LP for one maximal subset.

    With ``fixed_capacity=False`` (the compiler's form) the per-
    (link, interval) capacities are scaled by a trailing load-factor
    variable ``z`` which the objective minimises.  With
    ``fixed_capacity=True`` (the diagnoser's form) there is no ``z``:
    constraint (4) uses the real interval lengths and the LP is a pure
    feasibility probe, which is what Farkas-certificate extraction
    wants — an infeasible ray then combines *actual* capacities, not
    scaled ones.
    """
    lengths = bounds.intervals.lengths
    # Variable layout: one x per (message, active interval) [, then z].
    variables: list[tuple[str, int]] = []
    for name in subset:
        for k in bounds.active_intervals(name):
            variables.append((name, k))
    var_index = {v: i for i, v in enumerate(variables)}
    num_x = len(variables)
    num_cols = num_x if fixed_capacity else num_x + 1
    z_index = num_x

    # Equality (3): per message, allocations sum to its duration.
    a_eq = np.zeros((len(subset), num_cols))
    b_eq = np.zeros(len(subset))
    for row, name in enumerate(subset):
        for k in bounds.active_intervals(name):
            a_eq[row, var_index[(name, k)]] = 1.0
        b_eq[row] = bounds.bounds[name].duration

    # Inequality (4): per (link, interval), sum of allocations bounded
    # by the interval length (scaled by z in the compiler's form).
    rows: list[np.ndarray] = []
    b_rows: list[float] = []
    row_labels: list[tuple[str, Link | None, int]] = []
    links_seen: dict[tuple[Link, int], list[int]] = {}
    for name in subset:
        for link in assignment.links(name):
            for k in bounds.active_intervals(name):
                links_seen.setdefault((link, k), []).append(
                    var_index[(name, k)]
                )
    for (link, k), columns in links_seen.items():
        row = np.zeros(num_cols)
        row[columns] = 1.0
        if fixed_capacity:
            b_rows.append(lengths[k])
        else:
            row[z_index] = -lengths[k]
            b_rows.append(0.0)
        rows.append(row)
        row_labels.append(("link", link, k))
    # Feedback caps: total subset allocation into interval k <= cap.
    for k, cap in (interval_caps or {}).items():
        columns = [
            var_index[(name, k)]
            for name in subset
            if (name, k) in var_index
        ]
        if not columns:
            continue
        row = np.zeros(num_cols)
        row[columns] = 1.0
        rows.append(row)
        b_rows.append(max(cap, 0.0))
        row_labels.append(("cap", None, k))
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.asarray(b_rows) if rows else None

    # Objective: minimise z (constant in the feasibility form).  x is
    # bounded by interval lengths (a message cannot transmit longer
    # than the interval it sits in).
    c = np.zeros(num_cols)
    x_bounds = [(0.0, lengths[k]) for (_, k) in variables]
    if not fixed_capacity:
        c[z_index] = 1.0
        x_bounds.append((0.0, None))

    return AllocationProblem(
        problem=LPProblem(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=x_bounds,
        ),
        variables=tuple(variables),
        eq_messages=tuple(subset),
        ub_rows=tuple(row_labels),
        fixed_capacity=fixed_capacity,
    )
