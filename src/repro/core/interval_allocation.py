"""Message-interval allocation (paper Section 5.2).

For one maximal subset, decide how much of each message is transmitted in
each of its active intervals.  The paper's constraints:

- (3) the allocations of a message across intervals sum to its
  transmission time;
- (4) the allocations of all messages using a link within an interval do
  not exceed the interval's length.

The paper notes the analogy to scheduling periodic tasks on multiple
processors [LM81] with the twist that a message occupies *several* links
simultaneously.  Because the downstream interval scheduling is preemptive,
the LP relaxation decides feasibility exactly at this stage; rather than a
bare feasibility check we minimise the worst per-(link, interval) load
factor ``z`` (constraint (4) scaled by ``z``), which spreads traffic and
maximises the chance that interval scheduling succeeds — the paper's
observed failure mode (Fig. 9) is exactly an allocation that satisfies
(4) but leaves some interval unpackable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import PathAssignment
from repro.core.timebounds import TimeBoundSet
from repro.errors import IntervalAllocationError
from repro.solvers import (
    LP_TOL,
    LPBackend,
    LPProblem,
    LPProblemBuilder,
    exceeds_tolerance,
    get_backend,
)
from repro.topology.base import Link

__all__ = [
    "LP_TOL",
    "AllocationProblem",
    "IntervalAllocation",
    "allocate_intervals",
    "build_allocation_problem",
]


@dataclass(frozen=True)
class AllocationProblem:
    """The allocation LP plus the labels of its rows and columns.

    Shared between :func:`allocate_intervals` (which solves the
    ``z``-scaled optimisation form) and the dual diagnoser of
    :mod:`repro.diagnose.duals` (which probes the fixed-capacity
    feasibility form and needs to know *which message* each equality
    row and *which (link, interval)* each inequality row talks about in
    order to translate a Farkas ray into a refutation).

    Attributes
    ----------
    problem:
        The standard-form LP.
    variables:
        Column labels: one ``(message, interval)`` pair per ``x``
        column, in column order (the trailing ``z`` column of the
        scaled form is not listed).
    eq_messages:
        Equality-row labels: the message whose duration each row sums.
    ub_rows:
        Inequality-row labels: ``("link", link, k)`` for paper
        constraint (4) rows, ``("cap", None, k)`` for feedback-cap rows.
    fixed_capacity:
        True for the feasibility form (no ``z`` column, capacities at
        their real interval lengths).
    """

    problem: LPProblem
    variables: tuple[tuple[str, int], ...]
    eq_messages: tuple[str, ...]
    ub_rows: tuple[tuple[str, Link | None, int], ...]
    fixed_capacity: bool


@dataclass(frozen=True)
class IntervalAllocation:
    """Solution of the allocation LP for one maximal subset.

    ``allocation[(message, k)]`` is the transmission time assigned to the
    message within interval ``A_k`` (the paper's ``P = [p_ik]`` restricted
    to this subset); ``load_factor`` is the minimised worst
    (link, interval) load ratio ``z``.
    """

    subset: tuple[str, ...]
    allocation: dict[tuple[str, int], float]
    load_factor: float

    def per_interval(self, k: int) -> dict[str, float]:
        """Messages with positive allocation in interval ``k``."""
        return {
            name: time
            for (name, interval), time in self.allocation.items()
            if interval == k and time > LP_TOL
        }

    def intervals_used(self) -> tuple[int, ...]:
        """Sorted interval indices that carry any allocation."""
        return tuple(
            sorted({k for (_, k), t in self.allocation.items() if t > LP_TOL})
        )


def allocate_intervals(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    subset: tuple[str, ...],
    subset_index: int = 0,
    interval_caps: dict[int, float] | None = None,
    backend: LPBackend | None = None,
) -> IntervalAllocation:
    """Solve the allocation LP for one maximal subset.

    ``interval_caps`` optionally bounds the subset's *total* allocation
    placed into specific intervals — the feedback knob the compiler turns
    when interval scheduling reports an unpackable interval (the paper's
    Fig. 3 feedback arrow): demand is pushed out of the congested
    interval and the downstream packing retried.

    ``backend`` selects the LP solver (see :mod:`repro.solvers`); by
    default the environment's best available backend is used.

    Raises :class:`~repro.errors.IntervalAllocationError` when constraints
    (3)-(4) (plus any caps) cannot be met — the subset's messages demand
    more of some link-interval than it can carry.
    """
    built = build_allocation_problem(
        bounds, assignment, subset, interval_caps=interval_caps
    )
    if backend is None:
        backend = get_backend()
    solution = backend.solve(built.problem)
    if not solution.success:
        raise IntervalAllocationError(
            subset_index, f"allocation LP failed: {solution.message}"
        )
    num_x = len(built.variables)
    z = float(solution.x[num_x])
    if exceeds_tolerance(z, 1.0):
        raise IntervalAllocationError(
            subset_index,
            f"minimal worst link-interval load {z:.4f} exceeds 1 "
            "(paper constraint (4))",
        )
    allocation = {
        built.variables[i]: float(solution.x[i])
        for i in range(num_x)
        if solution.x[i] > LP_TOL
    }
    return IntervalAllocation(
        subset=subset,
        allocation=allocation,
        load_factor=z,
    )


def build_allocation_problem(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    subset: tuple[str, ...],
    interval_caps: dict[int, float] | None = None,
    fixed_capacity: bool = False,
) -> AllocationProblem:
    """Assemble the allocation LP for one maximal subset.

    With ``fixed_capacity=False`` (the compiler's form) the per-
    (link, interval) capacities are scaled by a trailing load-factor
    variable ``z`` which the objective minimises.  With
    ``fixed_capacity=True`` (the diagnoser's form) there is no ``z``:
    constraint (4) uses the real interval lengths and the LP is a pure
    feasibility probe, which is what Farkas-certificate extraction
    wants — an infeasible ray then combines *actual* capacities, not
    scaled ones.
    """
    lengths = np.asarray(bounds.intervals.lengths, dtype=np.float64)
    num_k = int(lengths.size)

    # Variable layout: one x per (message, active interval) [, then z].
    # Row-major nonzero of the subset's activity slice enumerates the
    # pairs message-by-message with intervals ascending — exactly the
    # legacy per-message loop order.
    sub_rows = np.array(
        [bounds.index[name] for name in subset], dtype=np.int64
    )
    sub_activity = bounds.activity[sub_rows] if subset else np.zeros(
        (0, num_k), dtype=bool
    )
    msg_of_var, var_ks = np.nonzero(sub_activity)
    num_x = int(var_ks.size)
    counts = sub_activity.sum(axis=1).astype(np.int64)
    var_starts = np.zeros(len(subset) + 1, dtype=np.int64)
    np.cumsum(counts, out=var_starts[1:])
    variables = tuple(
        (subset[int(i)], int(k)) for i, k in zip(msg_of_var, var_ks)
    )
    num_cols = num_x if fixed_capacity else num_x + 1
    z_index = num_x

    builder = LPProblemBuilder(num_cols)

    # Equality (3): per message, allocations sum to its duration.  The
    # variable ids of message i are the contiguous block
    # var_starts[i]:var_starts[i+1], so the whole system is one scatter.
    durations = np.array(
        [bounds.bounds[name].duration for name in subset], dtype=np.float64
    )
    builder.add_eq_rows(
        durations,
        rows=msg_of_var,
        cols=np.arange(num_x, dtype=np.int64),
        values=np.ones(num_x),
    )

    # Inequality (4): per (link, interval), sum of allocations bounded
    # by the interval length (scaled by z in the compiler's form).  Each
    # (link, interval) pair is encoded as link_id * K + k; rows keep the
    # legacy first-appearance order over the message → link → interval
    # traversal, and duplicate (row, column) hits collapse to a single
    # 1.0 coefficient (the legacy dense assembly's set semantics).
    link_ids: dict[Link, int] = {}
    per_msg_links: list[np.ndarray] = []
    for name in subset:
        ids = [
            link_ids.setdefault(link, len(link_ids))
            for link in assignment.links(name)
        ]
        per_msg_links.append(np.asarray(ids, dtype=np.int64))
    link_of_id = list(link_ids)

    code_parts: list[np.ndarray] = []
    col_parts: list[np.ndarray] = []
    for i in range(len(subset)):
        lids = per_msg_links[i]
        k_i = var_ks[var_starts[i] : var_starts[i + 1]]
        if lids.size == 0 or k_i.size == 0:
            continue
        code_parts.append(
            np.repeat(lids * num_k, k_i.size) + np.tile(k_i, lids.size)
        )
        col_parts.append(
            np.tile(
                np.arange(var_starts[i], var_starts[i + 1], dtype=np.int64),
                lids.size,
            )
        )

    row_labels: list[tuple[str, Link | None, int]] = []
    if code_parts:
        codes = np.concatenate(code_parts)
        cols = np.concatenate(col_parts)
        uniq_codes, first_pos, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        appearance = np.argsort(first_pos, kind="stable")
        rank = np.empty(appearance.size, dtype=np.int64)
        rank[appearance] = np.arange(appearance.size)
        entry_rows = rank[inverse]
        pair = entry_rows * np.int64(num_cols) + cols
        _, keep = np.unique(pair, return_index=True)
        row_codes = uniq_codes[appearance]
        row_ks = row_codes % num_k
        num_link_rows = int(row_codes.size)
        rhs = lengths[row_ks] if fixed_capacity else np.zeros(num_link_rows)
        builder.add_ub_rows(
            rhs,
            rows=entry_rows[keep],
            cols=cols[keep],
            values=np.ones(keep.size),
        )
        if not fixed_capacity:
            builder.add_ub_entries(
                np.arange(num_link_rows, dtype=np.int64),
                np.full(num_link_rows, z_index, dtype=np.int64),
                -lengths[row_ks],
            )
        row_labels.extend(
            ("link", link_of_id[int(code) // num_k], int(code) % num_k)
            for code in row_codes
        )

    # Feedback caps: total subset allocation into interval k <= cap.
    for k, cap in (interval_caps or {}).items():
        columns = np.flatnonzero(var_ks == k)
        if columns.size == 0:
            continue
        builder.add_ub_rows(
            [max(cap, 0.0)],
            rows=np.zeros(columns.size, dtype=np.int64),
            cols=columns,
            values=np.ones(columns.size),
        )
        row_labels.append(("cap", None, k))

    # Objective: minimise z (constant in the feasibility form).  x is
    # bounded by interval lengths (a message cannot transmit longer
    # than the interval it sits in); z keeps the default [0, inf).
    builder.set_upper(np.arange(num_x, dtype=np.int64), lengths[var_ks])
    if not fixed_capacity:
        builder.set_objective([z_index], [1.0])

    return AllocationProblem(
        problem=builder.build(),
        variables=variables,
        eq_messages=tuple(subset),
        ub_rows=tuple(row_labels),
        fixed_capacity=fixed_capacity,
    )
