"""Serialization of communication schedules.

A compiled schedule Omega is a deployable artifact: per-node switching
command lists that the communication processors execute.  This module
round-trips it through JSON so a schedule can be compiled once, stored
next to the application binary, and re-validated at load time.

The format is versioned and self-describing:

.. code-block:: json

    {
      "format": "repro.schedule/1",
      "tau_in": 96.15,
      "assignment": {"b0": [1, 3, 7]},
      "slots": {"b0": [{"start": 0.0, "duration": 12.0}]},
      "bounds": {"b0": {"release": 10.0, "deadline": 60.0,
                         "duration": 12.0,
                         "windows": [[10.0, 60.0]]}}
    }

Node schedules are not stored — they are a pure projection of the slots
and are rebuilt (and re-validated) on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.switching import (
    CommunicationSchedule,
    NodeSchedule,
    TransmissionSlot,
    _slot_commands,
)
from repro.core.timebounds import MessageTimeBounds, TimeBoundSet
from repro.errors import ScheduleValidationError

FORMAT = "repro.schedule/1"


def schedule_to_dict(schedule: CommunicationSchedule) -> dict[str, Any]:
    """Serialize a schedule (slots + assignment + bounds) to a dict."""
    data: dict[str, Any] = {
        "format": FORMAT,
        "tau_in": schedule.tau_in,
        "assignment": {
            name: list(path) for name, path in schedule.assignment.items()
        },
        "slots": {
            name: [
                {"start": slot.start, "duration": slot.duration}
                for slot in slots
            ]
            for name, slots in schedule.slots.items()
        },
    }
    if schedule.bounds is not None:
        data["bounds"] = {
            name: {
                "release": bound.release,
                "deadline": bound.deadline,
                "duration": bound.duration,
                "windows": [list(w) for w in bound.windows],
            }
            for name, bound in schedule.bounds.bounds.items()
        }
    return data


def schedule_from_dict(data: dict[str, Any]) -> CommunicationSchedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    Node schedules are regenerated from the slots and the whole object is
    re-validated, so a tampered file cannot produce a schedule that
    violates the contention-freedom invariants.
    """
    if data.get("format") != FORMAT:
        raise ScheduleValidationError(
            f"unknown schedule format {data.get('format')!r} "
            f"(expected {FORMAT!r})"
        )
    tau_in = float(data["tau_in"])
    assignment = {
        name: tuple(int(n) for n in path)
        for name, path in data["assignment"].items()
    }
    slots: dict[str, tuple[TransmissionSlot, ...]] = {}
    for name, raw_slots in data["slots"].items():
        if name not in assignment:
            raise ScheduleValidationError(
                f"slots for unassigned message {name!r}"
            )
        slots[name] = tuple(
            TransmissionSlot(
                message=name,
                start=float(s["start"]),
                duration=float(s["duration"]),
                path=assignment[name],
            )
            for s in raw_slots
        )

    bounds = None
    if "bounds" in data:
        parsed = {
            name: MessageTimeBounds(
                name=name,
                release=float(b["release"]),
                deadline=float(b["deadline"]),
                duration=float(b["duration"]),
                windows=tuple(
                    (float(w[0]), float(w[1])) for w in b["windows"]
                ),
            )
            for name, b in data["bounds"].items()
        }
        bounds = TimeBoundSet(tau_in, parsed)

    node_commands: dict[int, list] = {}
    for message_slots in slots.values():
        for slot in message_slots:
            for command, node in _slot_commands(slot):
                node_commands.setdefault(node, []).append(command)
    node_schedules = {
        node: NodeSchedule(
            node=node,
            commands=tuple(
                sorted(commands, key=lambda c: (c.time, c.message))
            ),
        )
        for node, commands in node_commands.items()
    }
    schedule = CommunicationSchedule(
        tau_in=tau_in,
        slots=slots,
        node_schedules=node_schedules,
        bounds=bounds,
        assignment=assignment,
    )
    schedule.validate()
    return schedule


def save_schedule(schedule: CommunicationSchedule, path: str | Path) -> None:
    """Write a schedule to a JSON file."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: str | Path) -> CommunicationSchedule:
    """Read and re-validate a schedule written by :func:`save_schedule`."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
