"""Assignment-invariant feasibility bounds on the input period.

Before running the scheduled-routing compiler (or to explain why it
failed), these bounds answer "could *any* path assignment work?".  All of
them are necessary conditions — independent of which minimal paths
messages take — so a compile success at ``tau_in`` implies every bound is
satisfied, a cross-check the test suite enforces.

- **compute bound**: each application processor must fit its tasks'
  execution time into one period;
- **node throughput bounds**: all traffic entering or leaving a node
  crosses its ``degree`` incident links, each carrying one message at a
  time — per period, a node moves at most ``degree * tau_in`` of
  transmission time;
- **bisection bound**: traffic between the two halves of the machine
  crosses at most ``bisection_width`` links;
- **window overloads**: messages released at the same instant and docked
  at the same node must all flow through that node's links inside one
  message window (``tau_c``) — a *structural* condition independent of
  ``tau_in``.  A violation means the workload/allocation pair is
  unschedulable at every input rate (this is exactly what breaks the
  8-model DVB on 64-node degree-<=9 machines at B = 64; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.tfg.analysis import TFGTiming
from repro.topology.analysis import bisection_width
from repro.topology.base import Topology
from repro.units import EPS


@dataclass(frozen=True)
class FeasibilityBounds:
    """Necessary conditions for scheduled routing at a given placement.

    ``min_period`` aggregates the period lower bounds; schedules can only
    exist for ``tau_in >= min_period`` *and* ``window_overloads`` empty.
    """

    compute_bound: float
    node_throughput_bound: float
    bisection_bound: float
    window_overloads: tuple[tuple[int, float, str, float, float], ...]
    """Violations as ``(node, release, reason, demand, capacity)`` tuples.

    ``reason`` is ``"volume"`` (total transmission time exceeds
    ``degree * window``) or ``"exclusive"`` (more messages longer than
    half a window — pairwise unable to share a link — than the node has
    links)."""

    @property
    def min_period(self) -> float:
        """The tightest period lower bound."""
        return max(
            self.compute_bound,
            self.node_throughput_bound,
            self.bisection_bound,
        )

    @property
    def structurally_feasible(self) -> bool:
        """False when no input period can ever be schedulable."""
        return not self.window_overloads

    def admits(self, tau_in: float) -> bool:
        """True when the necessary conditions hold at ``tau_in``.

        (Necessary, not sufficient: the compiler may still fail.)
        """
        return self.structurally_feasible and (
            tau_in >= self.min_period - EPS
        )


def feasibility_bounds(
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
) -> FeasibilityBounds:
    """Compute every assignment-invariant bound for one placement."""
    tfg = timing.tfg

    # Compute bound: per-node total execution time.
    node_exec: dict[int, float] = {}
    for task in tfg.tasks:
        node = allocation[task.name]
        node_exec[node] = node_exec.get(node, 0.0) + timing.exec_time(task.name)
    compute_bound = max(node_exec.values(), default=0.0)

    # Node throughput: per node, transmission time of all routed messages
    # docked there (in or out), over its degree.
    node_traffic: dict[int, float] = {}
    for message in tfg.messages:
        src = allocation[message.src]
        dst = allocation[message.dst]
        if src == dst:
            continue
        xmit = timing.xmit_time(message.name)
        node_traffic[src] = node_traffic.get(src, 0.0) + xmit
        node_traffic[dst] = node_traffic.get(dst, 0.0) + xmit
    node_throughput_bound = max(
        (traffic / topology.degree(node)
         for node, traffic in node_traffic.items()),
        default=0.0,
    )

    # Bisection: traffic between address halves over the crossing links.
    width = bisection_width(topology)
    top_radix = topology.radices[-1]
    threshold = top_radix // 2

    def side(node: int) -> bool:
        return topology.address(node)[-1] >= threshold

    crossing_traffic = sum(
        timing.xmit_time(m.name)
        for m in tfg.messages
        if allocation[m.src] != allocation[m.dst]
        and side(allocation[m.src]) != side(allocation[m.dst])
    )
    bisection_bound = crossing_traffic / width if width else 0.0

    # Window overloads: group routed messages by (docked node, release
    # instant); each group must fit through the node's links within one
    # message window.
    asap = timing.asap_schedule()
    window = timing.message_window
    groups: dict[tuple[int, float], list[float]] = {}
    for message in tfg.messages:
        src = allocation[message.src]
        dst = allocation[message.dst]
        if src == dst:
            continue
        release = asap[message.src][1]
        xmit = timing.xmit_time(message.name)
        for node in (src, dst):
            groups.setdefault((node, release), []).append(xmit)
    violations = []
    for (node, release), xmits in groups.items():
        degree = topology.degree(node)
        demand = sum(xmits)
        capacity = degree * window
        if demand > capacity + EPS:
            violations.append((node, release, "volume", demand, capacity))
        # Messages longer than half a window cannot share a link within
        # the window, so each needs its own link (a clique bound).
        exclusive = sum(1 for x in xmits if x > window / 2 + EPS)
        if exclusive > degree:
            violations.append(
                (node, release, "exclusive", float(exclusive), float(degree))
            )
    overloads = tuple(sorted(violations))

    return FeasibilityBounds(
        compute_bound=compute_bound,
        node_throughput_bound=node_throughput_bound,
        bisection_bound=bisection_bound,
        window_overloads=overloads,
    )
