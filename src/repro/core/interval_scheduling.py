"""Interval scheduling over link-feasible sets (paper Section 5.3).

Within one interval, the messages with non-zero allocations must be packed
so that every message holds *all* the links of its path simultaneously — a
preemptive multiprocessor-task scheduling problem [BDW86].  A **link
feasible set** (Def. 5.5) is a set of messages that pairwise share no
link; all its members can be transmitted at once.  Associating a duration
``y_j`` with each feasible set, the interval is schedulable iff

    minimise  sum_j y_j
    s.t.      sum_{j : M_h in set_j} y_j = p_hk   for every message h

has an optimum not exceeding the interval length.

The paper notes the variable count can be O(2^N); we solve the LP by
**column generation**: start from singleton sets, and repeatedly price in
the maximum-dual-weight independent set of the conflict graph (found by a
small branch-and-bound) until no set has reduced cost below zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import PathAssignment
from repro.errors import IntervalSchedulingError
from repro.solvers import (
    LP_TOL,
    LPBackend,
    LPProblem,
    exceeds_tolerance,
    get_backend,
)

__all__ = [
    "LP_TOL",
    "FeasibleSetSlot",
    "IntervalSchedule",
    "conflict_graph",
    "greedy_schedule_interval",
    "max_weight_independent_set",
    "schedule_interval",
    "schedule_intervals",
]


@dataclass(frozen=True)
class FeasibleSetSlot:
    """One packing slot: the messages transmitted together and for how long."""

    messages: frozenset[str]
    duration: float


@dataclass(frozen=True)
class IntervalSchedule:
    """The packed slots of one (maximal subset, interval) pair.

    ``total_time`` is the packing makespan; scheduling succeeded iff it
    fits the interval length (checked by :func:`schedule_interval`).
    """

    interval: int
    slots: tuple[FeasibleSetSlot, ...]

    @property
    def total_time(self) -> float:
        return sum(slot.duration for slot in self.slots)

    def message_time(self, name: str) -> float:
        """Total transmission time a message receives in this interval."""
        return sum(s.duration for s in self.slots if name in s.messages)


def conflict_graph(
    assignment: PathAssignment,
    messages: list[str],
) -> dict[str, set[str]]:
    """Adjacency of the conflict graph: an edge joins two messages that
    share at least one link (and hence cannot transmit simultaneously)."""
    adjacency: dict[str, set[str]] = {name: set() for name in messages}
    link_sets = {name: set(assignment.links(name)) for name in messages}
    for i, first in enumerate(messages):
        for second in messages[i + 1:]:
            if link_sets[first] & link_sets[second]:
                adjacency[first].add(second)
                adjacency[second].add(first)
    return adjacency


def max_weight_independent_set(
    adjacency: dict[str, set[str]],
    weights: dict[str, float],
    node_budget: int = 100_000,
) -> tuple[frozenset[str], float]:
    """(Near-)maximum-weight independent set by budgeted branch and bound.

    Vertices with non-positive weight are dropped up front (they never
    help).  Exact on the small conflict graphs typical of one interval;
    on large sparse graphs — where the suffix bound prunes poorly and the
    search would go exponential — the ``node_budget`` caps exploration
    and the best set found so far is returned.  Used as a column-
    generation pricer, a non-optimal set only makes the pricing
    conservative (columns stop being added earlier); every generated
    schedule remains valid.
    """
    vertices = sorted(
        (v for v in adjacency if weights.get(v, 0.0) > LP_TOL),
        key=lambda v: -weights[v],
    )
    best_set: frozenset[str] = frozenset()
    best_weight = 0.0
    suffix_weight = [0.0] * (len(vertices) + 1)
    for i in range(len(vertices) - 1, -1, -1):
        suffix_weight[i] = suffix_weight[i + 1] + weights[vertices[i]]

    # Greedy seed: a good incumbent makes the bound prune far earlier.
    seed: list[str] = []
    seed_blocked: set[str] = set()
    seed_weight = 0.0
    for vertex in vertices:
        if vertex not in seed_blocked:
            seed.append(vertex)
            seed_weight += weights[vertex]
            seed_blocked |= adjacency[vertex]
    best_set = frozenset(seed)
    best_weight = seed_weight

    chosen: list[str] = []
    visited = 0

    def branch(i: int, weight: float, blocked: set[str]) -> None:
        nonlocal best_set, best_weight, visited
        visited += 1
        if weight > best_weight:
            best_weight = weight
            best_set = frozenset(chosen)
        if (
            i >= len(vertices)
            or weight + suffix_weight[i] <= best_weight
            or visited > node_budget
        ):
            return
        vertex = vertices[i]
        if vertex not in blocked:
            chosen.append(vertex)
            branch(
                i + 1,
                weight + weights[vertex],
                blocked | adjacency[vertex],
            )
            chosen.pop()
        branch(i + 1, weight, blocked)

    branch(0, 0.0, set())
    return best_set, best_weight


def schedule_interval(
    assignment: PathAssignment,
    interval: int,
    demands: dict[str, float],
    interval_length: float,
    max_columns: int = 500,
    backend: LPBackend | None = None,
) -> IntervalSchedule:
    """Pack one interval's demands into link-feasible sets.

    Parameters
    ----------
    assignment:
        Fixes each message's link set (the conflict structure).
    interval:
        Interval index (for error reporting and the result).
    demands:
        ``message -> required transmission time`` within this interval
        (the allocation LP's ``p_hk`` values).
    interval_length:
        Length of the interval; the packing must fit inside it.
    backend:
        LP solver (see :mod:`repro.solvers`); the environment's best
        available backend by default.  A backend that cannot report
        equality duals stops column generation after the singleton
        round (conservative but valid — see below).

    Raises
    ------
    IntervalSchedulingError
        When the minimal packing makespan exceeds the interval length —
        the failure mode the paper reports for three load points on the
        8x8 torus (Fig. 9).
    """
    messages = sorted(name for name, p in demands.items() if p > LP_TOL)
    if not messages:
        return IntervalSchedule(interval, ())
    if backend is None:
        backend = get_backend()
    adjacency = conflict_graph(assignment, messages)
    p = np.array([demands[m] for m in messages])

    columns: list[frozenset[str]] = [frozenset([m]) for m in messages]
    known = set(columns)

    for _ in range(max_columns):
        matrix = np.zeros((len(messages), len(columns)))
        for j, column in enumerate(columns):
            for i, name in enumerate(messages):
                if name in column:
                    matrix[i, j] = 1.0
        solution = backend.solve(
            LPProblem(
                c=np.ones(len(columns)),
                a_eq=matrix,
                b_eq=p,
                bounds=[(0.0, None)] * len(columns),
            )
        )
        if not solution.success:  # pragma: no cover - singletons keep it feasible
            raise IntervalSchedulingError(interval, float("inf"), interval_length)
        if solution.dual_eq is None:  # pragma: no cover - all backends price
            # Without duals there is no pricing signal; stop with the
            # columns generated so far (the packing stays valid, merely
            # possibly longer than the true LP optimum).
            break
        weights = {
            name: float(solution.dual_eq[i])
            for i, name in enumerate(messages)
        }
        candidate, weight = max_weight_independent_set(adjacency, weights)
        if weight <= 1.0 + LP_TOL or candidate in known:
            break
        columns.append(candidate)
        known.add(candidate)

    durations = [float(solution.x[j]) for j in range(len(columns))]
    total = sum(d for d in durations if d > LP_TOL)
    if exceeds_tolerance(total, interval_length):
        raise IntervalSchedulingError(interval, total, interval_length)
    if total > interval_length:
        # Inside the shared tolerance band the overshoot is solver
        # rounding, not infeasibility: rescale so the packed slots fit
        # the interval exactly (well inside the coverage tolerance
        # downstream).
        scale = interval_length / total
        durations = [d * scale for d in durations]
    slots = tuple(
        FeasibleSetSlot(columns[j], durations[j])
        for j in range(len(columns))
        if durations[j] > LP_TOL
    )
    return IntervalSchedule(interval, slots)


def greedy_schedule_interval(
    assignment: PathAssignment,
    interval: int,
    demands: dict[str, float],
    interval_length: float | None = None,
) -> IntervalSchedule:
    """A largest-demand-first list-scheduling packer.

    A second, independent implementation of interval packing used for
    cross-validation: at every step it forms a link-feasible set greedily
    (largest remaining demand first, adding every non-conflicting
    message) and runs it until its smallest member drains.  Its makespan
    upper-bounds the column-generation LP optimum — a property the test
    suite checks — and unlike the LP it never *under*-reports, so
    ``greedy fits`` implies ``LP fits``.

    ``interval_length`` is accepted for signature symmetry but not
    enforced; callers compare ``total_time`` themselves.
    """
    remaining = {
        name: demand for name, demand in demands.items() if demand > LP_TOL
    }
    messages = sorted(remaining)
    adjacency = conflict_graph(assignment, messages)
    slots: list[FeasibleSetSlot] = []
    while remaining:
        batch: list[str] = []
        blocked: set[str] = set()
        for name in sorted(remaining, key=lambda n: (-remaining[n], n)):
            if name in blocked:
                continue
            batch.append(name)
            blocked |= adjacency[name]
        duration = min(remaining[name] for name in batch)
        slots.append(FeasibleSetSlot(frozenset(batch), duration))
        for name in batch:
            remaining[name] -= duration
            if remaining[name] <= LP_TOL:
                del remaining[name]
    return IntervalSchedule(interval, tuple(slots))


def schedule_intervals(
    assignment: PathAssignment,
    allocation,
    interval_lengths,
    backend: LPBackend | None = None,
) -> dict[int, IntervalSchedule]:
    """Schedule every interval used by one subset's allocation.

    ``allocation`` is an :class:`~repro.core.interval_allocation.
    IntervalAllocation`; returns ``interval index -> IntervalSchedule``.
    """
    if backend is None:
        backend = get_backend()
    schedules: dict[int, IntervalSchedule] = {}
    for k in allocation.intervals_used():
        demands = allocation.per_interval(k)
        schedules[k] = schedule_interval(
            assignment, k, demands, interval_lengths[k], backend=backend
        )
    return schedules
