"""Interval scheduling over link-feasible sets (paper Section 5.3).

Within one interval, the messages with non-zero allocations must be packed
so that every message holds *all* the links of its path simultaneously — a
preemptive multiprocessor-task scheduling problem [BDW86].  A **link
feasible set** (Def. 5.5) is a set of messages that pairwise share no
link; all its members can be transmitted at once.  Associating a duration
``y_j`` with each feasible set, the interval is schedulable iff

    minimise  sum_j y_j
    s.t.      sum_{j : M_h in set_j} y_j = p_hk   for every message h

has an optimum not exceeding the interval length.

The paper notes the variable count can be O(2^N); we solve the LP by
**column generation**: start from singleton sets, and repeatedly price in
the maximum-dual-weight independent set of the conflict graph (found by a
small branch-and-bound) until no set has reduced cost below zero.

A schedule has one such packing LP per active interval, and the LPs are
mutually independent — :func:`schedule_intervals` therefore runs their
column-generation rounds in lockstep and hands each round's LPs to
:meth:`LPBackend.solve_batch`, which (on HiGHS) stitches them into a
single block-diagonal solve.  Sequential and batched runs add the same
columns and reach the same per-interval optima; only solver wall time
differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.assignment import PathAssignment
from repro.core.interval_allocation import IntervalAllocation
from repro.errors import IntervalSchedulingError
from repro.solvers import (
    LP_TOL,
    LPBackend,
    LPProblem,
    LPProblemBuilder,
    LPSolution,
    exceeds_tolerance,
    get_backend,
)

__all__ = [
    "LP_TOL",
    "FeasibleSetSlot",
    "IntervalSchedule",
    "conflict_graph",
    "greedy_schedule_interval",
    "max_weight_independent_set",
    "schedule_interval",
    "schedule_intervals",
]


@dataclass(frozen=True)
class FeasibleSetSlot:
    """One packing slot: the messages transmitted together and for how long."""

    messages: frozenset[str]
    duration: float


@dataclass(frozen=True)
class IntervalSchedule:
    """The packed slots of one (maximal subset, interval) pair.

    ``total_time`` is the packing makespan; scheduling succeeded iff it
    fits the interval length (checked by :func:`schedule_interval`).
    """

    interval: int
    slots: tuple[FeasibleSetSlot, ...]

    @property
    def total_time(self) -> float:
        return sum(slot.duration for slot in self.slots)

    def message_time(self, name: str) -> float:
        """Total transmission time a message receives in this interval."""
        return sum(s.duration for s in self.slots if name in s.messages)


def conflict_graph(
    assignment: PathAssignment,
    messages: list[str],
) -> dict[str, set[str]]:
    """Adjacency of the conflict graph: an edge joins two messages that
    share at least one link (and hence cannot transmit simultaneously)."""
    adjacency: dict[str, set[str]] = {name: set() for name in messages}
    link_sets = {name: set(assignment.links(name)) for name in messages}
    for i, first in enumerate(messages):
        for second in messages[i + 1:]:
            if link_sets[first] & link_sets[second]:
                adjacency[first].add(second)
                adjacency[second].add(first)
    return adjacency


def max_weight_independent_set(
    adjacency: dict[str, set[str]],
    weights: dict[str, float],
    node_budget: int = 100_000,
) -> tuple[frozenset[str], float]:
    """(Near-)maximum-weight independent set by budgeted branch and bound.

    Vertices with non-positive weight are dropped up front (they never
    help).  Exact on the small conflict graphs typical of one interval;
    on large sparse graphs — where the suffix bound prunes poorly and the
    search would go exponential — the ``node_budget`` caps exploration
    and the best set found so far is returned.  Used as a column-
    generation pricer, a non-optimal set only makes the pricing
    conservative (columns stop being added earlier); every generated
    schedule remains valid.
    """
    vertices = sorted(
        (v for v in adjacency if weights.get(v, 0.0) > LP_TOL),
        key=lambda v: -weights[v],
    )
    best_set: frozenset[str] = frozenset()
    best_weight = 0.0
    suffix_weight = [0.0] * (len(vertices) + 1)
    for i in range(len(vertices) - 1, -1, -1):
        suffix_weight[i] = suffix_weight[i + 1] + weights[vertices[i]]

    # Greedy seed: a good incumbent makes the bound prune far earlier.
    seed: list[str] = []
    seed_blocked: set[str] = set()
    seed_weight = 0.0
    for vertex in vertices:
        if vertex not in seed_blocked:
            seed.append(vertex)
            seed_weight += weights[vertex]
            seed_blocked |= adjacency[vertex]
    best_set = frozenset(seed)
    best_weight = seed_weight

    chosen: list[str] = []
    visited = 0

    def branch(i: int, weight: float, blocked: set[str]) -> None:
        nonlocal best_set, best_weight, visited
        visited += 1
        if weight > best_weight:
            best_weight = weight
            best_set = frozenset(chosen)
        if (
            i >= len(vertices)
            or weight + suffix_weight[i] <= best_weight
            or visited > node_budget
        ):
            return
        vertex = vertices[i]
        if vertex not in blocked:
            chosen.append(vertex)
            branch(
                i + 1,
                weight + weights[vertex],
                blocked | adjacency[vertex],
            )
            chosen.pop()
        branch(i + 1, weight, blocked)

    branch(0, 0.0, set())
    return best_set, best_weight


class _PackingState:
    """Column-generation state of one interval's packing LP.

    Holds the incidence matrix as growing COO triplet lists (each
    feasible-set column contributes one entry per member message), so a
    round's LP is assembled by one concatenate + CSR conversion — no
    per-cell Python loop.  :func:`schedule_interval` drives one state to
    convergence; :func:`schedule_intervals` drives many in lockstep so
    each round's LPs can be solved as one batch.
    """

    def __init__(
        self,
        assignment: PathAssignment,
        interval: int,
        demands: Mapping[str, float],
        interval_length: float,
    ) -> None:
        self.interval = interval
        self.interval_length = float(interval_length)
        self.messages = sorted(
            name for name, p in demands.items() if p > LP_TOL
        )
        self._index = {name: i for i, name in enumerate(self.messages)}
        self.adjacency = (
            conflict_graph(assignment, self.messages) if self.messages else {}
        )
        self.p = np.array(
            [demands[m] for m in self.messages], dtype=np.float64
        )
        n = len(self.messages)
        self.columns: list[frozenset[str]] = [
            frozenset([m]) for m in self.messages
        ]
        self.known: set[frozenset[str]] = set(self.columns)
        # Singleton columns form an identity incidence to start from.
        self._rows: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
        self._cols: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
        self._nnz = n
        self.solution: LPSolution | None = None
        self.solved_columns = 0
        self.done = not self.messages

    def problem(self) -> LPProblem:
        """The current restricted master LP (minimise total duration)."""
        num_cols = len(self.columns)
        builder = LPProblemBuilder(num_cols)
        builder.set_objective_vector(np.ones(num_cols))
        builder.add_eq_rows(
            self.p,
            rows=np.concatenate(self._rows),
            cols=np.concatenate(self._cols),
            values=np.ones(self._nnz),
        )
        return builder.build()

    def absorb(self, solution: LPSolution) -> None:
        """Take one round's LP solution; price a new column or finish."""
        if not solution.success:  # pragma: no cover - singletons keep it feasible
            raise IntervalSchedulingError(
                self.interval, float("inf"), self.interval_length
            )
        self.solution = solution
        self.solved_columns = len(self.columns)
        if solution.dual_eq is None:  # pragma: no cover - all backends price
            # Without duals there is no pricing signal; stop with the
            # columns generated so far (the packing stays valid, merely
            # possibly longer than the true LP optimum).
            self.done = True
            return
        weights = {
            name: float(solution.dual_eq[i])
            for i, name in enumerate(self.messages)
        }
        candidate, weight = max_weight_independent_set(
            self.adjacency, weights
        )
        if weight <= 1.0 + LP_TOL or candidate in self.known:
            self.done = True
            return
        j = len(self.columns)
        members = np.fromiter(
            (self._index[name] for name in candidate),
            dtype=np.int64,
            count=len(candidate),
        )
        self.columns.append(candidate)
        self.known.add(candidate)
        self._rows.append(members)
        self._cols.append(np.full(members.size, j, dtype=np.int64))
        self._nnz += members.size

    def finish(self) -> IntervalSchedule:
        """Check the converged packing against the interval length."""
        if not self.messages:
            return IntervalSchedule(self.interval, ())
        assert self.solution is not None
        x = self.solution.x
        durations = [float(x[j]) for j in range(self.solved_columns)]
        total = sum(d for d in durations if d > LP_TOL)
        if exceeds_tolerance(total, self.interval_length):
            raise IntervalSchedulingError(
                self.interval, total, self.interval_length
            )
        if total > self.interval_length:
            # Inside the shared tolerance band the overshoot is solver
            # rounding, not infeasibility: rescale so the packed slots
            # fit the interval exactly (well inside the coverage
            # tolerance downstream).
            scale = self.interval_length / total
            durations = [d * scale for d in durations]
        slots = tuple(
            FeasibleSetSlot(self.columns[j], durations[j])
            for j in range(self.solved_columns)
            if durations[j] > LP_TOL
        )
        return IntervalSchedule(self.interval, slots)


def schedule_interval(
    assignment: PathAssignment,
    interval: int,
    demands: dict[str, float],
    interval_length: float,
    max_columns: int = 500,
    backend: LPBackend | None = None,
) -> IntervalSchedule:
    """Pack one interval's demands into link-feasible sets.

    Parameters
    ----------
    assignment:
        Fixes each message's link set (the conflict structure).
    interval:
        Interval index (for error reporting and the result).
    demands:
        ``message -> required transmission time`` within this interval
        (the allocation LP's ``p_hk`` values).
    interval_length:
        Length of the interval; the packing must fit inside it.
    backend:
        LP solver (see :mod:`repro.solvers`); the environment's best
        available backend by default.  A backend that cannot report
        equality duals stops column generation after the singleton
        round (conservative but valid).

    Raises
    ------
    IntervalSchedulingError
        When the minimal packing makespan exceeds the interval length —
        the failure mode the paper reports for three load points on the
        8x8 torus (Fig. 9).
    """
    state = _PackingState(assignment, interval, demands, interval_length)
    if state.done:
        return IntervalSchedule(interval, ())
    if backend is None:
        backend = get_backend()
    for _ in range(max_columns):
        state.absorb(backend.solve(state.problem()))
        if state.done:
            break
    return state.finish()


def greedy_schedule_interval(
    assignment: PathAssignment,
    interval: int,
    demands: dict[str, float],
    interval_length: float | None = None,
) -> IntervalSchedule:
    """A largest-demand-first list-scheduling packer.

    A second, independent implementation of interval packing used for
    cross-validation: at every step it forms a link-feasible set greedily
    (largest remaining demand first, adding every non-conflicting
    message) and runs it until its smallest member drains.  Its makespan
    upper-bounds the column-generation LP optimum — a property the test
    suite checks — and unlike the LP it never *under*-reports, so
    ``greedy fits`` implies ``LP fits``.

    ``interval_length`` is accepted for signature symmetry but not
    enforced; callers compare ``total_time`` themselves.
    """
    remaining = {
        name: demand for name, demand in demands.items() if demand > LP_TOL
    }
    messages = sorted(remaining)
    adjacency = conflict_graph(assignment, messages)
    slots: list[FeasibleSetSlot] = []
    while remaining:
        batch: list[str] = []
        blocked: set[str] = set()
        for name in sorted(remaining, key=lambda n: (-remaining[n], n)):
            if name in blocked:
                continue
            batch.append(name)
            blocked |= adjacency[name]
        duration = min(remaining[name] for name in batch)
        slots.append(FeasibleSetSlot(frozenset(batch), duration))
        for name in batch:
            remaining[name] -= duration
            if remaining[name] <= LP_TOL:
                del remaining[name]
    return IntervalSchedule(interval, tuple(slots))


def schedule_intervals(
    assignment: PathAssignment,
    allocation: IntervalAllocation,
    interval_lengths: Sequence[float],
    backend: LPBackend | None = None,
    batch: bool = True,
    max_columns: int = 500,
) -> dict[int, IntervalSchedule]:
    """Schedule every interval used by one subset's allocation.

    Returns ``interval index -> IntervalSchedule``.  With ``batch=True``
    (the default) the per-interval column-generation loops run in
    lockstep and each round's independent LPs go through
    :meth:`~repro.solvers.base.LPBackend.solve_batch` — one
    block-diagonal HiGHS solve per round instead of one solve per
    interval.  Intervals drop out of the lockstep as their pricing
    converges; the columns generated, the per-interval optima, and the
    fit-the-interval verdicts are identical to sequential solving.
    """
    if backend is None:
        backend = get_backend()
    intervals = allocation.intervals_used()
    states = {
        k: _PackingState(
            assignment, k, allocation.per_interval(k), interval_lengths[k]
        )
        for k in intervals
    }
    active = [state for state in states.values() if not state.done]
    if not batch or len(active) <= 1:
        for state in active:
            for _ in range(max_columns):
                state.absorb(backend.solve(state.problem()))
                if state.done:
                    break
    else:
        for _ in range(max_columns):
            pending = [state for state in active if not state.done]
            if not pending:
                break
            solutions = backend.solve_batch(
                [state.problem() for state in pending]
            )
            for state, solution in zip(pending, solutions):
                state.absorb(solution)
    return {k: states[k].finish() for k in intervals}
