"""Link, spot, and peak utilisation (paper Definitions 5.1 and 5.2).

- **Link utilisation** ``U_j``: total transmission time of the messages
  carried by link ``L_j``, divided by the total length of the intervals in
  which at least one of them is active.  ``U_j <= 1`` is necessary for the
  link to carry its load.
- **Spot utilisation** ``U_jk``: the paper counts the *no-slack* messages
  using ``L_j`` in interval ``A_k`` (two no-slack messages on one spot is
  a hot-spot no schedule can resolve).  We implement the natural
  sharpening: each message contributes its **forced load** in the
  interval, ``max(0, duration - (active_length - |A_k|))`` — the
  transmission time that cannot fit in the message's other active
  intervals.  For a no-slack message the forced load is exactly ``|A_k|``,
  so the sharpened ``U_jk = forced / |A_k|`` coincides with the paper's
  count on no-slack messages while also catching hot-spots built from
  slack messages confined to a common interval (which Def. 5.1's
  link-wide average provably misses — the paper itself notes ``U_j <= 1``
  "does not imply absence of hot-spots").
- **Peak utilisation** ``U``: the maximum link utilisation, with any spot
  violation (``U_jk > 1``) dominating; path assignment minimises it, and
  scheduled routing is attempted only when ``U <= 1``.

:class:`UtilizationState` supports O(path length x K) incremental updates
so the AssignPaths inner loop can evaluate hundreds of candidate reroutes
cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.assignment import PathAssignment
from repro.core.timebounds import MessageTimeBounds, TimeBoundSet
from repro.topology.base import Link
from repro.topology.routing import links_on_path
from repro.units import EPS

#: Witness kinds for the peak position.
KIND_LINK = "link"
KIND_SPOT = "spot"


def window_demand(bound: MessageTimeBounds, active_length_within: float) -> float:
    """Transmission time that cannot be moved outside a sub-window.

    Given the total active length of a message's windows that falls
    *inside* some region of the frame, the message must transmit at
    least ``duration - (active_length - within)`` time units there —
    its other windows simply cannot absorb more.  This is the single
    arithmetic fact behind both the sharpened spot utilisation
    (:class:`UtilizationState`) and every Hall-type window-density
    certificate in :mod:`repro.diagnose`.
    """
    return max(0.0, bound.duration - (bound.active_length - active_length_within))


def forced_load_matrix(bounds: TimeBoundSet) -> np.ndarray:
    """``forced[i, k]``: load message ``i`` cannot move out of interval ``k``.

    Vectorised :func:`window_demand` over every (message, interval) pair,
    zeroed where the message is inactive.  Shared by the incremental
    :class:`UtilizationState` and the static per-link reports of
    :func:`link_loads` so the two layers can never disagree on what
    "forced" means.
    """
    lengths = np.asarray(bounds.intervals.lengths)
    durations = np.array([bounds.bounds[m].duration for m in bounds.order])
    active_lengths = bounds.activity @ lengths
    forced = np.maximum(
        0.0,
        durations[:, None] - (active_lengths[:, None] - lengths[None, :]),
    )
    forced[~bounds.activity] = 0.0
    return forced


@dataclass(frozen=True)
class LinkLoad:
    """Static utilisation summary of one link under a message→links map."""

    link: Link
    messages: tuple[str, ...]
    total_time: float       # summed transmission durations
    window_time: float      # union length of the messages' active intervals
    spot_ratios: tuple[float, ...]  # forced load / interval length, per interval

    @property
    def utilization(self) -> float:
        """``U_j`` per Definition 5.1 (0 for an unloaded link)."""
        if self.window_time <= EPS:
            return 0.0
        return self.total_time / self.window_time

    @property
    def max_spot(self) -> float:
        """Sharpened ``U_jk`` maximised over intervals."""
        return max(self.spot_ratios, default=0.0)


def link_loads(
    bounds: TimeBoundSet,
    message_links: Mapping[str, Iterable[Link]],
) -> dict[Link, LinkLoad]:
    """Per-link utilisation of an arbitrary ``message → links`` mapping.

    The mapping need not be a full path assignment — the static
    diagnoser feeds it the *forced* links only — but the arithmetic
    (durations, activity windows, forced loads) is identical to what
    :class:`UtilizationState` maintains incrementally, via the shared
    :func:`forced_load_matrix`.
    """
    forced = forced_load_matrix(bounds)
    lengths = np.asarray(bounds.intervals.lengths)
    activity = bounds.activity
    per_link: dict[Link, list[int]] = {}
    for name, links in message_links.items():
        for link in links:
            per_link.setdefault(link, []).append(bounds.index[name])
    loads: dict[Link, LinkLoad] = {}
    for link, rows in sorted(per_link.items()):
        names = tuple(bounds.order[i] for i in rows)
        total = float(sum(bounds.bounds[n].duration for n in names))
        any_active = activity[rows].any(axis=0)
        window = float(lengths[any_active].sum())
        spot = forced[rows].sum(axis=0) / lengths
        loads[link] = LinkLoad(
            link=link,
            messages=names,
            total_time=total,
            window_time=window,
            spot_ratios=tuple(float(s) for s in spot),
        )
    return loads


@dataclass(frozen=True)
class PeakWitness:
    """Where the peak utilisation occurs: a link, or a (link, interval)."""

    value: float
    kind: str
    link: Link
    interval: int  # -1 for link-kind witnesses

    def position(self) -> tuple[str, Link, int]:
        """Hashable location used by the heuristic's repositioning rule."""
        return (self.kind, self.link, self.interval)

    def describe(self) -> str:
        if self.kind == KIND_SPOT:
            return f"spot (link {self.link}, interval {self.interval})"
        return f"link {self.link}"


class UtilizationState:
    """Incrementally maintained utilisation of an evolving assignment."""

    def __init__(self, bounds: TimeBoundSet, assignment: PathAssignment):
        self.bounds = bounds
        self.assignment = assignment
        links = sorted(assignment.topology.links)
        self.link_index: dict[Link, int] = {l: i for i, l in enumerate(links)}
        self.link_list = links
        K = bounds.intervals.count
        L = len(links)
        self.lengths = np.asarray(bounds.intervals.lengths)
        # Per-message constants (independent of the chosen path).
        self.durations = np.array(
            [bounds.bounds[m].duration for m in bounds.order]
        )
        self.no_slack = np.array(
            [bounds.bounds[m].no_slack for m in bounds.order], dtype=bool
        )
        # forced[i, k]: transmission time message i cannot move out of
        # interval k (its duration minus the capacity of its other active
        # intervals); zero when inactive in k.
        self.forced = forced_load_matrix(bounds)
        # Per-message active interval ids (paths are simple, so a
        # message's links are distinct — fancy indexing below is safe).
        self._active_ks = [
            np.flatnonzero(bounds.activity[i])
            for i in range(len(bounds.order))
        ]
        self._rows_memo: dict[tuple[Link, ...], np.ndarray] = {}
        # Per-link state.  window_time and spot_max are incremental
        # caches: recomputing them from the (L x K) matrices on every
        # candidate-reroute evaluation dominated AssignPaths' cost on
        # machines beyond 64 nodes.
        self.total_time = np.zeros(L)            # sum of durations on link
        self.active_count = np.zeros((L, K), dtype=np.int32)
        self.spot_load = np.zeros((L, K))        # summed forced load
        self.window_time = np.zeros(L)           # sum of len_k with count>0
        self.spot_max = np.zeros(L)              # max_k spot_load/len_k
        for name in assignment.messages:
            self._apply(name, assignment.links(name), sign=+1)

    # -- incremental maintenance ----------------------------------------

    def _link_rows(self, links: tuple[Link, ...]) -> np.ndarray:
        """Row ids of a path's links (memoised per link tuple)."""
        rows = self._rows_memo.get(links)
        if rows is None:
            rows = np.fromiter(
                (self.link_index[link] for link in links),
                dtype=np.int64,
                count=len(links),
            )
            self._rows_memo[links] = rows
        return rows

    def _apply(self, name: str, links: tuple[Link, ...], sign: int) -> None:
        if not links:
            return
        i = self.bounds.index[name]
        js = self._link_rows(links)
        ks = self._active_ks[i]
        self.total_time[js] += sign * self.durations[i]
        block = self.active_count[np.ix_(js, ks)] + sign
        self.active_count[np.ix_(js, ks)] = block
        # Window time changes where the count crosses zero.
        if sign > 0:
            self.window_time[js] += (
                self.lengths[ks] * (block == 1)
            ).sum(axis=1)
        else:
            self.window_time[js] -= (
                self.lengths[ks] * (block == 0)
            ).sum(axis=1)
        self.spot_load[js] += sign * self.forced[i]
        self.spot_max[js] = (
            self.spot_load[js] / self.lengths[None, :]
        ).max(axis=1)

    def reroute(self, name: str, new_path: list[int]) -> None:
        """Move a message to a new path, updating utilisation state."""
        self._apply(name, self.assignment.links(name), sign=-1)
        self.assignment.set_path(name, new_path)
        self._apply(name, self.assignment.links(name), sign=+1)

    # -- utilisation queries ------------------------------------------------

    def link_utilizations(self) -> np.ndarray:
        """``U_j`` per link (0 where the link carries no message)."""
        result = np.zeros_like(self.total_time)
        loaded = self.window_time > EPS
        result[loaded] = self.total_time[loaded] / self.window_time[loaded]
        return result

    def spot_ratios(self) -> np.ndarray:
        """Sharpened ``U_jk``: summed forced load over interval length."""
        return self.spot_load / self.lengths[None, :]

    def peak(self) -> PeakWitness:
        """The peak utilisation ``U`` and its location.

        Spot *violations* (ratio > 1, unresolvable hot-spots) dominate the
        link average when at least as large; a spot witness names the
        interval, giving the heuristic a sharper reroute candidate set.
        Otherwise the peak is the largest link utilisation — the quantity
        the paper's Figs. 5/6 plot.
        """
        return self._peak_from(
            self.total_time,
            self.window_time,
            self.spot_max,
            lambda j: self.spot_load[j],
        )

    def _peak_from(self, total_time, window_time, spot_max, spot_row):
        """Peak witness over (possibly hypothetical) per-link arrays."""
        link_u = np.zeros_like(total_time)
        loaded = window_time > EPS
        link_u[loaded] = total_time[loaded] / window_time[loaded]
        j_link = int(np.argmax(link_u))
        best_link = float(link_u[j_link])
        j_spot = int(np.argmax(spot_max))
        best_spot = float(spot_max[j_spot])
        if best_spot >= best_link - EPS and best_spot > 1.0 + EPS:
            k_spot = int(np.argmax(spot_row(j_spot) / self.lengths))
            return PeakWitness(
                best_spot, KIND_SPOT, self.link_list[j_spot], k_spot
            )
        return PeakWitness(best_link, KIND_LINK, self.link_list[j_link], -1)

    def evaluate_reroute(self, name: str, new_path: list[int]) -> PeakWitness:
        """Peak utilisation if ``name`` moved to ``new_path``.

        Pure: no state is mutated and no path validation runs.
        """
        return self.evaluate_reroutes(name, [new_path])[0]

    def evaluate_reroutes(
        self, name: str, paths: list[list[int]]
    ) -> list[PeakWitness]:
        """Peak witnesses for moving ``name`` to each candidate path.

        The AssignPaths inner loop evaluates every alternative path of a
        peak-crossing message; doing the whole pool in one call turns
        per-candidate bookkeeping into a handful of (C x L) array
        operations.  Pure: the candidate per-link quantities are computed
        from signed link deltas against the current state, which is
        never touched.
        """
        if not paths:
            return []
        i = self.bounds.index[name]
        old_links = self.assignment.links(name)
        old_set = set(old_links)
        C = len(paths)
        L = self.total_time.size
        # delta[c, j] is -1 when candidate c leaves link j, +1 when it
        # newly crosses it, 0 otherwise (links shared by both paths).
        delta = np.zeros((C, L), dtype=np.int8)
        for c, path in enumerate(paths):
            new_links = links_on_path(path)
            new_set = set(new_links)
            delta[
                c,
                self._link_rows(
                    tuple(l for l in old_links if l not in new_set)
                ),
            ] = -1
            delta[
                c,
                self._link_rows(
                    tuple(l for l in new_links if l not in old_set)
                ),
            ] = 1
        added = delta > 0
        removed = delta < 0

        # Adding/removing one message changes each link's window time and
        # spot maximum in only two possible ways, so both variants are
        # precomputed per link and selected by the delta sign.
        ks = self._active_ks[i]
        lengths_k = self.lengths[ks]
        counts_k = self.active_count[:, ks]
        gained_if_added = (lengths_k[None, :] * (counts_k == 0)).sum(axis=1)
        lost_if_removed = (lengths_k[None, :] * (counts_k == 1)).sum(axis=1)
        ratios = self.lengths[None, :]
        spot_if_added = (
            (self.spot_load + self.forced[i][None, :]) / ratios
        ).max(axis=1)
        spot_if_removed = (
            (self.spot_load - self.forced[i][None, :]) / ratios
        ).max(axis=1)

        total = self.total_time[None, :] + delta * self.durations[i]
        window = (
            self.window_time[None, :]
            + np.where(added, gained_if_added[None, :], 0.0)
            - np.where(removed, lost_if_removed[None, :], 0.0)
        )
        spot_max = np.where(
            added,
            spot_if_added[None, :],
            np.where(removed, spot_if_removed[None, :], self.spot_max[None, :]),
        )

        link_u = np.zeros_like(total)
        loaded = window > EPS
        np.divide(total, window, out=link_u, where=loaded)
        j_link = link_u.argmax(axis=1)
        best_link = link_u[np.arange(C), j_link]
        j_spot = spot_max.argmax(axis=1)
        best_spot = spot_max[np.arange(C), j_spot]

        witnesses: list[PeakWitness] = []
        for c in range(C):
            if (
                best_spot[c] >= best_link[c] - EPS
                and best_spot[c] > 1.0 + EPS
            ):
                j = int(j_spot[c])
                row = self.spot_load[j] + delta[c, j] * self.forced[i]
                k_spot = int(np.argmax(row / self.lengths))
                witnesses.append(
                    PeakWitness(
                        float(best_spot[c]), KIND_SPOT, self.link_list[j],
                        k_spot,
                    )
                )
            else:
                witnesses.append(
                    PeakWitness(
                        float(best_link[c]), KIND_LINK,
                        self.link_list[int(j_link[c])], -1,
                    )
                )
        return witnesses


@dataclass(frozen=True)
class UtilizationReport:
    """Frozen summary of an assignment's utilisation."""

    peak: float
    witness_kind: str
    witness_link: Link
    witness_interval: int
    link_utilizations: dict[Link, float]
    max_spot: float

    @property
    def feasible(self) -> bool:
        """``U <= 1`` and no spot violation: scheduled routing may be
        attempted (Section 5.1)."""
        return self.peak <= 1.0 + EPS and self.max_spot <= 1.0 + EPS


def utilization_report(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
) -> UtilizationReport:
    """Compute the full utilisation report for a fixed assignment."""
    state = UtilizationState(bounds, assignment)
    witness = state.peak()
    link_u = state.link_utilizations()
    per_link = {
        link: float(link_u[j])
        for link, j in state.link_index.items()
        if link_u[j] > EPS
    }
    ratios = state.spot_ratios()
    return UtilizationReport(
        peak=witness.value,
        witness_kind=witness.kind,
        witness_link=witness.link,
        witness_interval=witness.interval,
        link_utilizations=per_link,
        max_spot=float(ratios.max()) if ratios.size else 0.0,
    )
