"""Replay of a scheduled-routing solution on the discrete-event kernel.

The paper *argues* that independently executed switching schedules are
contention-free and meet every deadline; this executor *machine-checks*
it.  It replays ``invocations`` periods: tasks run at their static ASAP
instants, and every transmission slot claims its links as exclusive
resources at its absolute time.  Any claim that is not granted instantly
is a contention violation and aborts the run; any delivery completing
after its destination task's start instant is a deadline violation.

A successful replay yields a :class:`~repro.results.RunResult` with
``technique="scheduled"`` whose output intervals are exactly ``tau_in``
— the constant throughput the paper guarantees.  Pass a
:class:`~repro.results.RunConfig` carrying a
:class:`~repro.trace.tracer.TraceRecorder` to capture the replay as a
structured trace: ``slot`` spans for every scheduled transmission
window, ``link`` occupancy spans for every grant, ``task`` spans per
invocation, and ``run`` completion instants.

Fault injection
---------------
``run(fault_trace=...)`` replays the same schedule on a *breaking*
machine: a :class:`~repro.faults.injection.FaultInjector` drives link
outages from the trace, and per-node clock drift shifts the transmission
windows of the drifted node's outgoing messages.  A slot claim on a
failed link raises :class:`~repro.errors.LinkFailedError` (the detection
event the repair engine consumes); drift-induced contention or deadline
misses raise the other :class:`~repro.errors.FaultInjectionError`
subclasses instead of :class:`~repro.errors.ScheduleValidationError`,
because the schedule is healthy — the machine is not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.core.compiler import ScheduledRouting
from repro.errors import (
    FaultedDeadlineError,
    FaultInjectionError,
    LinkFailedError,
    ScheduleValidationError,
)
from repro.results import RunConfig, RunResult, resolve_run_config
from repro.sim import Environment, Monitor, Resource
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Link, Topology
from repro.trace.tracer import TraceRecorder
from repro.units import EPS

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.models import FaultTrace


class ScheduledRoutingExecutor:
    """Runs a compiled schedule and verifies its guarantees dynamically."""

    def __init__(
        self,
        routing: ScheduledRouting,
        timing: TFGTiming,
        topology: Topology,
        allocation: Mapping[str, int],
    ):
        self.routing = routing
        self.timing = timing
        self.topology = topology
        self.allocation = dict(allocation)
        self.tau_in = routing.tau_in
        self._asap = timing.asap_schedule()

    # -- frame -> absolute time mapping --------------------------------------

    def absolute_slots(
        self, message_name: str, invocation: int
    ) -> list[tuple[float, float]]:
        """Absolute ``(start, end)`` occurrences of a message's slots in one
        invocation.

        A frame slot at ``s`` maps into the invocation's window starting at
        the absolute release ``j * tau_in + t_f(src)``: slots at or after
        the wrapped release come ``s - r`` into the window; earlier slots
        belong to the wrapped head and come ``(tau_in - r) + s`` in.
        """
        bound = self.routing.bounds.bounds[message_name]
        message = self.timing.tfg.message(message_name)
        abs_release = invocation * self.tau_in + self._asap[message.src][1]
        r = bound.release
        occurrences = []
        for slot in self.routing.schedule.slots[message_name]:
            if slot.start >= r - EPS:
                offset = slot.start - r
            else:
                offset = (self.tau_in - r) + slot.start
            start = abs_release + offset
            occurrences.append((start, start + slot.duration))
        return occurrences

    def _drift_shift(self, message_name: str, fault_trace) -> float:
        """Clock-drift shift of a message's transmission windows.

        The source CP's clock dictates when the flight enters the network,
        so the whole clear-path window shifts by the source node's drift
        offset.  Zero without a trace or for undrifted nodes.
        """
        if fault_trace is None:
            return 0.0
        message = self.timing.tfg.message(message_name)
        return fault_trace.drift_of(self.allocation[message.src])

    # -- execution ------------------------------------------------------

    def run(
        self,
        invocations: int | None = None,
        warmup: int | None = None,
        fault_trace: "FaultTrace | None" = None,
        *,
        config: RunConfig | None = None,
    ) -> RunResult:
        """Replay the schedule for ``config.invocations`` periods.

        Accepts a :class:`~repro.results.RunConfig` (the unified run
        API); the ``invocations``/``warmup``/``fault_trace`` keywords
        are retained as a thin shim and, when given, override the
        corresponding config fields.

        Raises :class:`~repro.errors.ScheduleValidationError` if the
        replay observes link contention or a missed delivery deadline on a
        healthy machine, and the applicable
        :class:`~repro.errors.FaultInjectionError` subclass when an
        injected fault (``config.fault_trace``) causes the violation.
        """
        config = resolve_run_config(
            config,
            invocations=invocations,
            warmup=warmup,
            fault_trace=fault_trace,
        )
        invocations, warmup = config.invocations, config.warmup
        fault_trace, tracer = config.fault_trace, config.tracer
        if invocations - warmup < 4:
            raise ScheduleValidationError(
                f"need >= 4 measured invocations, got {invocations} with "
                f"warmup={warmup}"
            )
        env = Environment(tracer=tracer)
        links: dict[Link, Resource] = {
            link: Resource(env, capacity=1, name=str(link))
            for link in self.topology.links
        }
        injector = None
        if fault_trace is not None:
            from repro.faults.injection import FaultInjector

            injector = FaultInjector(env, links, fault_trace, self.topology)
        link_busy: dict[Link, float] = {}
        completions = Monitor("completions")
        outputs = [t.name for t in self.timing.tfg.output_tasks]
        pending = {j: len(outputs) for j in range(invocations)}

        def transmission(message_name: str, start: float, end: float):
            slot_links = None
            for slot in self.routing.schedule.slots[message_name]:
                slot_links = slot.links  # all slots share the message path
                break
            yield env.timeout(start - env.now if start > env.now else 0.0)
            held = []
            for link in slot_links or ():
                if links[link].failed:
                    if tracer.enabled:
                        tracer.instant(
                            "fault",
                            "detection",
                            env.now,
                            track=str(link),
                            message=message_name,
                        )
                    raise LinkFailedError(link, message_name, env.now)
                request = links[link].request(owner=message_name)
                yield request
                if request.grant_time - request.request_time > EPS:
                    if fault_trace is not None:
                        raise FaultInjectionError(
                            f"contention on {link} while transmitting "
                            f"{message_name!r} at t={env.now:.6f} under "
                            "injected faults (drift margin exceeded?)",
                            detection_time=env.now,
                        )
                    raise ScheduleValidationError(
                        f"contention on {link} while transmitting "
                        f"{message_name!r} at t={env.now:.6f}"
                    )
                held.append((link, request))
            yield env.timeout(end - env.now)
            for link, request in held:
                links[link].release(request)
                link_busy[link] = link_busy.get(link, 0.0) + (end - start)

        def task_run(task_name: str, invocation: int):
            start, finish = self._asap[task_name]
            yield env.timeout(invocation * self.tau_in + start - env.now)
            # Deliveries due before this start are asserted statically below.
            run_start = env.now
            yield env.timeout(finish - start)
            if tracer.enabled:
                tracer.span(
                    "task",
                    task_name,
                    run_start,
                    env.now,
                    track=f"node{self.allocation[task_name]}",
                    invocation=invocation,
                )
            if task_name in outputs:
                pending[invocation] -= 1
                if pending[invocation] == 0:
                    completions.record(env.now, invocation)
                    if tracer.enabled:
                        tracer.instant(
                            "run",
                            "completion",
                            env.now,
                            track="outputs",
                            invocation=invocation,
                        )

        # Static deadline assertion: every routed message's last absolute
        # slot (shifted by any injected source-clock drift) must land
        # before its destination task's start.
        for message in self.timing.tfg.messages:
            if message.name not in self.routing.schedule.slots:
                continue  # local message: delivered in memory at source finish
            shift = self._drift_shift(message.name, fault_trace)
            dst_start = self._asap[message.dst][0]
            for j in range(invocations):
                last_end = max(end for _, end in self.absolute_slots(message.name, j))
                due = j * self.tau_in + dst_start
                if last_end + shift > due + 1e-6:
                    if shift != 0.0:
                        raise FaultedDeadlineError(
                            message.name, due, last_end + shift
                        )
                    raise ScheduleValidationError(
                        f"message {message.name!r} invocation {j}: delivery "
                        f"at {last_end:.6f} misses destination start {due:.6f}"
                    )

        for j in range(invocations):
            for task in self.timing.tfg.tasks:
                env.process(task_run(task.name, j))
        # Spawn transmissions sorted by absolute start so timeout waits are
        # non-negative relative to spawn order.
        flights = []
        for name in self.routing.schedule.slots:
            shift = self._drift_shift(name, fault_trace)
            for j in range(invocations):
                for start, end in self.absolute_slots(name, j):
                    flights.append((max(start + shift, 0.0), end + shift, name, j))
        for start, end, name, j in sorted(flights):
            if tracer.enabled:
                # The *compiled* transmission window; the link-occupancy
                # spans emitted by the Resource record the *replayed* one
                # (the SR guarantee is that the two coincide).
                tracer.span(
                    "slot",
                    name,
                    start,
                    end,
                    track=f"msg {name}",
                    invocation=j,
                )
            env.process(transmission(name, start, end))

        env.run()

        if len(completions) != invocations:  # pragma: no cover - defensive
            raise ScheduleValidationError(
                f"{invocations - len(completions)} invocations never completed"
            )
        completion_times = tuple(time for time, _ in completions)
        extra = {
            "commands": self.routing.schedule.num_commands,
            "link_busy": link_busy,
            "invocations": invocations,
        }
        if injector is not None:
            extra["fault_events"] = injector.events
        return RunResult(
            tau_in=self.tau_in,
            completion_times=completion_times,
            warmup=warmup,
            critical_path_length=self.timing.critical_path().length,
            technique="scheduled",
            extra=extra,
            trace=tracer if isinstance(tracer, TraceRecorder) else None,
        )
