"""Replay of a scheduled-routing solution on the discrete-event kernel.

The paper *argues* that independently executed switching schedules are
contention-free and meet every deadline; this executor *machine-checks*
it.  It replays ``invocations`` periods: tasks run at their static ASAP
instants, and every transmission slot claims its links as exclusive
resources at its absolute time.  Any claim that is not granted instantly
is a contention violation and aborts the run; any delivery completing
after its destination task's start instant is a deadline violation.

A successful replay yields a :class:`~repro.wormhole.results.
PipelineRunResult` with ``technique="scheduled"`` whose output intervals
are exactly ``tau_in`` — the constant throughput the paper guarantees.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.compiler import ScheduledRouting
from repro.errors import ScheduleValidationError
from repro.sim import Environment, Resource
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Link, Topology
from repro.units import EPS
from repro.wormhole.results import PipelineRunResult


class ScheduledRoutingExecutor:
    """Runs a compiled schedule and verifies its guarantees dynamically."""

    def __init__(
        self,
        routing: ScheduledRouting,
        timing: TFGTiming,
        topology: Topology,
        allocation: Mapping[str, int],
    ):
        self.routing = routing
        self.timing = timing
        self.topology = topology
        self.allocation = dict(allocation)
        self.tau_in = routing.tau_in
        self._asap = timing.asap_schedule()

    # -- frame -> absolute time mapping --------------------------------------

    def absolute_slots(
        self, message_name: str, invocation: int
    ) -> list[tuple[float, float]]:
        """Absolute ``(start, end)`` occurrences of a message's slots in one
        invocation.

        A frame slot at ``s`` maps into the invocation's window starting at
        the absolute release ``j * tau_in + t_f(src)``: slots at or after
        the wrapped release come ``s - r`` into the window; earlier slots
        belong to the wrapped head and come ``(tau_in - r) + s`` in.
        """
        bound = self.routing.bounds.bounds[message_name]
        message = self.timing.tfg.message(message_name)
        abs_release = invocation * self.tau_in + self._asap[message.src][1]
        r = bound.release
        occurrences = []
        for slot in self.routing.schedule.slots[message_name]:
            if slot.start >= r - EPS:
                offset = slot.start - r
            else:
                offset = (self.tau_in - r) + slot.start
            start = abs_release + offset
            occurrences.append((start, start + slot.duration))
        return occurrences

    # -- execution ------------------------------------------------------

    def run(self, invocations: int = 40, warmup: int = 8) -> PipelineRunResult:
        """Replay the schedule for ``invocations`` periods.

        Raises :class:`~repro.errors.ScheduleValidationError` if the
        replay observes link contention or a missed delivery deadline.
        """
        if invocations - warmup < 4:
            raise ScheduleValidationError(
                f"need >= 4 measured invocations, got {invocations} with "
                f"warmup={warmup}"
            )
        env = Environment()
        links: dict[Link, Resource] = {
            link: Resource(env, capacity=1, name=str(link))
            for link in self.topology.links
        }
        link_busy: dict[Link, float] = {}
        completions: dict[int, float] = {}
        outputs = [t.name for t in self.timing.tfg.output_tasks]
        pending = {j: len(outputs) for j in range(invocations)}

        def transmission(message_name: str, start: float, end: float):
            slot_links = None
            for slot in self.routing.schedule.slots[message_name]:
                slot_links = slot.links  # all slots share the message path
                break
            yield env.timeout(start - env.now if start > env.now else 0.0)
            held = []
            for link in slot_links or ():
                request = links[link].request(owner=message_name)
                yield request
                if request.grant_time - request.request_time > EPS:
                    raise ScheduleValidationError(
                        f"contention on {link} while transmitting "
                        f"{message_name!r} at t={env.now:.6f}"
                    )
                held.append((link, request))
            yield env.timeout(end - env.now)
            for link, request in held:
                links[link].release(request)
                link_busy[link] = link_busy.get(link, 0.0) + (end - start)

        def task_run(task_name: str, invocation: int):
            start, finish = self._asap[task_name]
            yield env.timeout(invocation * self.tau_in + start - env.now)
            # Deliveries due before this start are asserted statically below.
            yield env.timeout(finish - start)
            if task_name in outputs:
                pending[invocation] -= 1
                if pending[invocation] == 0:
                    completions[invocation] = env.now

        # Static deadline assertion: every routed message's last absolute
        # slot must land before its destination task's start.
        for message in self.timing.tfg.messages:
            if message.name not in self.routing.schedule.slots:
                continue  # local message: delivered in memory at source finish
            dst_start = self._asap[message.dst][0]
            for j in range(invocations):
                last_end = max(end for _, end in self.absolute_slots(message.name, j))
                due = j * self.tau_in + dst_start
                if last_end > due + 1e-6:
                    raise ScheduleValidationError(
                        f"message {message.name!r} invocation {j}: delivery "
                        f"at {last_end:.6f} misses destination start {due:.6f}"
                    )

        for j in range(invocations):
            for task in self.timing.tfg.tasks:
                env.process(task_run(task.name, j))
        # Spawn transmissions sorted by absolute start so timeout waits are
        # non-negative relative to spawn order.
        flights = []
        for name in self.routing.schedule.slots:
            for j in range(invocations):
                for start, end in self.absolute_slots(name, j):
                    flights.append((start, end, name))
        for start, end, name in sorted(flights):
            env.process(transmission(name, start, end))

        env.run()

        if len(completions) != invocations:  # pragma: no cover - defensive
            raise ScheduleValidationError(
                f"{invocations - len(completions)} invocations never completed"
            )
        completion_times = tuple(completions[j] for j in range(invocations))
        return PipelineRunResult(
            tau_in=self.tau_in,
            completion_times=completion_times,
            warmup=warmup,
            critical_path_length=self.timing.critical_path().length,
            technique="scheduled",
            extra={
                "commands": self.routing.schedule.num_commands,
                "link_busy": link_busy,
                "invocations": invocations,
            },
        )
