"""One-call verification of a scheduled-routing solution.

Bundles the library's independent checks of a communication schedule —
useful after loading a schedule from disk or after any manual surgery on
one:

1. **conformance analysis** — every SR invariant re-derived from
   scratch on the serialized schedule alone, independent of compiler
   internals (:func:`repro.check.analyzer.analyze_schedule`);
2. **static validation** — slot coverage, window containment, link
   exclusivity, node-schedule/slot consistency
   (:meth:`~repro.core.switching.CommunicationSchedule.validate`);
3. **hardware replay** — every node's command stream driven through the
   crossbar model (:func:`~repro.cp.processor.replay_schedule`);
4. **dynamic replay** — the full pipelined execution re-run on the
   discrete-event kernel, asserting contention-freedom, deadlines and
   constant throughput
   (:class:`~repro.core.executor.ScheduledRoutingExecutor`).

See ``docs/verification.md`` for how the tiers complement each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.compiler import ScheduledRouting
from repro.core.executor import ScheduledRoutingExecutor
from repro.cp import replay_schedule
from repro.errors import ScheduleValidationError
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Topology

#: The executor needs this many measured (post-warmup) invocations for
#: its steady-state throughput and output-consistency checks.
MIN_MEASURED_INVOCATIONS = 4


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of the four-stage verification (raises before returning
    on any failure, so a returned report certifies success)."""

    commands_replayed: int
    invocations_executed: int
    mean_normalized_throughput: float
    output_inconsistency: bool
    analyzer_findings: int


def verify_schedule(
    routing: ScheduledRouting,
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    invocations: int = 24,
    warmup: int = 4,
) -> VerificationReport:
    """Run every check; raise
    :class:`~repro.errors.ScheduleValidationError` on the first failure.

    ``invocations`` must exceed ``warmup`` by at least
    :data:`MIN_MEASURED_INVOCATIONS` — the dynamic replay measures
    steady-state behaviour over the post-warmup window and cannot
    certify anything from fewer points.  Violations raise
    :class:`ValueError` here, at the boundary, instead of surfacing as a
    replay failure deep inside the executor.

    ``invocations_executed`` in the returned report counts what the
    executor actually ran (including warm-up), not what was requested.

    >>> # see tests/unit/test_core_verify.py for executable examples
    """
    if invocations - warmup < MIN_MEASURED_INVOCATIONS:
        raise ValueError(
            f"invocations ({invocations}) must exceed warmup ({warmup}) by "
            f"at least {MIN_MEASURED_INVOCATIONS} measured invocations"
        )
    from repro.check.analyzer import analyze_schedule

    conformance = analyze_schedule(
        routing.schedule, topology, timing=timing, allocation=allocation
    )
    if not conformance.ok:
        raise ScheduleValidationError(
            f"conformance analyzer flagged the schedule: "
            f"{conformance.summary()}"
        )
    routing.schedule.validate()
    commands = replay_schedule(routing.schedule, topology)
    executor = ScheduledRoutingExecutor(routing, timing, topology, allocation)
    result = executor.run(invocations=invocations, warmup=warmup)
    return VerificationReport(
        commands_replayed=commands,
        invocations_executed=len(result.completion_times),
        mean_normalized_throughput=result.throughput_stats().mean,
        output_inconsistency=result.has_oi(),
        analyzer_findings=len(conformance.findings),
    )
