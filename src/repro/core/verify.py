"""One-call verification of a scheduled-routing solution.

Bundles the library's three independent checks of a communication
schedule — useful after loading a schedule from disk or after any manual
surgery on one:

1. **static validation** — slot coverage, window containment, link
   exclusivity, node-schedule/slot consistency
   (:meth:`~repro.core.switching.CommunicationSchedule.validate`);
2. **hardware replay** — every node's command stream driven through the
   crossbar model (:func:`~repro.cp.processor.replay_schedule`);
3. **dynamic replay** — the full pipelined execution re-run on the
   discrete-event kernel, asserting contention-freedom, deadlines and
   constant throughput
   (:class:`~repro.core.executor.ScheduledRoutingExecutor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.compiler import ScheduledRouting
from repro.core.executor import ScheduledRoutingExecutor
from repro.cp import replay_schedule
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Topology


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of the three-stage verification (raises before returning
    on any failure, so a returned report certifies success)."""

    commands_replayed: int
    invocations_executed: int
    mean_normalized_throughput: float
    output_inconsistency: bool


def verify_schedule(
    routing: ScheduledRouting,
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    invocations: int = 24,
    warmup: int = 4,
) -> VerificationReport:
    """Run every check; raise
    :class:`~repro.errors.ScheduleValidationError` on the first failure.

    >>> # see tests/unit/test_core_verify.py for executable examples
    """
    routing.schedule.validate()
    commands = replay_schedule(routing.schedule, topology)
    executor = ScheduledRoutingExecutor(routing, timing, topology, allocation)
    result = executor.run(invocations=invocations, warmup=warmup)
    return VerificationReport(
        commands_replayed=commands,
        invocations_executed=invocations,
        mean_normalized_throughput=result.throughput_stats().mean,
        output_inconsistency=result.has_oi(),
    )
