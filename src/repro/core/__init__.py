"""Scheduled routing (SR) — the paper's primary contribution.

SR integrates the task specification with flow control: from the TFG, the
allocation, and the input period it computes, at compile time, a
communication schedule Omega — one switching schedule per node — whose
independent execution gives every message a clear source-to-destination
path inside its timing window.  The result is contention-free,
deadlock-free routing with guaranteed constant throughput.

The compile pipeline (paper Fig. 3):

1. :mod:`~repro.core.timebounds` — release times and deadlines per message
   on the canonical frame ``[0, tau_in)``; interval decomposition and the
   message activity matrix ``A`` (Section 4 / 5.1),
2. :mod:`~repro.core.assignment` + :mod:`~repro.core.utilization` — path
   assignment matrix ``B``, link/spot/peak utilisation (Defs. 5.1-5.2),
3. :mod:`~repro.core.assign_paths` — the AssignPaths iterative-improvement
   heuristic minimising peak utilisation ``U`` (Fig. 4),
4. :mod:`~repro.core.subsets` — maximal related subsets (Defs. 5.3-5.4),
5. :mod:`~repro.core.interval_allocation` — the message-interval
   allocation LP (constraints (3)-(4), Section 5.2),
6. :mod:`~repro.core.interval_scheduling` — preemptive packing of each
   interval into link-feasible sets (Def. 5.5, Section 5.3),
7. :mod:`~repro.core.switching` — node switching schedules omega_i and the
   communication schedule Omega (Section 5.4),
8. :mod:`~repro.core.executor` — replay of Omega on the DES kernel,
   machine-checking contention-freedom and constant throughput.

:func:`~repro.core.compiler.compile_schedule` runs the whole pipeline.
"""

from repro.core.assign_paths import AssignPathsResult, assign_paths, lsd_assignment
from repro.core.assignment import PathAssignment
from repro.core.compiler import CompilerConfig, ScheduledRouting, compile_schedule
from repro.core.executor import ScheduledRoutingExecutor
from repro.core.interval_allocation import IntervalAllocation, allocate_intervals
from repro.core.pipeline import (
    CompilationContext,
    CompilerStage,
    compile_stages,
    run_stages,
)
from repro.core.interval_scheduling import IntervalSchedule, schedule_intervals
from repro.core.subsets import maximal_subsets
from repro.core.switching import (
    CommunicationSchedule,
    NodeSchedule,
    SwitchCommand,
    TransmissionSlot,
)
from repro.core.timebounds import IntervalSet, MessageTimeBounds, TimeBoundSet
from repro.core.utilization import UtilizationReport, utilization_report

__all__ = [
    "AssignPathsResult",
    "CommunicationSchedule",
    "CompilationContext",
    "CompilerConfig",
    "CompilerStage",
    "IntervalAllocation",
    "IntervalSchedule",
    "IntervalSet",
    "MessageTimeBounds",
    "NodeSchedule",
    "PathAssignment",
    "ScheduledRouting",
    "ScheduledRoutingExecutor",
    "SwitchCommand",
    "TimeBoundSet",
    "TransmissionSlot",
    "UtilizationReport",
    "allocate_intervals",
    "assign_paths",
    "compile_schedule",
    "compile_stages",
    "lsd_assignment",
    "maximal_subsets",
    "run_stages",
    "schedule_intervals",
    "utilization_report",
]
