"""The end-to-end scheduled-routing compiler (paper Fig. 3).

``compile_schedule`` chains every stage: time bounds -> path assignment ->
peak-utilisation gate -> maximal subsets -> message-interval allocation ->
interval scheduling -> node switching schedules, and machine-validates the
result.  Failures raise the stage-specific
:class:`~repro.errors.SchedulingError` subclasses; the compiler can retry
the downstream stages under fresh path-assignment seeds (the feedback
between steps the paper's concluding remarks propose).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.assign_paths import assign_paths, lsd_assignment
from repro.core.assignment import PathAssignment
from repro.core.interval_allocation import IntervalAllocation, allocate_intervals
from repro.core.interval_scheduling import schedule_intervals
from repro.core.subsets import maximal_subsets
from repro.core.switching import CommunicationSchedule, build_schedule
from repro.core.timebounds import TimeBoundSet, compute_time_bounds
from repro.core.utilization import UtilizationReport, utilization_report
from repro.errors import (
    IntervalSchedulingError,
    SchedulingError,
    UtilizationExceededError,
)
from repro.mapping.allocation import validate_allocation
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Topology
from repro.trace.profile import NULL_PROFILER, CompileProfiler


@dataclass(frozen=True)
class CompilerConfig:
    """Knobs of the scheduled-routing compiler.

    Attributes
    ----------
    seed:
        Base seed for the path-assignment heuristic.
    use_assign_paths:
        When False, messages stay on their LSD->MSD routes (the Fig. 5/6
        baseline); the heuristic is skipped.
    max_paths, max_restarts:
        Forwarded to :func:`~repro.core.assign_paths.assign_paths`.
    retries:
        Additional full-pipeline attempts under different assignment seeds
        when a downstream LP fails.  Ignored for LSD->MSD assignments,
        which are deterministic.
    feedback_rounds:
        Per-subset allocation <-> interval-scheduling feedback iterations
        (the paper's Fig. 3 feedback arrow): when an interval proves
        unpackable, the allocation LP is re-solved with the congested
        interval's total demand capped below the overflow, pushing work
        into the message windows' other intervals.
    sync_margin:
        CP clock-synchronization guard added to every message's
        transmission requirement (concluding-remarks extension), in
        microseconds.
    """

    seed: int = 0
    use_assign_paths: bool = True
    max_paths: int = 48
    max_restarts: int = 4
    retries: int = 2
    feedback_rounds: int = 2
    sync_margin: float = 0.0


@dataclass
class ScheduledRouting:
    """A successfully compiled scheduled-routing solution.

    Carries the communication schedule Omega plus every intermediate
    artifact an experiment may want to report.
    """

    schedule: CommunicationSchedule
    utilization: UtilizationReport
    bounds: TimeBoundSet
    subsets: list[tuple[str, ...]]
    allocations: list[IntervalAllocation]
    tau_in: float
    local_messages: tuple[str, ...]
    attempts: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def paths(self) -> dict[str, tuple[int, ...]]:
        """Final message -> node-path mapping."""
        return dict(self.schedule.assignment)

    def __repr__(self) -> str:
        return (
            f"<ScheduledRouting tau_in={self.tau_in:.3f} "
            f"U={self.utilization.peak:.3f} "
            f"commands={self.schedule.num_commands}>"
        )


def routed_and_local_messages(
    timing: TFGTiming,
    allocation: Mapping[str, int],
) -> tuple[list[str], list[str]]:
    """Split messages into network-traversing and node-local ones."""
    routed: list[str] = []
    local: list[str] = []
    for message in timing.tfg.messages:
        if allocation[message.src] == allocation[message.dst]:
            local.append(message.name)
        else:
            routed.append(message.name)
    return routed, local


def compile_schedule(
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    tau_in: float,
    config: CompilerConfig | None = None,
    profiler: CompileProfiler | None = None,
) -> ScheduledRouting:
    """Compile a contention-free communication schedule for one period.

    Pass a :class:`~repro.trace.profile.CompileProfiler` to record
    per-stage wall time and problem sizes; the resulting
    :class:`~repro.trace.profile.CompileProfile` also lands in the
    returned routing's ``extra["compile_profile"]``.

    Raises the stage-specific :class:`~repro.errors.SchedulingError`
    subclass of the *last* failed attempt when no attempt succeeds:
    :class:`~repro.errors.UtilizationExceededError` when the requirements
    exceed link capacity, :class:`~repro.errors.IntervalAllocationError`
    or :class:`~repro.errors.IntervalSchedulingError` when an LP stage
    fails.
    """
    config = config or CompilerConfig()
    profiler = profiler if profiler is not None else NULL_PROFILER
    validate_allocation(timing.tfg, topology, allocation, exclusive=False)
    routed, local = routed_and_local_messages(timing, allocation)
    with profiler.stage(
        "time-bounds", messages=len(routed), local_messages=len(local)
    ):
        bounds = compute_time_bounds(
            timing, tau_in, routed, extra_duration=config.sync_margin
        )
    endpoints = {
        name: (
            allocation[timing.tfg.message(name).src],
            allocation[timing.tfg.message(name).dst],
        )
        for name in routed
    }

    attempts = 1 + (config.retries if config.use_assign_paths else 0)
    last_error: SchedulingError | None = None
    for attempt in range(attempts):
        try:
            routing = _attempt(
                bounds, topology, endpoints, tau_in, local, config,
                seed=config.seed + attempt,
                attempt_number=attempt + 1,
                profiler=profiler,
            )
        except SchedulingError as error:
            last_error = error
        else:
            if profiler is not NULL_PROFILER:
                routing.extra["compile_profile"] = profiler.profile
            return routing
    assert last_error is not None
    raise last_error


def _attempt(
    bounds: TimeBoundSet,
    topology: Topology,
    endpoints: Mapping[str, tuple[int, int]],
    tau_in: float,
    local: list[str],
    config: CompilerConfig,
    seed: int,
    attempt_number: int,
    profiler: CompileProfiler | None = None,
) -> ScheduledRouting:
    """One full pipeline attempt under one assignment seed."""
    profiler = profiler if profiler is not None else NULL_PROFILER
    if config.use_assign_paths:
        with profiler.stage(
            "assign-paths",
            attempt=attempt_number,
            messages=len(endpoints),
            max_paths=config.max_paths,
        ):
            heuristic = assign_paths(
                bounds,
                topology,
                endpoints,
                seed=seed,
                max_paths=config.max_paths,
                max_restarts=config.max_restarts,
            )
        assignment: PathAssignment = heuristic.assignment
        report = heuristic.report
    else:
        with profiler.stage(
            "assign-paths(lsd)", attempt=attempt_number, messages=len(endpoints)
        ):
            assignment = lsd_assignment(topology, endpoints)
            report = utilization_report(bounds, assignment)

    return schedule_from_assignment(
        bounds, assignment, report, tau_in, local, config,
        attempt_number=attempt_number,
        profiler=profiler,
    )


def schedule_from_assignment(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    report: UtilizationReport,
    tau_in: float,
    local: list[str],
    config: CompilerConfig,
    attempt_number: int = 1,
    profiler: CompileProfiler | None = None,
) -> ScheduledRouting:
    """Run the post-assignment compiler stages for a fixed path assignment.

    This is the downstream half of :func:`compile_schedule` — utilisation
    gate, maximal subsets, interval allocation/scheduling with feedback,
    and Omega assembly.  The schedule-repair engine
    (:mod:`repro.faults.repair`) calls it directly after locally
    re-assigning only the fault-affected messages, so a repair reuses the
    exact machinery (and validation) of a fresh compile.
    """
    profiler = profiler if profiler is not None else NULL_PROFILER
    if not report.feasible:
        raise UtilizationExceededError(
            report.peak,
            witness=f"{report.witness_kind} {report.witness_link}",
        )

    with profiler.stage("maximal-subsets", attempt=attempt_number) as detail:
        subsets = maximal_subsets(bounds, assignment)
        detail["subsets"] = len(subsets)
    allocations: list[IntervalAllocation] = []
    interval_schedules = []
    num_intervals = len(bounds.intervals.lengths)
    for index, subset in enumerate(subsets):
        with profiler.stage(
            f"allocate+schedule[{index}]",
            attempt=attempt_number,
            messages=len(subset),
            lp_vars=len(subset) * num_intervals,
        ):
            interval_allocation, schedules = _allocate_with_feedback(
                bounds, assignment, subset, index, config.feedback_rounds
            )
        allocations.append(interval_allocation)
        interval_schedules.append(schedules)

    with profiler.stage("build-schedule", attempt=attempt_number) as detail:
        schedule = build_schedule(bounds, assignment, interval_schedules)
        detail["commands"] = schedule.num_commands
    return _package(
        schedule, report, bounds, subsets, allocations, tau_in, local,
        attempt_number,
    )


def _allocate_with_feedback(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    subset: tuple[str, ...],
    index: int,
    feedback_rounds: int,
):
    """Allocation <-> interval-scheduling loop for one maximal subset.

    When interval scheduling reports an unpackable interval, the
    allocation is re-solved with that interval's total demand capped just
    below its current level minus the overflow, shifting the excess into
    the messages' other active intervals.  Raises the *first* scheduling
    error when the feedback budget runs out, or the allocation error if a
    cap makes the LP infeasible.
    """
    caps: dict[int, float] = {}
    first_error: IntervalSchedulingError | None = None
    for _ in range(feedback_rounds + 1):
        interval_allocation = allocate_intervals(
            bounds, assignment, subset, subset_index=index,
            interval_caps=caps or None,
        )
        try:
            schedules = schedule_intervals(
                assignment, interval_allocation, bounds.intervals.lengths
            )
            return interval_allocation, schedules
        except IntervalSchedulingError as error:
            if first_error is None:
                first_error = error
            k = error.interval_index
            current = sum(interval_allocation.per_interval(k).values())
            overflow = error.required - error.available
            caps[k] = min(
                caps.get(k, float("inf")),
                current - overflow * 1.05,
            )
    assert first_error is not None
    raise first_error


def _package(
    schedule, report, bounds, subsets, allocations, tau_in, local,
    attempt_number,
) -> ScheduledRouting:
    """Assemble the final result object."""
    return ScheduledRouting(
        schedule=schedule,
        utilization=report,
        bounds=bounds,
        subsets=subsets,
        allocations=allocations,
        tau_in=tau_in,
        local_messages=tuple(local),
        attempts=attempt_number,
    )
