"""The end-to-end scheduled-routing compiler (paper Fig. 3).

``compile_schedule`` drives the explicit stage pipeline declared in
:mod:`repro.core.pipeline` — time bounds → path assignment →
peak-utilisation gate → maximal subsets → message-interval allocation →
interval scheduling → node switching schedules — and machine-validates
the result.  Failures raise the stage-specific
:class:`~repro.errors.SchedulingError` subclasses; the compiler retries
the downstream stages under fresh path-assignment seeds (the feedback
between steps the paper's concluding remarks propose).

The LP stages solve through the backend named by
``CompilerConfig.lp_backend`` (see :mod:`repro.solvers`); an optional
:class:`~repro.cache.ScheduleCache` short-circuits whole compilations
whose content-addressed inputs were seen before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.interval_allocation import IntervalAllocation
from repro.core.pipeline import (
    POST_ASSIGNMENT_STAGES,
    CompilationContext,
    PrescreenStage,
    TimeBoundsStage,
    compile_stages,
    routed_and_local_messages,
    run_stages,
)
from repro.core.switching import CommunicationSchedule
from repro.core.timebounds import TimeBoundSet
from repro.core.utilization import UtilizationReport
from repro.errors import SchedulingError
from repro.mapping.allocation import validate_allocation
from repro.solvers import LPBackend, get_backend
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Topology
from repro.trace.profile import NULL_PROFILER, CompileProfiler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ScheduleCache

__all__ = [
    "CompilerConfig",
    "ScheduledRouting",
    "compile_schedule",
    "routed_and_local_messages",
    "schedule_from_assignment",
]


@dataclass(frozen=True)
class CompilerConfig:
    """Knobs of the scheduled-routing compiler.

    Attributes
    ----------
    seed:
        Base seed for the path-assignment heuristic.
    use_assign_paths:
        When False, messages stay on their LSD->MSD routes (the Fig. 5/6
        baseline); the heuristic is skipped.
    max_paths, max_restarts:
        Forwarded to :func:`~repro.core.assign_paths.assign_paths`.
    retries:
        Additional full-pipeline attempts under different assignment seeds
        when a downstream LP fails.  Ignored for LSD->MSD assignments,
        which are deterministic.
    feedback_rounds:
        Per-subset allocation <-> interval-scheduling feedback iterations
        (the paper's Fig. 3 feedback arrow): when an interval proves
        unpackable, the allocation LP is re-solved with the congested
        interval's total demand capped below the overflow, pushing work
        into the message windows' other intervals.
    sync_margin:
        CP clock-synchronization guard added to every message's
        transmission requirement (concluding-remarks extension), in
        microseconds.
    lp_backend:
        Name of the LP solver backend both LP stages use (see
        :func:`repro.solvers.get_backend`): ``"auto"`` (default —
        scipy's HiGHS when available, the pure-Python reference simplex
        otherwise), ``"highs"``, ``"highs-ds"``, ``"ilp"`` (HiGHS LPs
        plus exact MILP capabilities, see
        :mod:`repro.solvers.ilp_backend`) or ``"reference"``.
    lp_batch:
        When True (default), the independent per-interval packing LPs
        of interval scheduling are solved through the backend's
        ``solve_batch`` — one block-diagonal HiGHS solve per
        column-generation round instead of one solve per interval.
        Verdicts and generated columns are identical either way; this
        only changes solver wall time.  Perf-only: never part of cache
        keys.
    lp_warm_start:
        When True, the backend caches optimal bases by problem
        structure and warm-starts structurally identical solves —
        within one compilation, and (when a cache is attached) across
        compilations of the same structural family via the
        :func:`~repro.cache.warm_scope_key` basis registry, so delta
        recompiles and matrix cells differing only in load start their
        LPs from the prior basis.  Off by default; perf-only: never
        part of cache keys.
    prescreen:
        When True, run the static instance diagnoser
        (:mod:`repro.diagnose`) before any path assignment or LP work
        and raise :class:`~repro.errors.StaticallyRefutedError` on
        points no assignment could save.  Sound but incomplete: a
        feasible instance is never refuted (enforced by the fuzz
        corpus), but not every infeasible one is caught statically.
        Off by default so error types seen by existing callers are
        unchanged.
    """

    seed: int = 0
    use_assign_paths: bool = True
    max_paths: int = 48
    max_restarts: int = 4
    retries: int = 2
    feedback_rounds: int = 2
    sync_margin: float = 0.0
    lp_backend: str = "auto"
    prescreen: bool = False
    lp_batch: bool = True
    lp_warm_start: bool = False


@dataclass
class ScheduledRouting:
    """A successfully compiled scheduled-routing solution.

    Carries the communication schedule Omega plus every intermediate
    artifact an experiment may want to report.
    """

    schedule: CommunicationSchedule
    utilization: UtilizationReport
    bounds: TimeBoundSet
    subsets: list[tuple[str, ...]]
    allocations: list[IntervalAllocation]
    tau_in: float
    local_messages: tuple[str, ...]
    attempts: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def paths(self) -> dict[str, tuple[int, ...]]:
        """Final message -> node-path mapping."""
        return dict(self.schedule.assignment)

    def __repr__(self) -> str:
        return (
            f"<ScheduledRouting tau_in={self.tau_in:.3f} "
            f"U={self.utilization.peak:.3f} "
            f"commands={self.schedule.num_commands}>"
        )


def compile_schedule(
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    tau_in: float,
    config: CompilerConfig | None = None,
    profiler: CompileProfiler | None = None,
    cache: "ScheduleCache | None" = None,
) -> ScheduledRouting:
    """Compile a contention-free communication schedule for one period.

    Pass a :class:`~repro.trace.profile.CompileProfiler` to record
    per-stage wall time and problem sizes; the resulting
    :class:`~repro.trace.profile.CompileProfile` also lands in the
    returned routing's ``extra["compile_profile"]``.  LP solver totals
    (backend name, solves, iterations, wall time) always land in
    ``extra["solver_stats"]``.

    Pass a :class:`~repro.cache.ScheduleCache` to reuse prior results:
    the compilation inputs are content-hashed and a hit returns the
    stored schedule (or re-raises the stored failure) without running
    any stage.

    Raises the stage-specific :class:`~repro.errors.SchedulingError`
    subclass of the *last* failed attempt when no attempt succeeds:
    :class:`~repro.errors.UtilizationExceededError` when the requirements
    exceed link capacity, :class:`~repro.errors.IntervalAllocationError`
    or :class:`~repro.errors.IntervalSchedulingError` when an LP stage
    fails.
    """
    config = config or CompilerConfig()
    profiler = profiler if profiler is not None else NULL_PROFILER
    validate_allocation(timing.tfg, topology, allocation, exclusive=False)

    key = None
    delta = None
    warm_scope = None
    if cache is not None:
        from repro.cache import DeltaState, schedule_cache_key, warm_scope_key

        key = schedule_cache_key(timing, topology, allocation, tau_in, config)
        hit = cache.fetch(key, topology=topology)
        if hit is not None:
            return hit
        # Monolithic miss: compile with per-stage artifact reuse, so a
        # near-identical instance resumes mid-pipeline instead of cold.
        delta = DeltaState(cache, timing, topology, allocation, tau_in, config)
        if config.lp_warm_start:
            # Scope warm-start bases to the structural problem family
            # (sizes excluded), so delta recompiles and matrix cells
            # differing only in load share one basis pool.
            warm_scope = warm_scope_key(
                timing, topology, allocation, delta.backend_name
            )

    backend = get_backend(
        config.lp_backend,
        warm_start=config.lp_warm_start,
        warm_scope=warm_scope,
    )
    context = CompilationContext(
        tau_in=tau_in,
        config=config,
        profiler=profiler,
        backend=backend,
        timing=timing,
        topology=topology,
        allocation=allocation,
        delta=delta,
    )
    if config.prescreen:
        try:
            PrescreenStage().run(context)
        except SchedulingError as error:
            if cache is not None:
                cache.store_failure(key, error)
            raise
    TimeBoundsStage().run(context)

    stages = compile_stages(config)
    attempts = 1 + (config.retries if config.use_assign_paths else 0)
    last_error: SchedulingError | None = None
    for attempt in range(attempts):
        context.reset_attempt(
            seed=config.seed + attempt, attempt_number=attempt + 1
        )
        try:
            run_stages(stages, context)
        except SchedulingError as error:
            last_error = error
        else:
            routing = _package(context)
            if cache is not None:
                cache.store(key, routing)
            return routing
    assert last_error is not None
    if cache is not None:
        cache.store_failure(key, last_error)
    raise last_error


def schedule_from_assignment(
    bounds: TimeBoundSet,
    assignment,
    report: UtilizationReport,
    tau_in: float,
    local: list[str],
    config: CompilerConfig,
    attempt_number: int = 1,
    profiler: CompileProfiler | None = None,
    backend: LPBackend | None = None,
) -> ScheduledRouting:
    """Run the post-assignment compiler stages for a fixed path assignment.

    This is the downstream half of :func:`compile_schedule` — utilisation
    gate, maximal subsets, interval allocation/scheduling with feedback,
    and Omega assembly.  The schedule-repair engine
    (:mod:`repro.faults.repair`) calls it directly after locally
    re-assigning only the fault-affected messages, so a repair reuses the
    exact machinery (and validation) of a fresh compile.
    """
    profiler = profiler if profiler is not None else NULL_PROFILER
    if backend is None:
        backend = get_backend(
            config.lp_backend, warm_start=config.lp_warm_start
        )
    context = CompilationContext(
        tau_in=tau_in,
        config=config,
        profiler=profiler,
        backend=backend,
    )
    context.bounds = bounds
    context.local = list(local)
    context.attempt_number = attempt_number
    context.assignment = assignment
    context.report = report
    run_stages(POST_ASSIGNMENT_STAGES, context)
    return _package(context)


def _package(context: CompilationContext) -> ScheduledRouting:
    """Assemble the final result object from a completed context."""
    routing = ScheduledRouting(
        schedule=context.schedule,
        utilization=context.report,
        bounds=context.bounds,
        subsets=context.subsets,
        allocations=context.allocations,
        tau_in=context.tau_in,
        local_messages=tuple(context.local),
        attempts=context.attempt_number,
    )
    backend = context.backend
    if backend is not None:
        tally = backend.tally
        routing.extra["solver_stats"] = {
            "backend": backend.name,
            "lp_solves": tally.solves,
            "lp_iterations": tally.iterations,
            "lp_wall_ms": round(tally.wall_ms, 3),
            "lp_failures": tally.failures,
            "lp_batches": tally.batches,
            "lp_batched_solves": tally.batched_solves,
            "lp_warm_started": tally.warm_started,
            "max_variables": tally.max_variables,
            "max_constraints": tally.max_constraints,
        }
    if context.profiler is not NULL_PROFILER:
        routing.extra["compile_profile"] = context.profiler.profile
    return routing
