"""Maximal related subsets of messages (paper Definitions 5.3 and 5.4).

Two messages are *related* when they use a common link and are active in a
common interval, or transitively through a third message.  The relation
partitions the message set; message-interval allocation and interval
scheduling decompose along the partition, which keeps the LPs small.

Within any single interval, messages of *different* subsets are link-
disjoint (were they not, they would be related), so per-subset schedules
can be overlaid in the same interval without conflict — the property the
switching-schedule builder relies on.
"""

from __future__ import annotations

from repro.core.assignment import PathAssignment
from repro.core.timebounds import TimeBoundSet


class _UnionFind:
    def __init__(self, items):
        self.parent = {item: item for item in items}

    def find(self, item):
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:  # path compression
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def maximal_subsets(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
) -> list[tuple[str, ...]]:
    """Partition the routed messages into maximal related subsets.

    Subsets are returned in a deterministic order (by the first member's
    position in ``bounds.order``), each with members in ``bounds.order``.
    """
    names = [name for name in bounds.order if name in assignment.endpoints]
    uf = _UnionFind(names)
    activity = bounds.activity
    for link in assignment.used_links():
        on_link = [n for n in assignment.messages_on(link) if n in uf.parent]
        for idx, first in enumerate(on_link):
            row_a = activity[bounds.index[first]]
            for second in on_link[idx + 1:]:
                row_b = activity[bounds.index[second]]
                if bool((row_a & row_b).any()):
                    uf.union(first, second)

    groups: dict[str, list[str]] = {}
    for name in names:
        groups.setdefault(uf.find(name), []).append(name)
    ordered = sorted(groups.values(), key=lambda g: bounds.index[g[0]])
    return [tuple(group) for group in ordered]
