"""Message time bounds and the interval decomposition (paper Sections 4, 5.1).

For maximum throughput every task executes once per ``tau_in`` and every
message must flow at the same rate.  From the windowed ASAP schedule each
message ``M_i`` gets a release time ``r_i`` (the instant its source task
finishes) and a deadline ``d_i = r_i + w`` (``w`` = the message window,
``tau_c`` by default), both wrapped onto the canonical frame
``[0, tau_in)``.  "Mi must be transmitted in interval [ri, di] if di > ri
or in [0, di] and [ri, tau_in] when di < ri"; because all messages recur
with the same period, observing this single frame accounts for every
in-flight instance at once.

The distinct window endpoints split the frame into ``K`` intervals
``A_1 .. A_K``; the **message activity matrix** ``A`` marks which messages
are available for transmission in which interval (paper Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulingError
from repro.tfg.analysis import TFGTiming
from repro.units import EPS, le, wrap


@dataclass(frozen=True)
class MessageTimeBounds:
    """Release/deadline bounds of one message on the frame ``[0, tau_in)``.

    Attributes
    ----------
    name:
        Message name.
    release, deadline:
        Frame instants; ``deadline < release`` indicates a wrapped window.
    duration:
        Transmission time ``m_i / B`` that must be scheduled inside the
        window.
    windows:
        The window as one or two non-wrapping frame segments.
    """

    name: str
    release: float
    deadline: float
    duration: float
    windows: tuple[tuple[float, float], ...]

    @property
    def active_length(self) -> float:
        """Total frame time during which the message may be transmitted."""
        return sum(end - start for start, end in self.windows)

    @property
    def slack(self) -> float:
        """Window time beyond the transmission requirement (paper Eq. 2)."""
        return self.active_length - self.duration

    @property
    def no_slack(self) -> bool:
        """Equality in Eq. 2: the message fully occupies its window."""
        return self.slack <= EPS

    def contains(self, start: float, end: float) -> bool:
        """True when ``[start, end]`` lies inside one of the windows."""
        return any(
            le(ws, start) and le(end, we) for ws, we in self.windows
        )


class IntervalSet:
    """The frame split at every distinct window endpoint.

    ``boundaries`` has ``K + 1`` entries ``0 = t_0 < ... < t_K = tau_in``;
    interval ``A_k`` (0-indexed here) is ``[t_k, t_{k+1}]``.
    """

    def __init__(self, boundaries: list[float], tau_in: float):
        self.tau_in = tau_in
        self.boundaries = tuple(boundaries)
        if len(self.boundaries) < 2:
            raise SchedulingError("interval set needs at least one interval")
        self.lengths = tuple(
            b - a for a, b in zip(self.boundaries, self.boundaries[1:])
        )

    @property
    def count(self) -> int:
        return len(self.lengths)

    def interval(self, k: int) -> tuple[float, float]:
        """Endpoints of interval ``A_k``."""
        return self.boundaries[k], self.boundaries[k + 1]

    def __repr__(self) -> str:
        return f"<IntervalSet K={self.count} over [0, {self.tau_in}]>"


class TimeBoundSet:
    """Time bounds for every routed message plus the interval machinery.

    Messages whose source and destination tasks share a node never touch
    the network; they are excluded here (the compiler checks their windows
    trivially hold).

    Attributes
    ----------
    tau_in:
        Input period (the frame length).
    bounds:
        ``message name -> MessageTimeBounds``.
    intervals:
        The :class:`IntervalSet` induced by all window endpoints.
    activity:
        Boolean matrix ``A``; ``activity[i, k]`` is True when message ``i``
        (in :attr:`order`) is available throughout interval ``A_k``.
    order:
        Message names in a fixed order indexing the activity matrix rows.
    """

    def __init__(
        self,
        tau_in: float,
        bounds: dict[str, MessageTimeBounds],
    ):
        self.tau_in = tau_in
        self.bounds = dict(bounds)
        self.order = tuple(self.bounds)
        self.index = {name: i for i, name in enumerate(self.order)}
        endpoints = {0.0, tau_in}
        for b in self.bounds.values():
            for start, end in b.windows:
                endpoints.add(start)
                endpoints.add(end)
        boundaries = _dedupe(sorted(endpoints))
        self.intervals = IntervalSet(boundaries, tau_in)
        self.activity = np.zeros(
            (len(self.order), self.intervals.count), dtype=bool
        )
        for i, name in enumerate(self.order):
            for k in range(self.intervals.count):
                start, end = self.intervals.interval(k)
                if self.bounds[name].contains(start, end):
                    self.activity[i, k] = True

    def active_intervals(self, name: str) -> tuple[int, ...]:
        """Indices of intervals in which a message may be transmitted."""
        return tuple(
            int(k) for k in np.flatnonzero(self.activity[self.index[name]])
        )

    def __eq__(self, other: object) -> bool:
        # tau_in and the per-message bounds determine every derived
        # attribute (order, intervals, activity), so value equality over
        # them is full value equality.  Needed so a schedule loaded from
        # serialization or the cache compares equal to a fresh compile.
        if not isinstance(other, TimeBoundSet):
            return NotImplemented
        return self.tau_in == other.tau_in and self.bounds == other.bounds

    __hash__ = None  # mutable value semantics

    def __repr__(self) -> str:
        return (
            f"<TimeBoundSet {len(self.order)} messages, "
            f"K={self.intervals.count}, tau_in={self.tau_in}>"
        )


def _dedupe(sorted_values: list[float]) -> list[float]:
    """Collapse endpoints closer than EPS (floating-point wrap artifacts)."""
    result = [sorted_values[0]]
    for value in sorted_values[1:]:
        if value - result[-1] > EPS:
            result.append(value)
    return result


def compute_time_bounds(
    timing: TFGTiming,
    tau_in: float,
    routed_messages: list[str] | None = None,
    extra_duration: float = 0.0,
) -> TimeBoundSet:
    """Release/deadline bounds for every (routed) message at period ``tau_in``.

    Parameters
    ----------
    timing:
        The TFG timing; its windowed ASAP schedule supplies the absolute
        source-finish instants.
    tau_in:
        Input period; must satisfy ``tau_in >= tau_c`` (Section 2) and
        ``tau_in >= message window`` (a window longer than the frame would
        self-overlap).
    routed_messages:
        Names of the messages that traverse the network (default: all).
    extra_duration:
        A per-message setup guard added to every transmission requirement;
        models the CP clock-synchronization margin of the paper's
        concluding remarks.
    """
    if extra_duration < 0:
        raise SchedulingError(
            f"sync margin must be non-negative, got {extra_duration}"
        )
    if tau_in < timing.tau_c - EPS:
        raise SchedulingError(
            f"tau_in={tau_in} below tau_c={timing.tau_c}: infinite "
            "accumulation at the slowest task (paper Section 2)"
        )
    window = timing.message_window
    if window > tau_in + EPS:
        raise SchedulingError(
            f"message window {window} exceeds the period {tau_in}; "
            "successive instances of a message would overlap"
        )
    asap = timing.asap_schedule()
    names = (
        [m.name for m in timing.tfg.messages]
        if routed_messages is None
        else list(routed_messages)
    )
    bounds: dict[str, MessageTimeBounds] = {}
    for name in names:
        message = timing.tfg.message(name)
        release = wrap(asap[message.src][1], tau_in)
        duration = timing.xmit_time(name) + extra_duration
        if duration > window + EPS:
            raise SchedulingError(
                f"message {name!r}: transmission requirement {duration} "
                f"(including sync margin) exceeds its window {window}"
            )
        deadline_abs = release + window
        if le(deadline_abs, tau_in):
            deadline = wrap(deadline_abs, tau_in)
            windows: tuple[tuple[float, float], ...] = ((release, deadline_abs),)
            if deadline == 0.0:  # window ends exactly at the frame edge
                deadline = tau_in
        else:
            deadline = deadline_abs - tau_in
            windows = ((0.0, deadline), (release, tau_in))
        bounds[name] = MessageTimeBounds(
            name=name,
            release=release,
            deadline=deadline,
            duration=duration,
            windows=windows,
        )
    return TimeBoundSet(tau_in, bounds)
