"""Series statistics for pipelined-execution measurements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SpikeStats:
    """Min / mean / max of a measured series.

    This is exactly what the paper's figures draw: "the maximum (minimum)
    value of the upward (downward) spike corresponds to the maximum
    (minimum) value of the output generation interval ...; the middle
    value corresponds to the average" (Section 6).
    """

    minimum: float
    mean: float
    maximum: float

    @classmethod
    def from_series(cls, series: Sequence[float]) -> "SpikeStats":
        if not series:
            raise ValueError("cannot summarize an empty series")
        return cls(min(series), sum(series) / len(series), max(series))

    @property
    def spread(self) -> float:
        """max - min; zero iff the series is constant."""
        return self.maximum - self.minimum

    def is_constant(self, tol: float) -> bool:
        """True when the series varies by at most ``tol``."""
        return self.spread <= tol


def output_intervals(completion_times: Sequence[float]) -> list[float]:
    """Intervals between successive invocation completions."""
    return [b - a for a, b in zip(completion_times, completion_times[1:])]


def has_output_inconsistency(
    intervals: Sequence[float],
    tau_in: float,
    rel_tol: float = 1e-6,
) -> bool:
    """Paper Eq. 1: pipelining is consistent iff every output interval
    equals ``tau_in``.  Measured intervals are compared with a relative
    tolerance to absorb floating-point noise."""
    tol = rel_tol * tau_in
    return any(abs(delta - tau_in) > tol for delta in intervals)


def normalized_throughput_stats(
    intervals: Sequence[float],
    tau_in: float,
) -> SpikeStats:
    """Spike statistics of normalized throughput ``tau_in / tau_out``.

    The minimum throughput comes from the *longest* output interval and
    vice versa, so the spike is computed on the interval series and then
    inverted.
    """
    raw = SpikeStats.from_series(intervals)
    return SpikeStats(
        minimum=tau_in / raw.maximum,
        mean=tau_in / raw.mean,
        maximum=tau_in / raw.minimum,
    )


def normalized_latency_stats(
    latencies: Sequence[float],
    critical_path_length: float,
) -> SpikeStats:
    """Spike statistics of normalized latency ``lambda_j / Lambda``."""
    if critical_path_length <= 0:
        raise ValueError(
            f"critical path length must be positive, got {critical_path_length}"
        )
    raw = SpikeStats.from_series(latencies)
    return SpikeStats(
        minimum=raw.minimum / critical_path_length,
        mean=raw.mean / critical_path_length,
        maximum=raw.maximum / critical_path_length,
    )


def load_sweep(points: int = 12, low: float = 0.2, high: float = 1.0) -> list[float]:
    """Evenly spaced normalized-load values.

    The paper selects "twelve different values of the input period between
    its minimum value of tau_c and 5*tau_c" — i.e. loads spanning
    [0.2, 1.0]; larger periods "are not interesting because messages from
    different invocations do not contend" (Section 6).

    >>> pts = load_sweep()
    >>> len(pts), pts[0], pts[-1]
    (12, 0.2, 1.0)
    """
    if points < 2:
        raise ValueError(f"need at least 2 sweep points, got {points}")
    if not 0 < low < high <= 1.0:
        raise ValueError(f"invalid load range [{low}, {high}]")
    step = (high - low) / (points - 1)
    return [round(low + i * step, 10) for i in range(points)]
