"""Performance metrics in the paper's normalized terms (Section 6).

- **normalized load** = tau_c / tau_in (1.0 = fastest feasible input rate),
- **normalized throughput** = tau_in / tau_out, 1.0 when the machine keeps
  up with the input rate,
- **normalized latency** = lambda / Lambda, measured invocation latency
  over the critical-path length,
- **output inconsistency (OI)** = the output-generation-interval series is
  not constant (paper Eq. 1 violated); figures show it as an up-down spike
  whose extremes are the min/max of the series and whose middle is the
  mean.
"""

from repro.metrics.series import (
    SpikeStats,
    has_output_inconsistency,
    load_sweep,
    normalized_latency_stats,
    normalized_throughput_stats,
    output_intervals,
)
from repro.metrics.survivability import (
    OutageReport,
    SurvivabilityPoint,
    deadline_misses,
    outage_misses,
    survivability_curve,
    throughput_series,
)

__all__ = [
    "OutageReport",
    "SpikeStats",
    "SurvivabilityPoint",
    "deadline_misses",
    "has_output_inconsistency",
    "load_sweep",
    "normalized_latency_stats",
    "normalized_throughput_stats",
    "outage_misses",
    "output_intervals",
    "survivability_curve",
    "throughput_series",
]
