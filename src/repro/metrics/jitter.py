"""Jitter metrics for real-time output streams.

Output inconsistency is a boolean; real-time engineering wants the
magnitude.  These are the standard figures for a periodic stream whose
ideal inter-output interval is ``tau_in``:

- **peak-to-peak jitter**: max interval minus min interval,
- **RMS jitter**: root-mean-square deviation of intervals from ``tau_in``,
- **worst lateness / worst earliness**: the signed extremes of each
  output's deviation from the best-fit ideal grid.

The ideal grid is anchored by *best fit* over the whole window, not at
the first measured completion.  Anchoring at the first completion makes
that output late by zero by definition, so a stream that is uniformly
drifting (every interval slightly longer than ``tau_in``) reported zero
lateness no matter how far the last output slipped.  With deviations
``d_k = c_k - k * tau_in``, the least-squares anchor is ``a = mean(d_k)``;
lateness and earliness are the extremes of ``d_k - a``.  A perfectly
periodic stream has every ``d_k`` equal, so both extremes are zero
regardless of where the stream started — phase offsets still do not
count as jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class JitterReport:
    """Magnitude of output-timing irregularity for one run."""

    tau_in: float
    peak_to_peak: float
    rms: float
    worst_lateness: float
    worst_earliness: float

    @property
    def peak_to_peak_normalized(self) -> float:
        """Peak-to-peak jitter as a fraction of the period."""
        return self.peak_to_peak / self.tau_in

    @property
    def is_jitter_free(self) -> bool:
        """True for a perfectly periodic output stream."""
        return (
            self.peak_to_peak <= 1e-9
            and self.worst_lateness <= 1e-9
            and self.worst_earliness <= 1e-9
        )


def jitter_report(
    completion_times: Sequence[float],
    tau_in: float,
) -> JitterReport:
    """Compute jitter figures from a completion-time series.

    ``completion_times`` should already exclude warm-up.  The ideal
    emission grid ``a + k * tau_in`` uses the least-squares best-fit
    offset ``a`` (the mean deviation), so uniform drift shows up as
    lateness/earliness while a pure phase offset does not.
    """
    if len(completion_times) < 3:
        raise ValueError(
            f"need at least 3 completions to measure jitter, got "
            f"{len(completion_times)}"
        )
    if tau_in <= 0:
        raise ValueError(f"tau_in must be positive, got {tau_in}")
    intervals = [
        b - a for a, b in zip(completion_times, completion_times[1:])
    ]
    peak_to_peak = max(intervals) - min(intervals)
    rms = math.sqrt(
        sum((delta - tau_in) ** 2 for delta in intervals) / len(intervals)
    )
    deviations = [
        completion - k * tau_in
        for k, completion in enumerate(completion_times)
    ]
    anchor = sum(deviations) / len(deviations)
    worst_lateness = max(d - anchor for d in deviations)
    worst_earliness = max(anchor - d for d in deviations)
    return JitterReport(
        tau_in=tau_in,
        peak_to_peak=peak_to_peak,
        rms=rms,
        worst_lateness=max(worst_lateness, 0.0),
        worst_earliness=max(worst_earliness, 0.0),
    )
