"""Jitter metrics for real-time output streams.

Output inconsistency is a boolean; real-time engineering wants the
magnitude.  These are the standard figures for a periodic stream whose
ideal inter-output interval is ``tau_in``:

- **peak-to-peak jitter**: max interval minus min interval,
- **RMS jitter**: root-mean-square deviation of intervals from ``tau_in``,
- **worst lateness**: how far any single output slipped past its ideal
  emission instant (ideal = first measured output + k * tau_in).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class JitterReport:
    """Magnitude of output-timing irregularity for one run."""

    tau_in: float
    peak_to_peak: float
    rms: float
    worst_lateness: float

    @property
    def peak_to_peak_normalized(self) -> float:
        """Peak-to-peak jitter as a fraction of the period."""
        return self.peak_to_peak / self.tau_in

    @property
    def is_jitter_free(self) -> bool:
        """True for a perfectly periodic output stream."""
        return self.peak_to_peak <= 1e-9 and self.worst_lateness <= 1e-9


def jitter_report(
    completion_times: Sequence[float],
    tau_in: float,
) -> JitterReport:
    """Compute jitter figures from a completion-time series.

    ``completion_times`` should already exclude warm-up; the first
    measured completion anchors the ideal grid.
    """
    if len(completion_times) < 3:
        raise ValueError(
            f"need at least 3 completions to measure jitter, got "
            f"{len(completion_times)}"
        )
    if tau_in <= 0:
        raise ValueError(f"tau_in must be positive, got {tau_in}")
    intervals = [
        b - a for a, b in zip(completion_times, completion_times[1:])
    ]
    peak_to_peak = max(intervals) - min(intervals)
    rms = math.sqrt(
        sum((delta - tau_in) ** 2 for delta in intervals) / len(intervals)
    )
    anchor = completion_times[0]
    worst_lateness = max(
        completion - (anchor + k * tau_in)
        for k, completion in enumerate(completion_times)
    )
    return JitterReport(
        tau_in=tau_in,
        peak_to_peak=peak_to_peak,
        rms=rms,
        worst_lateness=max(worst_lateness, 0.0),
    )
