"""Survivability metrics: what a fault costs and how often repair wins.

Three questions a real-time deployment asks of scheduled routing that
the paper does not:

1. **How many deadlines die in the outage window?**  Between the fault
   instant and the moment a repaired schedule is applied, every
   scheduled transmission crossing the dead link is lost —
   :func:`outage_misses` counts the lost message instances and the
   pipeline invocations they doom, directly from the compiled schedule's
   absolute slot times.
2. **How irregular does the output get?**  :func:`throughput_series`
   and :func:`deadline_misses` turn a degraded run's completion series
   into the degraded-mode throughput/jitter figures (jitter itself comes
   from :func:`repro.metrics.jitter.jitter_report`).
3. **How much damage can the machine absorb?**
   :func:`survivability_curve` subjects a compiled schedule to ``trials``
   random ``k``-link failures per ``k`` and reports how often local
   repair, full recompilation, or nothing at all restores the guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import random

from repro.topology.base import Link, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.compiler import CompilerConfig, ScheduledRouting
    from repro.core.executor import ScheduledRoutingExecutor
    from repro.tfg.analysis import TFGTiming
    from repro.results import RunResult


# -- outage-window accounting -------------------------------------------------

@dataclass(frozen=True)
class OutageReport:
    """Deliveries lost while a failure outlived its repair.

    Attributes
    ----------
    window:
        The ``[fault, repair applied)`` absolute-time interval.
    missed_instances:
        Each ``(message, invocation)`` whose scheduled transmission
        crossed a failed link inside the window.
    missed_invocations:
        Pipeline invocations doomed by at least one lost delivery.
    """

    window: tuple[float, float]
    missed_instances: tuple[tuple[str, int], ...]
    missed_invocations: tuple[int, ...]

    @property
    def num_missed_deliveries(self) -> int:
        return len(self.missed_instances)

    @property
    def num_missed_invocations(self) -> int:
        return len(self.missed_invocations)


def outage_misses(
    executor: "ScheduledRoutingExecutor",
    failed_links: Iterable[Link],
    window: tuple[float, float],
    invocations: int,
) -> OutageReport:
    """Count deliveries a link outage kills before the repair lands.

    A message instance is lost when any of its absolute transmission
    slots overlaps the outage window on a failed link; its pipeline
    invocation then misses its deadline (the destination task starves).
    """
    failed = frozenset((min(u, v), max(u, v)) for u, v in failed_links)
    t0, t1 = window
    missed: list[tuple[str, int]] = []
    doomed: set[int] = set()
    for name, slots in executor.routing.schedule.slots.items():
        on_failed = any(link in failed for slot in slots for link in slot.links)
        if not on_failed:
            continue
        for j in range(invocations):
            for start, end in executor.absolute_slots(name, j):
                if start < t1 and end > t0:
                    missed.append((name, j))
                    doomed.add(j)
                    break
    return OutageReport(
        window=(t0, t1),
        missed_instances=tuple(missed),
        missed_invocations=tuple(sorted(doomed)),
    )


# -- degraded-mode series -----------------------------------------------------

def throughput_series(result: "RunResult") -> list[float]:
    """Per-interval normalized throughput ``tau_in / delta_out``.

    Constant 1.0 for a healthy scheduled run; dips below 1.0 mark the
    degraded-mode intervals of a faulted run.
    """
    return [
        result.tau_in / delta if delta > 0 else float("inf")
        for delta in result.intervals
    ]


def deadline_misses(result: "RunResult", deadline: float) -> int:
    """Invocations (post warm-up) whose latency exceeded ``deadline``.

    ``deadline`` is an absolute latency budget in microseconds — e.g.
    ``2 * result.critical_path_length`` for "twice the unloaded
    pipeline".
    """
    if deadline <= 0:
        raise ValueError(f"deadline must be positive, got {deadline}")
    return sum(1 for latency in result.latencies if latency > deadline)


# -- survivability over k random failures -------------------------------------

@dataclass(frozen=True)
class SurvivabilityPoint:
    """Repair outcomes of ``trials`` random ``k``-link failures."""

    k: int
    trials: int
    unaffected: int
    local_repairs: int
    recompiles: int
    infeasible: int
    mean_repair_ms: float
    mean_rerouted: float

    @property
    def survival_rate(self) -> float:
        """Fraction of failure scenarios after which a valid schedule
        exists on the residual machine."""
        return (self.unaffected + self.local_repairs + self.recompiles) / self.trials

    @property
    def local_rate(self) -> float:
        """Fraction repaired without touching any healthy message."""
        return self.local_repairs / self.trials


def survivability_curve(
    routing: "ScheduledRouting",
    timing: "TFGTiming",
    topology: Topology,
    allocation: Mapping[str, int],
    k_values: Sequence[int] = (1, 2, 3),
    trials: int = 20,
    seed: int = 0,
    config: "CompilerConfig | None" = None,
    candidate_links: Sequence[Link] | None = None,
) -> list[SurvivabilityPoint]:
    """Repair-outcome statistics over random ``k``-link failure scenarios.

    For each ``k`` in ``k_values``, draws ``trials`` seeded random sets
    of ``k`` links (from ``candidate_links``, default: all links),
    permanently fails them, and runs the repair engine.  Deterministic
    per ``seed``.
    """
    from repro.errors import RepairInfeasibleError
    from repro.faults.repair import repair_schedule

    pool = list(candidate_links) if candidate_links else list(topology.links)
    points: list[SurvivabilityPoint] = []
    for k in k_values:
        if k > len(pool):
            raise ValueError(
                f"cannot fail k={k} links out of {len(pool)} candidates"
            )
        rng = random.Random(seed * 1_000_003 + k)
        unaffected = local = recompiled = infeasible = 0
        repair_ms: list[float] = []
        rerouted: list[int] = []
        for _ in range(trials):
            failed = rng.sample(pool, k)
            try:
                outcome = repair_schedule(
                    routing, timing, topology, allocation, failed,
                    config=config,
                )
            except RepairInfeasibleError:
                infeasible += 1
                continue
            if outcome.strategy == "none":
                unaffected += 1
            elif outcome.strategy == "local":
                local += 1
            else:
                recompiled += 1
            repair_ms.append(outcome.repair_wall_ms)
            rerouted.append(outcome.messages_rerouted)
        points.append(
            SurvivabilityPoint(
                k=k,
                trials=trials,
                unaffected=unaffected,
                local_repairs=local,
                recompiles=recompiled,
                infeasible=infeasible,
                mean_repair_ms=(
                    sum(repair_ms) / len(repair_ms) if repair_ms else 0.0
                ),
                mean_rerouted=(
                    sum(rerouted) / len(rerouted) if rerouted else 0.0
                ),
            )
        )
    return points
