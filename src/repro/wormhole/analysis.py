"""Static output-inconsistency risk prediction (paper Section 3).

The paper's claim gives *sufficient* conditions for wormhole-routing OI:
messages M1 and M2 whose assigned routes share a link, connected through
the precedence order, pipelined at a period that puts M2 of invocation
``j`` on the shared link exactly when M1 of invocation ``j+1`` becomes
available.  :func:`predict_oi_risks` evaluates those conditions over the
contention-free baseline timetable — a compile-time early warning that
names the message pair and link, before any simulation runs.

The prediction is first-order: it reasons about the unperturbed
timetable, while real contention shifts instants and can create risks at
second order (or resolve predicted ones).  Predicted risks therefore
flag configurations to simulate, not certainties; the empty-risk case at
very large periods (where invocations cannot interact) is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.tfg.analysis import TFGTiming
from repro.topology.base import Topology
from repro.topology.routing import links_on_path, lsd_to_msd_route
from repro.units import EPS


@dataclass(frozen=True)
class OiRisk:
    """One predicted cross-invocation collision.

    Message ``blocked`` of invocation ``j+1`` becomes available while
    ``holder`` of invocation ``j`` occupies the shared ``link``
    (baseline instants ``available_at`` vs ``[busy_from, busy_until]``,
    frame-relative to the holder's invocation).
    """

    holder: str
    blocked: str
    link: tuple[int, int]
    available_at: float
    busy_from: float
    busy_until: float


def predict_oi_risks(
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    tau_in: float,
    router=lsd_to_msd_route,
) -> list[OiRisk]:
    """Message pairs satisfying the Section 3 collision conditions.

    For every ordered pair of routed messages sharing a link under the
    routing function, checks whether the later message's next-invocation
    availability instant falls inside the earlier message's baseline
    occupancy of the shared link (the claim's
    ``t_s^0(M2) < t_s^1(M1) < t_f^0(M2)`` pattern, generalized to any
    invocation offset that the period admits).
    """
    schedule = timing.actual_asap_schedule()
    routed = []
    for message in timing.tfg.messages:
        src = allocation[message.src]
        dst = allocation[message.dst]
        if src == dst:
            continue
        links = set(links_on_path(router(topology, src, dst)))
        available = schedule[message.src][1]
        busy_until = available + timing.xmit_time(message.name)
        routed.append((message.name, links, available, busy_until))

    risks: list[OiRisk] = []
    for holder_name, holder_links, holder_from, holder_until in routed:
        for blocked_name, blocked_links, blocked_avail, _ in routed:
            if holder_name == blocked_name:
                continue
            shared = holder_links & blocked_links
            if not shared:
                continue
            # Invocation offsets d >= 1 such that `blocked` of invocation
            # j+d becomes available inside `holder`'s (invocation j)
            # occupancy: holder_from < blocked_avail + d*tau_in <
            # holder_until for some integer d >= 1.
            lower = (holder_from - blocked_avail) / tau_in
            upper = (holder_until - blocked_avail) / tau_in
            first = max(1, int(lower) + 1)
            if first < upper - EPS:
                collision_at = blocked_avail + first * tau_in
                link = min(shared)
                risks.append(
                    OiRisk(
                        holder=holder_name,
                        blocked=blocked_name,
                        link=link,
                        available_at=collision_at,
                        busy_from=holder_from,
                        busy_until=holder_until,
                    )
                )
    return sorted(risks, key=lambda r: (r.holder, r.blocked, r.link))
