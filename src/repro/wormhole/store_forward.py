"""Store-and-forward routing — the first-generation baseline.

Before wormhole routing, multicomputers (iPSC/1-class machines) buffered
each message entirely at every intermediate node and retransmitted it hop
by hop.  Relative to wormhole routing:

- **latency**: an uncontended D-hop message takes ``D * m/B`` instead of
  ``~m/B`` — the distance sensitivity wormhole routing was invented to
  remove;
- **deadlock**: a store-and-forward flight holds exactly one link at a
  time, so there is no hold-and-wait and no deadlock — including on the
  half-duplex torus rings where wormhole routing must abort-and-retry
  (assuming, as this model does, that intermediate buffers are ample;
  the paper's SR pointedly "does not load the intermediate node memory");
- **output inconsistency**: arbitration is still FCFS and still oblivious
  to invocation structure, so the paper's Section 3 mechanism applies
  unchanged — OI persists, which the ABL-SAF bench demonstrates.
"""

from __future__ import annotations

from repro.wormhole.simulator import WormholeSimulator


class StoreAndForwardSimulator(WormholeSimulator):
    """Hop-at-a-time forwarding over the same FCFS half-duplex links.

    Identical construction parameters and run protocol as
    :class:`~repro.wormhole.simulator.WormholeSimulator`; only the flight
    semantics change (one held link, one retransmission per hop).
    """

    hold_entire_path = False
