"""Deprecated home of the run-result container.

The result shape shared by WR and SR runs now lives in
:mod:`repro.results` as :class:`~repro.results.RunResult`; importing or
instantiating :class:`PipelineRunResult` from here still works but is
deprecated.  See ``docs/api.md`` for the migration guide.
"""

from __future__ import annotations

import warnings

from repro.results import RunResult

__all__ = ["PipelineRunResult", "RunResult"]


class PipelineRunResult(RunResult):
    """Thin deprecated alias of :class:`repro.results.RunResult`.

    Kept so existing code that constructs or type-checks against
    ``PipelineRunResult`` keeps working; new code should use
    :class:`~repro.results.RunResult`.  (`isinstance` checks against
    this class do **not** match results returned by the runners — they
    return :class:`~repro.results.RunResult` directly — which is exactly
    why constructing it warns.)
    """

    def __post_init__(self) -> None:
        warnings.warn(
            "PipelineRunResult is deprecated; use repro.results.RunResult",
            DeprecationWarning,
            stacklevel=3,
        )
        super().__post_init__()
