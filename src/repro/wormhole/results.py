"""Result container for pipelined execution runs (WR and SR alike)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.series import (
    SpikeStats,
    has_output_inconsistency,
    normalized_latency_stats,
    normalized_throughput_stats,
    output_intervals,
)


@dataclass(frozen=True)
class PipelineRunResult:
    """Measured behaviour of one pipelined run.

    Attributes
    ----------
    tau_in:
        Input arrival period used for the run.
    completion_times:
        Absolute completion instant of each invocation (all invocations,
        including warm-up).
    warmup:
        Number of leading invocations excluded from the statistics while
        the pipeline fills.
    critical_path_length:
        The TFG's Lambda, the normalized-latency denominator.
    technique:
        ``"wormhole"`` or ``"scheduled"`` — which routing produced the run.
    """

    tau_in: float
    completion_times: tuple[float, ...]
    warmup: int
    critical_path_length: float
    technique: str = "wormhole"
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if len(self.completion_times) - self.warmup < 3:
            raise ValueError(
                "need at least 3 post-warmup invocations to measure intervals "
                f"(got {len(self.completion_times)} with warmup={self.warmup})"
            )

    # -- measured series -----------------------------------------------------

    @property
    def measured_completions(self) -> tuple[float, ...]:
        """Completion times after the warm-up window."""
        return self.completion_times[self.warmup:]

    @property
    def intervals(self) -> list[float]:
        """Output-generation intervals (the paper's delta_out series)."""
        return output_intervals(self.measured_completions)

    @property
    def latencies(self) -> list[float]:
        """Per-invocation latency: completion minus that invocation's
        input-arrival instant ``j * tau_in``."""
        return [
            t - (self.warmup + j) * self.tau_in
            for j, t in enumerate(self.measured_completions)
        ]

    # -- paper-normalized statistics ---------------------------------------

    def throughput_stats(self) -> SpikeStats:
        """Normalized throughput spike (tau_in / tau_out)."""
        return normalized_throughput_stats(self.intervals, self.tau_in)

    def latency_stats(self) -> SpikeStats:
        """Normalized latency spike (lambda / Lambda)."""
        return normalized_latency_stats(self.latencies, self.critical_path_length)

    def has_oi(self, rel_tol: float = 1e-6) -> bool:
        """Output inconsistency: output intervals not all equal to tau_in."""
        return has_output_inconsistency(self.intervals, self.tau_in, rel_tol)

    def jitter(self):
        """Magnitude of the output-timing irregularity (post warm-up).

        Returns a :class:`~repro.metrics.jitter.JitterReport`; a run free
        of output inconsistency has zero peak-to-peak jitter.
        """
        from repro.metrics.jitter import jitter_report

        return jitter_report(self.measured_completions, self.tau_in)

    def __repr__(self) -> str:
        thr = self.throughput_stats()
        return (
            f"<PipelineRunResult {self.technique} tau_in={self.tau_in:.3f} "
            f"throughput=[{thr.minimum:.3f},{thr.mean:.3f},{thr.maximum:.3f}] "
            f"oi={self.has_oi()}>"
        )
