"""Discrete-event simulation of task-level pipelining under wormhole routing.

The model follows the paper's own (Section 6): "a channel is considered
occupied if a message captures it"; path setup advances hop by hop with
FCFS arbitration per link; a blocked header keeps every link already
acquired ("M2 continues to use all its links until it is received at the
destination"); after the last link is acquired, the message occupies the
whole path for its transmission time ``m/B`` and then releases it.

Each node has one application processor (AP) executing its tasks
sequentially; a task instance of invocation ``j`` starts once (a) the
instance of invocation ``j-1`` has finished, (b) every incoming message of
invocation ``j`` has been delivered, and (c) for input tasks, the ``j``-th
external input has arrived at ``j * tau_in``.

Deadlock on tori
----------------
With half-duplex links (the paper's channel model) dimension-ordered
wormhole routing is *not* deadlock-free on tori: two messages traversing
one ring in opposite directions hold the link the other wants.  The paper
reports torus results without discussing this, so the simulator adds the
standard abort-and-retry **recovery** (in the spirit of compressionless
routing / Disha): when a hold-and-wait cycle is detected, the blocked
message holding the fewest links releases everything and re-acquires from
scratch.  Recoveries are counted in the run result (``extra
["recoveries"]``); on hypercubes and GHCs, where ascending-dimension
acquisition is provably cycle-free even on shared links, the count is
always zero.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import AllocationError, SimulationError
from repro.mapping.allocation import validate_allocation
from repro.results import RunConfig, RunResult, resolve_run_config
from repro.sim import Environment, Event, Interrupt, Monitor, Resource
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Link, Topology
from repro.topology.routing import links_on_path, lsd_to_msd_route, validate_path
from repro.trace.tracer import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.models import FaultTrace

Router = Callable[[Topology, int, int], list[int]]

#: Fault-blocked flights are aborted and retried at most this many times
#: each before the run is declared stuck (a deterministic router facing a
#: permanent failure re-requests the same dead link forever; adaptive
#: routing re-plans around it on the first retry).
MAX_FAULT_ABORTS_PER_FLIGHT = 3


class WormholeSimulator:
    """Pipelined TFG execution over wormhole-routed links.

    Parameters
    ----------
    timing:
        Bound TFG timing (execution and transmission times).
    topology:
        The interconnect; links are undirected half-duplex resources.
    allocation:
        Task name -> node id.  Nodes may host several tasks (they share
        the node's AP).
    router:
        The deterministic routing function; defaults to LSD->MSD, the
        function used throughout the paper.
    virtual_channels:
        Number of virtual channels per physical link.  1 (default) is the
        paper's primary model; 2 is the "stricter model" of Section 6 in
        which each physical channel is multiplexed between two virtual
        channels and per-message bandwidth halves.
    """

    #: Circuit semantics: a flight keeps every acquired link until the
    #: whole path is set up (wormhole/cut-through).  The store-and-forward
    #: subclass flips this to hop-at-a-time forwarding.
    hold_entire_path = True

    def __init__(
        self,
        timing: TFGTiming,
        topology: Topology,
        allocation: Mapping[str, int],
        router: Router = lsd_to_msd_route,
        virtual_channels: int = 1,
    ):
        validate_allocation(timing.tfg, topology, allocation, exclusive=False)
        if virtual_channels < 1:
            raise SimulationError(
                f"virtual_channels must be >= 1, got {virtual_channels}"
            )
        self.timing = timing
        self.tfg = timing.tfg
        self.topology = topology
        self.allocation = dict(allocation)
        self.router = router
        self.virtual_channels = virtual_channels
        self._route_cache: dict[tuple[int, int], list[int]] = {}

    # -- routing ---------------------------------------------------------

    def route(self, src_node: int, dst_node: int) -> list[int]:
        """The (cached, validated) route the routing function assigns."""
        key = (src_node, dst_node)
        path = self._route_cache.get(key)
        if path is None:
            path = self.router(self.topology, src_node, dst_node)
            validate_path(self.topology, path, src_node, dst_node)
            self._route_cache[key] = path
        return path

    def _flight_links(self, links, src_node: int, dst_node: int):
        """The sequence of links a flight acquires, in order.

        The base class follows the deterministic routing function; the
        adaptive subclass re-plans each hop from live link state.
        """
        yield from links_on_path(self.route(src_node, dst_node))

    # -- simulation ------------------------------------------------------------

    def run(
        self,
        tau_in: float,
        invocations: int | None = None,
        warmup: int | None = None,
        max_recoveries: int | None = None,
        fault_trace: "FaultTrace | None" = None,
        *,
        config: RunConfig | None = None,
    ) -> RunResult:
        """Simulate ``invocations`` periodic invocations at period ``tau_in``.

        Run parameters come from ``config`` (a
        :class:`~repro.results.RunConfig`, the unified run API); the
        individual keywords are retained as a thin shim and, when
        given, override the corresponding config fields.  A
        :class:`~repro.trace.tracer.TraceRecorder` in
        ``config.tracer`` captures the run as structured events —
        ``flight`` spans per message instance, ``link``
        occupancy/blocked spans per channel, ``task`` spans, ``run``
        completion instants — and rides back on the result's ``trace``.

        ``max_recoveries`` bounds deadlock recoveries (see the module
        docstring); it defaults to ``500 * invocations``.  Exhausting it
        raises :class:`~repro.errors.SimulationError`.

        ``fault_trace`` injects link outages (and node faults, expanded to
        their incident links) into the run: failed links stop granting,
        so flights block on them like on any busy channel.  A flight
        stalled on a failed link when the simulation can make no other
        progress is aborted and retried (the deadlock-recovery machinery
        reused as fault detection); adaptive routing then re-plans around
        the failure, while a deterministic router re-requests the dead
        link and the run is declared stuck after
        :data:`MAX_FAULT_ABORTS_PER_FLIGHT` futile retries.
        """
        config = resolve_run_config(
            config,
            invocations=invocations,
            warmup=warmup,
            max_recoveries=max_recoveries,
            fault_trace=fault_trace,
        )
        invocations, warmup = config.invocations, config.warmup
        max_recoveries, fault_trace = config.max_recoveries, config.fault_trace
        tracer = config.tracer
        if tau_in < self.timing.tau_c:
            raise SimulationError(
                f"tau_in={tau_in} below tau_c={self.timing.tau_c}: input "
                "accumulates without bound (paper Section 2)"
            )
        if invocations - warmup < 4:
            raise SimulationError(
                f"need >= 4 measured invocations, got {invocations} with "
                f"warmup={warmup}"
            )

        env = Environment(tracer=tracer)
        links: dict[Link, Resource] = {
            link: Resource(env, capacity=self.virtual_channels, name=str(link))
            for link in self.topology.links
        }
        injector = None
        if fault_trace is not None:
            from repro.faults.injection import FaultInjector

            injector = FaultInjector(env, links, fault_trace, self.topology)
        aps: dict[int, Resource] = {
            node: Resource(env, capacity=1, name=f"AP{node}")
            for node in set(self.allocation.values())
        }
        xmit_scale = float(self.virtual_channels)

        deliveries: dict[tuple[str, int], Event] = {}
        instance_done: dict[tuple[str, int], Event] = {}
        arrivals: dict[int, Event] = {}
        for j in range(invocations):
            for message in self.tfg.messages:
                deliveries[(message.name, j)] = env.event()
            for task in self.tfg.tasks:
                instance_done[(task.name, j)] = env.event()
            arrivals[j] = env.event()

        outputs_pending = {j: len(self.tfg.output_tasks) for j in range(invocations)}
        # Completion instants, recorded in invocation order (pipelining
        # orders instance j before j+1); Monitor gives O(1) length checks
        # in the recovery loop below, unlike the copying ``times`` view.
        completions = Monitor("completions")

        def input_source():
            """External input arrivals every tau_in."""
            for j in range(invocations):
                yield env.timeout(tau_in if j else 0.0)
                arrivals[j].succeed(j)

        # Flights blocked on a link request, for deadlock recovery:
        # key -> (pending request, its link, links already held).
        waiting: dict[tuple[str, int], tuple] = {}
        # Diagnostics: time spent blocked per link, across the whole run.
        link_waits: dict[Link, float] = {}

        def message_flight(message, j):
            """Acquire the route link by link (FCFS), transmit, release.

            The link sequence comes from :meth:`_flight_links` — static
            LSD->MSD for this class, re-planned per hop by the adaptive
            subclass.  On :class:`~repro.sim.events.Interrupt` (deadlock
            recovery) the flight drops everything it holds, backs off one
            transmission time, and starts over from the source.
            """
            key = (message.name, j)
            src_node = self.allocation[message.src]
            dst_node = self.allocation[message.dst]
            launched = env.now
            if src_node == dst_node:
                deliveries[key].succeed()
                return
            if not self.hold_entire_path:
                # Store-and-forward: hold one link at a time, retransmit
                # the whole message per hop.  No hold-and-wait, hence no
                # deadlock — Interrupt never reaches these flights.
                for link in self._flight_links(links, src_node, dst_node):
                    request = links[link].request(owner=key)
                    yield request
                    waited = request.grant_time - request.request_time
                    if waited > 0:
                        link_waits[link] = link_waits.get(link, 0.0) + waited
                    yield env.timeout(
                        self.timing.xmit_time(message.name) * xmit_scale
                    )
                    links[link].release(request)
                if tracer.enabled:
                    tracer.span(
                        "flight", message.name, launched, env.now,
                        track=f"msg {message.name}", invocation=j,
                    )
                deliveries[key].succeed()
                return
            while True:
                held = []
                aborted = False
                for link in self._flight_links(links, src_node, dst_node):
                    request = links[link].request(owner=key)
                    waiting[key] = (request, link, held)
                    try:
                        yield request
                    except Interrupt as interrupt:
                        waiting.pop(key, None)
                        if request.triggered:
                            links[link].release(request)
                        else:
                            links[link].cancel(request)
                        for held_link, held_request in held:
                            links[held_link].release(held_request)
                        if tracer.enabled:
                            tracer.instant(
                                "flight", "abort", env.now,
                                track=f"msg {message.name}", invocation=j,
                                cause=str(interrupt.cause),
                            )
                        aborted = True
                        break
                    waiting.pop(key, None)
                    waited = request.grant_time - request.request_time
                    if waited > 0:
                        link_waits[link] = link_waits.get(link, 0.0) + waited
                    held.append((link, request))
                if not aborted:
                    break
                # Back off so the flight that won the broken cycle can
                # drain instead of immediately re-colliding.
                yield env.timeout(
                    self.timing.xmit_time(message.name) * xmit_scale
                )
            yield env.timeout(self.timing.xmit_time(message.name) * xmit_scale)
            for link, request in held:
                links[link].release(request)
            if tracer.enabled:
                tracer.span(
                    "flight", message.name, launched, env.now,
                    track=f"msg {message.name}", invocation=j,
                )
            deliveries[key].succeed()

        def task_instance(task, j, spawn_flight):
            """One invocation of one task on its node's AP."""
            waits = [deliveries[(m.name, j)] for m in self.tfg.messages_in(task.name)]
            if not waits:
                waits.append(arrivals[j])
            if j > 0:
                waits.append(instance_done[(task.name, j - 1)])
            yield env.all_of(waits)
            ap = aps[self.allocation[task.name]]
            grant = ap.request(owner=(task.name, j))
            yield grant
            exec_start = env.now
            yield env.timeout(self.timing.exec_time(task.name))
            ap.release(grant)
            if tracer.enabled:
                tracer.span(
                    "task", task.name, exec_start, env.now,
                    track=f"node{self.allocation[task.name]}", invocation=j,
                )
            instance_done[(task.name, j)].succeed(env.now)
            for message in self.tfg.messages_out(task.name):
                spawn_flight(message, j)
            if not self.tfg.messages_out(task.name):
                outputs_pending[j] -= 1
                if outputs_pending[j] == 0:
                    completions.record(env.now, j)
                    if tracer.enabled:
                        tracer.instant(
                            "run", "completion", env.now,
                            track="outputs", invocation=j,
                        )

        env.process(input_source())
        flight_processes: dict[tuple[str, int], object] = {}

        def spawn_flight(message, j):
            process = env.process(message_flight(message, j))
            flight_processes[(message.name, j)] = process
            return process

        for j in range(invocations):
            for task in self.tfg.tasks:
                env.process(task_instance(task, j, spawn_flight))

        recoveries = 0
        fault_aborts: dict[tuple[str, int], int] = {}
        budget = (
            max_recoveries if max_recoveries is not None else 500 * invocations
        )
        while True:
            env.run()
            if len(completions) == invocations:
                break
            victim = self._pick_recovery_victim(waiting, links)
            if victim is None:
                victim = self._pick_fault_victim(waiting, links, fault_aborts)
            if victim is None or recoveries >= budget:
                blocked = sorted(str(k) for k in waiting)
                detail = (
                    " (some flights are stuck on permanently failed links)"
                    if injector is not None and injector.failed_links()
                    else ""
                )
                raise SimulationError(
                    f"wormhole deadlock: {invocations - len(completions)} "
                    f"invocations never completed on {self.topology.name} "
                    f"at tau_in={tau_in} after {recoveries} recoveries; "
                    f"blocked messages: {blocked}{detail}"
                )
            recoveries += 1
            if tracer.enabled:
                tracer.instant(
                    "flight", "recovery", env.now,
                    track=f"msg {victim[0]}", invocation=victim[1],
                )
            flight_processes[victim].interrupt(cause="deadlock recovery")

        completion_times = tuple(time for time, _ in completions)
        extra = {
            "virtual_channels": self.virtual_channels,
            "recoveries": recoveries,
            "link_waits": link_waits,
        }
        if injector is not None:
            extra["fault_events"] = injector.events
            extra["fault_aborts"] = sum(fault_aborts.values())
        return RunResult(
            tau_in=tau_in,
            completion_times=completion_times,
            warmup=warmup,
            critical_path_length=self.timing.critical_path().length,
            technique="wormhole",
            extra=extra,
            trace=tracer if isinstance(tracer, TraceRecorder) else None,
        )

    @staticmethod
    def _pick_recovery_victim(waiting, links):
        """The blocked flight to abort.

        Builds the wait-for graph (flight -> holders of the link it waits
        for), finds a hold-and-wait cycle, and aborts the cycle member
        holding the fewest links — the least transmission progress lost.
        Aborting *on* the cycle is what guarantees each recovery makes
        progress; an arbitrary blocked flight may be an innocent bystander
        whose abort recreates the identical stuck state.
        """
        graph: dict[tuple, set] = {}
        for key, (_, wanted_link, _) in waiting.items():
            # A flight re-requesting a link it already holds (possible
            # under adaptive misrouting) is a self-edge: a one-node cycle
            # the DFS below finds like any other.
            blockers = {
                request.owner
                for request in links[wanted_link].holders
                if request.owner in waiting
            }
            graph[key] = blockers

        cycle = _find_cycle(graph)
        if cycle is None:
            return None
        _, j, name = min(
            (len(waiting[key][2]), key[1], key[0]) for key in cycle
        )
        return (name, j)

    @staticmethod
    def _pick_fault_victim(waiting, links, fault_aborts):
        """A flight stalled on a *failed* link to abort and retry.

        Fault detection reuses the recovery machinery: the aborted flight
        drops its held links, backs off, and re-acquires — an adaptive
        router then plans around the dead link.  Each flight gets
        :data:`MAX_FAULT_ABORTS_PER_FLIGHT` retries; a flight exhausting
        them (deterministic routing over a permanent failure) is left
        blocked and the run raises.
        """
        candidates = [
            key
            for key, (_, wanted_link, _) in waiting.items()
            if links[wanted_link].failed
            and fault_aborts.get(key, 0) < MAX_FAULT_ABORTS_PER_FLIGHT
        ]
        if not candidates:
            return None
        _, j, name = min(
            (len(waiting[key][2]), key[1], key[0]) for key in candidates
        )
        fault_aborts[(name, j)] = fault_aborts.get((name, j), 0) + 1
        return (name, j)



def _find_cycle(graph: dict) -> list | None:
    """A cycle in a directed graph as a list of nodes, or None.

    Iterative three-color DFS; deterministic given the (insertion-ordered)
    adjacency so recovery victims are reproducible.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    for root in graph:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(sorted(graph[root], key=str)))]
        color[root] = GREY
        path = [root]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in color:
                    continue
                if color[child] == GREY:
                    return path[path.index(child):]
                if color[child] == WHITE:
                    color[child] = GREY
                    path.append(child)
                    stack.append(
                        (child, iter(sorted(graph[child], key=str)))
                    )
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


def check_allocation_capacity(
    timing: TFGTiming,
    allocation: Mapping[str, int],
    tau_in: float,
) -> None:
    """Sanity check: the total execution time of tasks sharing a node must
    fit inside one period, or the pipeline can never keep up regardless of
    routing."""
    by_node: dict[int, float] = {}
    for name, node in allocation.items():
        by_node[node] = by_node.get(node, 0.0) + timing.exec_time(name)
    overloaded = {n: t for n, t in by_node.items() if t > tau_in + 1e-9}
    if overloaded:
        raise AllocationError(
            f"nodes overloaded for tau_in={tau_in}: {overloaded}"
        )
