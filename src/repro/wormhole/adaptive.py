"""Adaptive cut-through routing — the paper's second Section 3 argument.

The paper notes that output inconsistency is not an artifact of
deterministic routing: "Even when path selection is sensitive to the
network load and makes use of the multiple equivalent paths in the
network, as in adaptive cut-through routing [Nga89], OI may result" — an
adaptive header that dodges one busy link commits itself to a path whose
later links are busy, and the FCFS delays still vary across invocations.

:class:`AdaptiveWormholeSimulator` implements minimal adaptive routing on
top of the wormhole machinery: at every hop the header inspects the
profitable (distance-reducing) links and takes a free one when available,
otherwise queues FCFS on the deterministic first choice.  Everything else
— hold-while-blocked, half-duplex links, deadlock recovery — is inherited.

Under fault injection the adaptivity doubles as fault tolerance: failed
links are never chosen while a live profitable link exists, and when a
failure kills *every* profitable link the header misroutes one hop
through the live neighbor closest to the destination (bounded by a hop
budget so a shattered network cannot walk forever).  This is the
degraded-mode baseline the survivability benchmarks compare scheduled
routing's repair engine against.
"""

from __future__ import annotations

from repro.topology.base import Topology, link_between
from repro.wormhole.simulator import WormholeSimulator


def minimal_next_hops(topology: Topology, current: int, dst: int) -> list[int]:
    """Neighbors of ``current`` that lie on some minimal path to ``dst``,
    in ascending node order (the deterministic fallback is the first)."""
    remaining = topology.distance(current, dst)
    return sorted(
        n for n in topology.neighbors(current)
        if topology.distance(n, dst) == remaining - 1
    )


class AdaptiveWormholeSimulator(WormholeSimulator):
    """Wormhole simulation with per-hop adaptive minimal path selection.

    The route is chosen *during* flight: each hop takes the first idle
    profitable link (idle = no holder and empty queue), falling back to
    the lowest-numbered profitable neighbor when all are busy.  Chosen
    hops are committed — the header never backtracks — which is exactly
    the commitment the paper's argument turns into OI.
    """

    #: Misrouting safety valve: a flight may take at most this many hops
    #: (as a multiple of the healthy route length) before it stops
    #: dodging failures and blocks on a minimal link instead.
    MISROUTE_HOP_FACTOR = 4

    def _plan_hop(
        self,
        links,
        current: int,
        dst: int,
        taken: frozenset = frozenset(),
        visited: frozenset = frozenset(),
        allow_misroute: bool = True,
    ) -> int:
        """The next node the adaptive header advances toward.

        ``taken`` holds the links this flight already acquired (or has
        pending) this attempt: a wormhole flight must never re-request
        one — it would block on itself forever, a deadlock no wait-for
        cycle through *other* flights ever reveals.  ``visited`` holds
        the nodes the walk has passed: revisiting one means the header
        circled around a failure and is burning hop budget on a loop, so
        visited nodes are avoided while any fresh choice exists.
        """
        candidates = minimal_next_hops(self.topology, current, dst)
        live = []
        for neighbor in candidates:
            link = link_between(current, neighbor)
            resource = links[link]
            if resource.failed or link in taken or neighbor in visited:
                continue
            live.append(neighbor)
            if resource.count < resource.capacity and resource.queue_length == 0:
                return neighbor
        if live:
            return live[0]
        if allow_misroute:
            # Every profitable link is down, held, or loops back:
            # misroute one hop through the live unvisited neighbor
            # closest to the destination (lowest id on ties).
            detour = [
                n for n in self.topology.neighbors(current)
                if not links[link_between(current, n)].failed
                and link_between(current, n) not in taken
                and n not in visited
            ]
            if detour:
                chosen = min(
                    detour, key=lambda n: (self.topology.distance(n, dst), n)
                )
                env = links[link_between(current, chosen)].env
                if env.tracer.enabled:
                    env.tracer.instant(
                        "flight",
                        "misroute",
                        env.now,
                        track=str(link_between(current, chosen)),
                        at_node=current,
                        toward=chosen,
                        dst=dst,
                    )
                return chosen
        # Self-avoidance exhausted (or budget spent): block on the first
        # minimal link not already held and wait for a restore/abort;
        # with every escape held, the deterministic choice at least makes
        # the stall visible to the recovery machinery.
        for neighbor in candidates:
            if link_between(current, neighbor) not in taken:
                return neighbor
        return candidates[0]

    # The base class keeps routing logic inside message_flight; rather
    # than duplicate the whole run() body, it exposes the link sequence
    # through `_flight_links`, which we make dynamic here.
    def _flight_links(self, links, src_node: int, dst_node: int):
        current = src_node
        budget = self.MISROUTE_HOP_FACTOR * max(
            self.topology.distance(src_node, dst_node), 1
        )
        taken: set = set()
        visited = {src_node}
        hops = 0
        while current != dst_node:
            neighbor = self._plan_hop(
                links, current, dst_node,
                taken=frozenset(taken),
                visited=frozenset(visited),
                allow_misroute=hops < budget,
            )
            link = link_between(current, neighbor)
            taken.add(link)
            visited.add(neighbor)
            yield link
            current = neighbor
            hops += 1