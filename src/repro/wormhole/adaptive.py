"""Adaptive cut-through routing — the paper's second Section 3 argument.

The paper notes that output inconsistency is not an artifact of
deterministic routing: "Even when path selection is sensitive to the
network load and makes use of the multiple equivalent paths in the
network, as in adaptive cut-through routing [Nga89], OI may result" — an
adaptive header that dodges one busy link commits itself to a path whose
later links are busy, and the FCFS delays still vary across invocations.

:class:`AdaptiveWormholeSimulator` implements minimal adaptive routing on
top of the wormhole machinery: at every hop the header inspects the
profitable (distance-reducing) links and takes a free one when available,
otherwise queues FCFS on the deterministic first choice.  Everything else
— hold-while-blocked, half-duplex links, deadlock recovery — is inherited.
"""

from __future__ import annotations

from repro.topology.base import Topology, link_between
from repro.wormhole.simulator import WormholeSimulator


def minimal_next_hops(topology: Topology, current: int, dst: int) -> list[int]:
    """Neighbors of ``current`` that lie on some minimal path to ``dst``,
    in ascending node order (the deterministic fallback is the first)."""
    remaining = topology.distance(current, dst)
    return sorted(
        n for n in topology.neighbors(current)
        if topology.distance(n, dst) == remaining - 1
    )


class AdaptiveWormholeSimulator(WormholeSimulator):
    """Wormhole simulation with per-hop adaptive minimal path selection.

    The route is chosen *during* flight: each hop takes the first idle
    profitable link (idle = no holder and empty queue), falling back to
    the lowest-numbered profitable neighbor when all are busy.  Chosen
    hops are committed — the header never backtracks — which is exactly
    the commitment the paper's argument turns into OI.
    """

    def _plan_hop(self, links, current: int, dst: int) -> int:
        """The next node the adaptive header advances toward."""
        candidates = minimal_next_hops(self.topology, current, dst)
        for neighbor in candidates:
            resource = links[link_between(current, neighbor)]
            if resource.count < resource.capacity and resource.queue_length == 0:
                return neighbor
        return candidates[0]

    # The base class keeps routing logic inside message_flight; rather
    # than duplicate the whole run() body, it exposes the link sequence
    # through `_flight_links`, which we make dynamic here.
    def _flight_links(self, links, src_node: int, dst_node: int):
        current = src_node
        while current != dst_node:
            neighbor = self._plan_hop(links, current, dst_node)
            yield link_between(current, neighbor)
            current = neighbor
