"""Wormhole routing (WR) — the paper's baseline (Section 3).

Wormhole routing is modelled exactly as in the paper's own evaluation:
a message follows the deterministic LSD->MSD route, acquiring links hop by
hop; contention on a link is resolved first-come-first-served; a blocked
message keeps holding every link it has acquired; once the full path is
set up the message transmits for ``m/B`` (transmission time dominates
propagation) and then releases everything.

Running a task-level pipelined TFG through this model exhibits **output
inconsistency**: messages of different invocations contend, the winner
alternates, and the output-generation interval oscillates — the behaviour
scheduled routing is designed to eliminate.
"""

from repro.wormhole.adaptive import AdaptiveWormholeSimulator
from repro.wormhole.analysis import OiRisk, predict_oi_risks
from repro.wormhole.simulator import WormholeSimulator
from repro.wormhole.store_forward import StoreAndForwardSimulator

__all__ = [
    "AdaptiveWormholeSimulator",
    "OiRisk",
    "StoreAndForwardSimulator",
    "WormholeSimulator",
    "predict_oi_risks",
]
