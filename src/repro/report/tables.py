"""ASCII table formatting."""

from __future__ import annotations

from typing import Sequence

from repro.metrics.series import SpikeStats


def format_spike(stats: SpikeStats, digits: int = 3) -> str:
    """Render a spike as ``min/mean/max`` (collapses when constant)."""
    if stats.is_constant(10 ** -digits):
        return f"{stats.mean:.{digits}f}"
    return (
        f"{stats.minimum:.{digits}f}/{stats.mean:.{digits}f}/"
        f"{stats.maximum:.{digits}f}"
    )


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width table with a rule under the header.

    >>> print(format_table(("a", "b"), [(1, "x"), (22, "yy")]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        cells.append([str(c) for c in row])
    widths = [
        max(len(line[col]) for line in cells) for col in range(len(headers))
    ]
    def render(line: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(line, widths)).rstrip()

    rule = "-+-".join("-" * w for w in widths)
    body = [render(cells[0]), rule] + [render(line) for line in cells[1:]]
    if title:
        body.insert(0, title)
    return "\n".join(body)
