"""Plain-text reporting of experiment series.

The benchmark harness regenerates each of the paper's figures as a printed
table: one row per load point, one column per plotted series.  This
package owns the formatting so that benches stay thin.
"""

from repro.report.tables import format_table, format_spike

__all__ = ["format_spike", "format_table"]
