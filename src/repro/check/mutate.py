"""Seeded schedule corruptions for measuring analyzer kill rate.

Every mutation takes a valid :class:`~repro.core.switching.
CommunicationSchedule` and returns a corrupted deep copy built *without*
the compiler's validation, modelling a concrete failure mode: a buggy
compiler stage, a torn cache entry, a tampered schedule file, a flipped
bit in a CP's command memory.  The test suite asserts the conformance
analyzer (:func:`repro.check.analyzer.analyze_schedule`) detects at
least 95% of a seeded corpus of these corruptions; the differential
fuzzer reuses them as self-checks.

Mutations that edit slots regenerate the node schedules so the
corruption is *consistent* (a wrong schedule, not merely an
inconsistent object) — otherwise every slot mutation would trivially
trip the omega cross-check instead of the invariant it targets.
Command-level mutations (swapped ports, deleted command, retimed
command) edit only the node schedules, modelling per-CP corruption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.switching import (
    CommunicationSchedule,
    NodeSchedule,
    SwitchCommand,
    TransmissionSlot,
    _slot_commands,
)


@dataclass(frozen=True)
class MutatedSchedule:
    """A corrupted schedule plus what was done to it."""

    schedule: CommunicationSchedule
    mutation: str
    detail: str


class MutationSkipped(Exception):
    """The schedule offers no site for this mutation (e.g. a single-slot
    schedule cannot host a swap between two messages)."""


def _clone(schedule: CommunicationSchedule) -> CommunicationSchedule:
    """Deep-enough copy: fresh dicts/tuples, shared immutable leaves."""
    return CommunicationSchedule(
        tau_in=schedule.tau_in,
        slots={name: tuple(slots) for name, slots in schedule.slots.items()},
        node_schedules=dict(schedule.node_schedules),
        bounds=schedule.bounds,
        assignment=dict(schedule.assignment),
    )


def _rebuild_omega(schedule: CommunicationSchedule) -> None:
    """Regenerate the node schedules as the projection of the slots."""
    per_node: dict[int, list[SwitchCommand]] = {}
    for slots in schedule.slots.values():
        for slot in slots:
            for command, node in _slot_commands(slot):
                per_node.setdefault(node, []).append(command)
    schedule.node_schedules = {
        node: NodeSchedule(
            node=node,
            commands=tuple(sorted(commands, key=lambda c: (c.time, c.message))),
        )
        for node, commands in per_node.items()
    }


def _pick_slot(
    schedule: CommunicationSchedule, rng: random.Random
) -> tuple[str, int, TransmissionSlot]:
    name = rng.choice(sorted(schedule.slots))
    index = rng.randrange(len(schedule.slots[name]))
    return name, index, schedule.slots[name][index]


def _replace_slot(
    schedule: CommunicationSchedule,
    name: str,
    index: int,
    slot: TransmissionSlot,
) -> None:
    slots = list(schedule.slots[name])
    slots[index] = slot
    schedule.slots[name] = tuple(slots)
    _rebuild_omega(schedule)


# -- the mutations -------------------------------------------------------------


def shift_slot(schedule: CommunicationSchedule, rng: random.Random) -> str:
    """Move one slot by roughly a tenth of the frame (consistently, node
    schedules included) — the classic off-by-one-interval compiler bug."""
    name, index, slot = _pick_slot(schedule, rng)
    delta = schedule.tau_in * rng.uniform(0.08, 0.2)
    if slot.start + delta + slot.duration > schedule.tau_in:
        delta = -delta
    shifted = replace(slot, start=max(slot.start + delta, 0.0))
    _replace_slot(schedule, name, index, shifted)
    return f"slot {index} of {name!r} moved by {delta:+.4f}"


def overrun_window_eps(
    schedule: CommunicationSchedule, rng: random.Random
) -> str:
    """Stretch one slot a hair past its window — the off-by-EPS class of
    boundary bug (just beyond the comparison tolerance)."""
    name, index, slot = _pick_slot(schedule, rng)
    excess = 5e-7  # far below a packet time, well above EPS
    stretched = replace(slot, duration=slot.duration + excess)
    _replace_slot(schedule, name, index, stretched)
    return f"slot {index} of {name!r} stretched by {excess:g}"


def swap_crossbar_ports(
    schedule: CommunicationSchedule, rng: random.Random
) -> str:
    """Reverse the input/output ports of one switching command — a CP
    programmed to route the flit backwards."""
    candidates = [
        (node, i)
        for node, ns in schedule.node_schedules.items()
        for i, c in enumerate(ns.commands)
        if c.input_port != c.output_port
    ]
    if not candidates:
        raise MutationSkipped("no commands to swap")
    node, i = candidates[rng.randrange(len(candidates))]
    commands = list(schedule.node_schedules[node].commands)
    c = commands[i]
    commands[i] = replace(
        c, input_port=c.output_port, output_port=c.input_port
    )
    schedule.node_schedules[node] = NodeSchedule(
        node=node, commands=tuple(commands)
    )
    return (
        f"node {node} command {i} ports swapped "
        f"({c.input_port!r}<->{c.output_port!r})"
    )


def delete_command(
    schedule: CommunicationSchedule, rng: random.Random
) -> str:
    """Drop one switching command from one node's schedule — a lost
    entry in a CP's command memory."""
    nodes = [n for n, ns in schedule.node_schedules.items() if ns.commands]
    if not nodes:
        raise MutationSkipped("no node schedules")
    node = rng.choice(sorted(nodes))
    commands = list(schedule.node_schedules[node].commands)
    i = rng.randrange(len(commands))
    dropped = commands.pop(i)
    schedule.node_schedules[node] = NodeSchedule(
        node=node, commands=tuple(commands)
    )
    return f"node {node} lost command {i} ({dropped.message!r})"


def retime_command(
    schedule: CommunicationSchedule, rng: random.Random
) -> str:
    """Nudge one switching command's start time — a CP clock programmed
    against the wrong frame offset."""
    nodes = [n for n, ns in schedule.node_schedules.items() if ns.commands]
    if not nodes:
        raise MutationSkipped("no node schedules")
    node = rng.choice(sorted(nodes))
    commands = list(schedule.node_schedules[node].commands)
    i = rng.randrange(len(commands))
    delta = schedule.tau_in * rng.uniform(0.03, 0.1)
    c = commands[i]
    commands[i] = replace(c, time=max(0.0, c.time - delta))
    schedule.node_schedules[node] = NodeSchedule(
        node=node, commands=tuple(commands)
    )
    return f"node {node} command {i} retimed by -{delta:.4f}"


def drop_slot(schedule: CommunicationSchedule, rng: random.Random) -> str:
    """Delete one transmission slot entirely — the message is silently
    under-scheduled (its tail never transmitted)."""
    name, index, slot = _pick_slot(schedule, rng)
    slots = list(schedule.slots[name])
    slots.pop(index)
    schedule.slots[name] = tuple(slots)
    _rebuild_omega(schedule)
    return f"slot {index} of {name!r} deleted ({slot.duration:.4f}us lost)"


def truncate_slot(
    schedule: CommunicationSchedule, rng: random.Random
) -> str:
    """Halve one slot's duration — partial transmission, missed coverage."""
    name, index, slot = _pick_slot(schedule, rng)
    _replace_slot(
        schedule, name, index, replace(slot, duration=slot.duration / 2)
    )
    return f"slot {index} of {name!r} truncated to half duration"


def reroute_hop(schedule: CommunicationSchedule, rng: random.Random) -> str:
    """Rewrite one intermediate hop of a message's path to another node
    already on the path — a corrupted routing table creating a loop.

    (Rewiring to an *arbitrary* node can by luck produce a different but
    equally valid route, which is not a corruption at all; revisiting a
    path node is a guaranteed invariant violation.)"""
    candidates = [
        name for name, path in schedule.assignment.items()
        if len(path) >= 3 and name in schedule.slots
    ]
    if not candidates:
        raise MutationSkipped("no multi-hop paths to reroute")
    name = rng.choice(sorted(candidates))
    path = list(schedule.assignment[name])
    hop = rng.randrange(1, len(path) - 1)
    replacement = rng.choice(
        [n for i, n in enumerate(path) if i != hop]
    )
    old = path[hop]
    path[hop] = replacement
    schedule.assignment[name] = tuple(path)
    schedule.slots[name] = tuple(
        replace(slot, path=tuple(path)) for slot in schedule.slots[name]
    )
    _rebuild_omega(schedule)
    return f"{name!r} hop {hop} rewired {old}->{replacement}"


def truncate_path(
    schedule: CommunicationSchedule, rng: random.Random
) -> str:
    """Cut a message's slots short of the destination — the flits would
    have to wait in an intermediate node's buffer (buffering violation)."""
    candidates = [
        name for name, path in schedule.assignment.items()
        if len(path) >= 3 and name in schedule.slots
    ]
    if not candidates:
        raise MutationSkipped("no multi-hop paths to truncate")
    name = rng.choice(sorted(candidates))
    partial = tuple(schedule.assignment[name][:-1])
    schedule.slots[name] = tuple(
        replace(slot, path=partial) for slot in schedule.slots[name]
    )
    _rebuild_omega(schedule)
    return f"{name!r} slots truncated to partial path {partial}"


def collide_slots(
    schedule: CommunicationSchedule, rng: random.Random
) -> str:
    """Retime one slot onto another message's window on a shared link —
    direct contention."""
    by_link: dict[tuple[int, int], list[tuple[str, int]]] = {}
    for name, slots in schedule.slots.items():
        for i, slot in enumerate(slots):
            for u, v in zip(slot.path, slot.path[1:]):
                by_link.setdefault((min(u, v), max(u, v)), []).append(
                    (name, i)
                )
    shared = [
        (link, users) for link, users in sorted(by_link.items())
        if len({name for name, _ in users}) >= 2
    ]
    if not shared:
        raise MutationSkipped("no link shared by two messages")
    link, users = shared[rng.randrange(len(shared))]
    (name_a, i_a), (name_b, i_b) = rng.sample(
        sorted({(n, i) for n, i in users}), 2
    )
    victim = schedule.slots[name_b][i_b]
    moved = replace(schedule.slots[name_a][i_a], start=victim.start)
    _replace_slot(schedule, name_a, i_a, moved)
    return (
        f"slot {i_a} of {name_a!r} retimed onto slot {i_b} of "
        f"{name_b!r} (link {link})"
    )


#: Registry of all mutation operators, by stable name.
MUTATIONS: dict[
    str, Callable[[CommunicationSchedule, random.Random], str]
] = {
    "shift-slot": shift_slot,
    "overrun-window-eps": overrun_window_eps,
    "swap-crossbar-ports": swap_crossbar_ports,
    "delete-command": delete_command,
    "retime-command": retime_command,
    "drop-slot": drop_slot,
    "truncate-slot": truncate_slot,
    "reroute-hop": reroute_hop,
    "truncate-path": truncate_path,
    "collide-slots": collide_slots,
}


def mutate_schedule(
    schedule: CommunicationSchedule,
    seed: int,
    mutation: str | None = None,
) -> MutatedSchedule:
    """Apply one seeded corruption and return the corrupted copy.

    ``mutation`` names an operator from :data:`MUTATIONS`; when omitted
    the seed picks one.  Raises :class:`MutationSkipped` when the
    schedule offers no site for the requested operator.
    """
    rng = random.Random(seed)
    name = mutation or rng.choice(sorted(MUTATIONS))
    corrupted = _clone(schedule)
    detail = MUTATIONS[name](corrupted, rng)
    return MutatedSchedule(schedule=corrupted, mutation=name, detail=detail)
