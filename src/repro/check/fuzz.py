"""Seeded differential fuzzing of the SR compiler pipeline.

Every fuzz point is fully determined by one integer seed: a random
layered TFG, a topology large enough to host it, a seeded random
allocation, a bandwidth derived so every message fits its window, and a
``tau_in`` picked from a small load grid.  Each point is then compiled
and cross-checked along three independent axes:

- **backend differential** — the point is compiled once per available LP
  backend (always the pure-Python reference simplex; HiGHS too when
  scipy is importable).  All backends must agree on feasibility, and
  every feasible schedule must *individually* pass the full
  verification stack (the LP solutions themselves may legitimately
  differ).
- **verifier differential** — for each feasible schedule, the static
  conformance analyzer (:func:`repro.check.analyzer.analyze_schedule`),
  the crossbar replay (:func:`repro.cp.replay_schedule`) and the
  discrete-event replay
  (:class:`~repro.core.executor.ScheduledRoutingExecutor`) must all
  reach the same verdict: pass.
- **cache differential** — the point is compiled cold through a disk
  cache and again warm through a *fresh* cache object over the same
  directory; the served result must be byte-identical to the fresh
  compilation (same canonical entry for schedules, same reconstructed
  error for negative entries).
- **delta differential** — one input element is perturbed (a message
  size, a topology link, or the task speed — the seed picks which) and
  the perturbed instance is compiled over the original's warm artifact
  cache.  The delta recompile must be byte-identical (modulo solver
  wall times and tallies — it legitimately performs fewer LP solves) to
  a cold compile of the perturbed instance, proving stage-level
  artifact reuse never changes results.
- **prescreen soundness** — the static instance diagnoser
  (:mod:`repro.diagnose`) runs on every point; a statically refuted
  point must be infeasible on *every* backend, and every refutation's
  witness must survive the independent replay verifier
  (:func:`repro.diagnose.verify_refutation`).

Any disagreement is shrunk (smaller TFG variants re-checked under the
same seed) and written to a JSON reproducer file — see
``docs/verification.md`` for the format.  The ``repro-sr fuzz`` CLI and
the CI fuzz job drive :func:`run_fuzz` over a fixed seed corpus.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.cache import ScheduleCache
from repro.cache.store import error_to_entry, routing_to_entry
from repro.check.analyzer import analyze_schedule
from repro.core.compiler import CompilerConfig, ScheduledRouting, compile_schedule
from repro.core.executor import ScheduledRoutingExecutor
from repro.cp import replay_schedule
from repro.errors import ReproError, SchedulingError
from repro.mapping.allocation import Allocation, random_allocation
from repro.solvers import have_scipy
from repro.tfg.analysis import TFGTiming
from repro.tfg.synth import random_layered_tfg
from repro.topology import Mesh, Torus, binary_hypercube
from repro.topology.base import Topology

#: The materialized inputs of one fuzz point: (timing, topology,
#: allocation, tau_in) as returned by :meth:`FuzzPoint.build`.
PointInputs = tuple[TFGTiming, Topology, Allocation, float]

#: One backend compilation: ``("feasible", routing)`` or
#: ``("infeasible", error)``.
CompileRun = tuple[str, "ScheduledRouting | SchedulingError"]

#: Loads the seed grid draws tau_in from (tau_in = tau_c / load).
_LOADS = (0.5, 0.75, 1.0)

#: Compiler knobs kept small so a fuzz run stays CI-friendly.
_CONFIG = dict(seed=0, max_paths=16, max_restarts=2, retries=1)

#: DES replay length — warmup plus the executor's minimum measured window.
_INVOCATIONS = 8
_WARMUP = 4


def _topologies() -> dict[str, Callable[[], Topology]]:
    return {
        "cube3": lambda: binary_hypercube(3),
        "mesh33": lambda: Mesh((3, 3)),
        "torus44": lambda: Torus((4, 4)),
    }


@dataclass(frozen=True)
class FuzzPoint:
    """One deterministic problem instance, reconstructible from its fields."""

    seed: int
    layers: int
    width: int
    edge_probability: float
    topology: str
    load: float

    @staticmethod
    def from_seed(seed: int) -> "FuzzPoint":
        import random

        rng = random.Random(seed)
        layers = rng.randint(2, 3)
        width = rng.randint(1, 3)
        edge_probability = rng.uniform(0.5, 0.9)
        tasks = layers * width
        names = [
            name for name, make in _topologies().items()
            if make().num_nodes >= tasks
        ]
        return FuzzPoint(
            seed=seed,
            layers=layers,
            width=width,
            edge_probability=round(edge_probability, 3),
            topology=rng.choice(names),
            load=rng.choice(_LOADS),
        )

    def build(self) -> "PointInputs":
        """Materialize (timing, topology, allocation, tau_in)."""
        tfg = random_layered_tfg(
            self.seed,
            layers=self.layers,
            width=self.width,
            edge_probability=self.edge_probability,
            name=f"fuzz{self.seed}",
        )
        topology = _topologies()[self.topology]()
        speeds = 40.0
        tau_c = max(t.ops / speeds for t in tfg.tasks)
        max_size = max((m.size_bytes for m in tfg.messages), default=0.0)
        # Bandwidth such that the longest message fits well inside the
        # tau_c message window (tau_m <= tau_c / 1.1).
        bandwidth = max(64.0, 1.1 * max_size / tau_c)
        timing = TFGTiming(tfg, bandwidth=bandwidth, speeds=speeds)
        allocation = random_allocation(tfg, topology, self.seed)
        tau_in = timing.tau_c / self.load
        return timing, topology, allocation, tau_in

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "layers": self.layers,
            "width": self.width,
            "edge_probability": self.edge_probability,
            "topology": self.topology,
            "load": self.load,
        }


@dataclass
class PointOutcome:
    """What happened at one fuzz point."""

    point: FuzzPoint
    verdict: str = ""  # "feasible" | "infeasible" | "error"
    backends: tuple[str, ...] = ()
    disagreements: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz run."""

    outcomes: list[PointOutcome]
    reproducers: list[Path]
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def disagreements(self) -> list[str]:
        return [d for o in self.outcomes for d in o.disagreements]

    def summary(self) -> str:
        feasible = sum(1 for o in self.outcomes if o.verdict == "feasible")
        lines = [
            f"fuzz: {len(self.outcomes)} points "
            f"({feasible} feasible), "
            f"{len(self.disagreements)} disagreement(s), "
            f"{self.elapsed_s:.1f}s"
        ]
        lines.extend(f"  DISAGREE {d}" for d in self.disagreements)
        return "\n".join(lines)


def _entry_digest(routing: ScheduledRouting) -> str:
    """Canonical JSON digest of a compilation result.

    Wall-clock solver timings are stripped — they vary run to run and
    say nothing about *what* was compiled.
    """
    entry = routing_to_entry(routing)
    stats = entry.get("solver_stats")
    if isinstance(stats, dict):
        entry["solver_stats"] = {
            k: v for k, v in stats.items() if k != "lp_wall_ms"
        }
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def _error_digest(error: SchedulingError) -> str:
    return json.dumps(
        error_to_entry(error), sort_keys=True, separators=(",", ":")
    )


def _compile(
    point_inputs: "PointInputs",
    backend: str,
    cache: ScheduleCache | None = None,
) -> "CompileRun":
    """Compile one point; return ("feasible", routing) or ("infeasible", err)."""
    timing, topology, allocation, tau_in = point_inputs
    config = CompilerConfig(lp_backend=backend, **_CONFIG)
    try:
        routing = compile_schedule(
            timing, topology, allocation, tau_in, config, cache=cache
        )
        return "feasible", routing
    except SchedulingError as error:
        return "infeasible", error


def _verify_feasible(
    point: FuzzPoint,
    backend: str,
    inputs: "PointInputs",
    routing: ScheduledRouting,
    out: list[str],
) -> None:
    """Verifier differential: analyzer ≡ crossbar replay ≡ DES replay."""
    timing, topology, allocation, tau_in = inputs
    report = analyze_schedule(
        routing.schedule, topology, timing=timing, allocation=allocation
    )
    if not report.ok:
        out.append(
            f"seed {point.seed} [{backend}]: analyzer flagged a compiled "
            f"schedule: {report.summary()}"
        )
    try:
        replay_schedule(routing.schedule, topology)
    except ReproError as error:
        out.append(
            f"seed {point.seed} [{backend}]: crossbar replay rejected a "
            f"compiled schedule: {error}"
        )
    try:
        executor = ScheduledRoutingExecutor(
            routing, timing, topology, allocation
        )
        executor.run(invocations=_INVOCATIONS, warmup=_WARMUP)
    except ReproError as error:
        out.append(
            f"seed {point.seed} [{backend}]: DES replay rejected a "
            f"compiled schedule: {error}"
        )


def _check_prescreen(
    point: FuzzPoint,
    inputs: "PointInputs",
    verdicts: Mapping[str, str],
    out: list[str],
) -> None:
    """Prescreen soundness: statically refuted ⇒ every backend infeasible.

    The compilations deliberately run *without* the prescreen, so a
    refuted point still exercises both LP backends; this differential
    then demands (a) no backend found the point feasible and (b) every
    refutation's witness survives the independent replay verifier.
    """
    from repro.diagnose import diagnose_instance, verify_refutation

    timing, topology, allocation, tau_in = inputs
    diagnosis = diagnose_instance(timing, topology, allocation, tau_in)
    if not diagnosis.refuted:
        return
    feasible = sorted(b for b, v in verdicts.items() if v == "feasible")
    if feasible:
        out.append(
            f"seed {point.seed}: prescreen UNSOUND — statically refuted "
            f"({diagnosis.summary()}) yet feasible on: {', '.join(feasible)}"
        )
    for refutation in diagnosis.instance_refutations:
        problems = verify_refutation(
            timing, topology, allocation, tau_in, refutation
        )
        if problems:
            out.append(
                f"seed {point.seed}: refutation witness failed independent "
                f"replay [{refutation.kind}]: " + "; ".join(problems)
            )


def _check_cache(
    point: FuzzPoint,
    backend: str,
    inputs: "PointInputs",
    fresh: "CompileRun",
    cache_root: Path,
    out: list[str],
) -> None:
    """Cache differential: cold-store then warm-serve must equal fresh."""
    verdict, result = fresh
    cache_dir = cache_root / f"seed{point.seed}-{backend}"
    cold = _compile(inputs, backend, cache=ScheduleCache(cache_dir))
    warm = _compile(inputs, backend, cache=ScheduleCache(cache_dir))
    for label, run in (("cold", cold), ("warm", warm)):
        if run[0] != verdict:
            out.append(
                f"seed {point.seed} [{backend}]: {label}-cache verdict "
                f"{run[0]} != fresh verdict {verdict}"
            )
            return
    if verdict == "feasible":
        want = _entry_digest(result)
        for label, run in (("cold", cold), ("warm", warm)):
            if _entry_digest(run[1]) != want:
                out.append(
                    f"seed {point.seed} [{backend}]: {label}-cache schedule "
                    f"differs from fresh compilation"
                )
    else:
        want = _error_digest(result)
        for label, run in (("cold", cold), ("warm", warm)):
            if _error_digest(run[1]) != want:
                out.append(
                    f"seed {point.seed} [{backend}]: {label}-cache failure "
                    f"differs from fresh failure"
                )


def _perturb(point: FuzzPoint, inputs: "PointInputs") -> "PointInputs | None":
    """One deterministic single-element perturbation of a point's inputs.

    The seed selects the perturbation kind (message size, link drop,
    task speed); kinds that do not apply — no messages to shrink, no
    link whose removal keeps the topology usable — fall through to the
    next kind.  Returns ``None`` only when no perturbation applies.
    """
    timing, topology, allocation, tau_in = inputs
    for kind in range(point.seed % 3, point.seed % 3 + 3):
        perturbed = _PERTURBATIONS[kind % 3](point, inputs)
        if perturbed is not None:
            return perturbed
    return None


def _perturb_size(
    point: FuzzPoint, inputs: "PointInputs"
) -> "PointInputs | None":
    """Halve the first message's size; everything else unchanged."""
    from repro.tfg.graph import TaskFlowGraph

    timing, topology, allocation, tau_in = inputs
    tfg = timing.tfg
    if not tfg.messages:
        return None
    target = tfg.messages[0].name
    perturbed = TaskFlowGraph(tfg.name)
    for task in tfg.tasks:
        perturbed.add_task(task.name, task.ops)
    for message in tfg.messages:
        size = (
            message.size_bytes * 0.5
            if message.name == target
            else message.size_bytes
        )
        perturbed.add_message(message.name, message.src, message.dst, size)
    new_timing = TFGTiming(
        perturbed, bandwidth=timing.bandwidth, speeds=40.0
    )
    return new_timing, topology, allocation, tau_in


def _perturb_link(
    point: FuzzPoint, inputs: "PointInputs"
) -> "PointInputs | None":
    """Drop the first link whose removal leaves the topology usable."""
    from repro.faults.residual import ResidualTopology

    timing, topology, allocation, tau_in = inputs
    routed = [
        (allocation[m.src], allocation[m.dst])
        for m in timing.tfg.messages
        if allocation[m.src] != allocation[m.dst]
    ]
    for link in sorted(topology.links):
        residual = ResidualTopology(topology, [link])
        if all(residual.connected(u, v) for u, v in routed):
            return timing, residual, allocation, tau_in
    return None


def _perturb_speed(
    point: FuzzPoint, inputs: "PointInputs"
) -> "PointInputs | None":
    """Slow the processors 10%; tau_in keeps the point's load factor."""
    timing, topology, allocation, tau_in = inputs
    new_timing = TFGTiming(
        timing.tfg, bandwidth=timing.bandwidth, speeds=36.0
    )
    return new_timing, topology, allocation, new_timing.tau_c / point.load


_PERTURBATIONS = (_perturb_size, _perturb_link, _perturb_speed)


def _delta_digest(run: "CompileRun") -> str:
    """Digest for the delta differential: solver tallies stripped.

    A delta recompile answers reused stages from artifacts instead of
    re-solving their LPs, so solve counts and iteration tallies differ
    legitimately from a cold compile; everything else must match.
    """
    verdict, result = run
    if verdict == "feasible":
        entry = routing_to_entry(result)
        entry.pop("solver_stats", None)
        return json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return _error_digest(result)


def _check_delta(
    point: FuzzPoint,
    backend: str,
    inputs: "PointInputs",
    cache_root: Path,
    out: list[str],
) -> None:
    """Delta differential: perturb one input, recompile over warm artifacts.

    The original point is compiled cold into a cache directory (storing
    its per-stage artifacts); the perturbed instance is then compiled
    over that warm directory (the delta path: its monolithic key misses,
    stage artifacts serve whatever prefix is still valid) and against a
    fresh directory (the cold reference).  Both must agree byte-for-byte
    modulo solver tallies.
    """
    perturbed = _perturb(point, inputs)
    if perturbed is None:
        return
    warm_dir = cache_root / f"seed{point.seed}-{backend}-delta"
    cold_dir = cache_root / f"seed{point.seed}-{backend}-delta-cold"
    _compile(inputs, backend, cache=ScheduleCache(warm_dir))
    delta = _compile(perturbed, backend, cache=ScheduleCache(warm_dir))
    cold = _compile(perturbed, backend, cache=ScheduleCache(cold_dir))
    if delta[0] != cold[0]:
        out.append(
            f"seed {point.seed} [{backend}]: delta-recompile verdict "
            f"{delta[0]} != cold verdict {cold[0]} on perturbed instance"
        )
        return
    if _delta_digest(delta) != _delta_digest(cold):
        out.append(
            f"seed {point.seed} [{backend}]: delta recompile differs from "
            f"cold compile of the perturbed instance"
        )


def check_point(
    point: FuzzPoint, cache_root: Path | None = None
) -> PointOutcome:
    """Run every differential at one point and collect disagreements."""
    outcome = PointOutcome(point=point)
    backends = ["reference"] + (["highs"] if have_scipy() else [])
    outcome.backends = tuple(backends)
    try:
        inputs = point.build()
    except ReproError as error:
        outcome.verdict = "error"
        outcome.disagreements.append(
            f"seed {point.seed}: point construction failed: {error}"
        )
        return outcome

    runs = {b: _compile(inputs, b) for b in backends}
    verdicts = {b: v for b, (v, _) in runs.items()}
    outcome.verdict = verdicts[backends[0]]
    _check_prescreen(point, inputs, verdicts, outcome.disagreements)
    if len(set(verdicts.values())) > 1:
        outcome.disagreements.append(
            f"seed {point.seed}: backends disagree on feasibility: "
            + ", ".join(f"{b}={v}" for b, v in sorted(verdicts.items()))
        )
        return outcome

    for backend in backends:
        verdict, result = runs[backend]
        if verdict == "feasible":
            _verify_feasible(
                point, backend, inputs, result, outcome.disagreements
            )

    with tempfile.TemporaryDirectory(dir=cache_root) as tmp:
        for backend in backends:
            _check_cache(
                point, backend, inputs, runs[backend], Path(tmp),
                outcome.disagreements,
            )
        # Delta differential once per point, on the fastest backend —
        # it performs three full compilations on its own.
        _check_delta(
            point, backends[-1], inputs, Path(tmp), outcome.disagreements
        )
    return outcome


def shrink_point(point: FuzzPoint, cache_root: Path | None = None,
                 attempts: int = 6) -> FuzzPoint:
    """Greedily look for a smaller point showing the same kind of failure.

    Tries progressively smaller (layers, width) variants of the failing
    point; returns the smallest variant that still disagrees, or the
    original point when none does.  Bounded by ``attempts`` re-checks.
    """
    best = point
    tried = 0
    for layers in range(2, point.layers + 1):
        for width in range(1, point.width + 1):
            if (layers, width) >= (best.layers, best.width):
                continue
            if tried >= attempts:
                return best
            tried += 1
            candidate = FuzzPoint(
                seed=point.seed,
                layers=layers,
                width=width,
                edge_probability=point.edge_probability,
                topology=point.topology,
                load=point.load,
            )
            if not check_point(candidate, cache_root).ok:
                return candidate
    return best


def write_reproducer(
    outcome: PointOutcome, out_dir: Path
) -> Path:
    """Serialize a failing point so ``repro-sr fuzz --seed N`` replays it."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"fuzz-{outcome.point.seed}.json"
    payload = {
        "format": "repro.fuzz-reproducer/1",
        "point": outcome.point.to_dict(),
        "backends": list(outcome.backends),
        "disagreements": outcome.disagreements,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_fuzz(
    seeds: Iterable[int] | Sequence[int],
    out_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Fuzz every seed; shrink + write a reproducer per disagreement."""
    started = time.perf_counter()
    outcomes: list[PointOutcome] = []
    reproducers: list[Path] = []
    for seed in seeds:
        point = FuzzPoint.from_seed(seed)
        outcome = check_point(point)
        if not outcome.ok:
            small = shrink_point(point)
            if small != point:
                shrunk = check_point(small)
                if not shrunk.ok:
                    outcome = shrunk
            if out_dir is not None:
                reproducers.append(write_reproducer(outcome, Path(out_dir)))
        outcomes.append(outcome)
        if progress is not None:
            status = "ok" if outcome.ok else "DISAGREE"
            progress(
                f"seed {seed}: {outcome.verdict or 'error'} "
                f"[{','.join(outcome.backends)}] {status}"
            )
    return FuzzReport(
        outcomes=outcomes,
        reproducers=reproducers,
        elapsed_s=time.perf_counter() - started,
    )
