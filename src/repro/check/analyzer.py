"""Static conformance analysis of a communication schedule.

:func:`analyze_schedule` re-derives every invariant the paper's
guarantee rests on — from scratch, using only the *serialized* schedule
content (period, slots, assignment, optional bounds and node schedules)
plus the topology's link set.  It deliberately shares **no logic** with
the compiler's own :meth:`~repro.core.switching.CommunicationSchedule.
validate`: the per-node command projection, the window recomputation and
the occupancy sweeps are all independent implementations, so a bug in
the compiler's data-structure helpers cannot silently excuse itself
here.

Checks (each yields :class:`Finding` records; the analyzer never raises
on schedule content):

``frame``
    Every transmission slot lies inside the frame ``[0, tau_in]`` and
    has positive duration.
``path``
    Every message has an assigned path; the path is continuous
    source→destination over existing topology links and visits no node
    twice; every slot carries the full assigned path (a slot on a strict
    sub-path would park the message at an intermediate node — a
    buffering violation); with a task allocation, path endpoints match
    the placed source and destination tasks, and every inter-node
    message is present in the schedule.
``link``
    Continuous-time link exclusivity: no two slots ever overlap on a
    shared link.  Occupancy intervals are normalized onto the circular
    frame, so a slot written across the ``tau_in`` boundary is split and
    checked on both sides.
``crossbar``
    Per-node port-conflict freedom: the node's channel ports (half
    duplex, exclusive in both directions) are never connected to two
    places at once, per an independent re-derivation of each node's
    switching commands from the slots.
``omega``
    When the schedule carries node schedules, they must be exactly the
    per-node projection of the slots — a swapped input/output port, a
    deleted command or a retimed command all surface here.
``window``
    Window containment against *independently recomputed* time bounds
    (release/deadline wrapped onto the frame from the TFG timing when
    given, else the schedule's embedded bounds), plus duration coverage:
    a message's slots must sum to exactly its transmission requirement.
``deadlock``
    Deadlock-freedom certificate: an event-driven claim replay grants
    every slot all of its links atomically at its start instant; any
    claim on a held link is a hold-and-wait — the precondition of
    circular wait — and is reported.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from os import PathLike
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.topology.base import Topology
from repro.units import EPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.switching import CommunicationSchedule
    from repro.tfg.analysis import TFGTiming
    from repro.trace.tracer import Tracer

#: Finding severities.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Sentinel port name for the node's application-processor buffers.
#: (Redeclared here on purpose: the analyzer does not import the
#: compiler's switching module.)
_AP = "AP"


@dataclass(frozen=True)
class Finding:
    """One conformance violation (or advisory) in a schedule.

    Attributes
    ----------
    severity:
        :data:`SEVERITY_ERROR` for a broken invariant,
        :data:`SEVERITY_WARNING` for an advisory.
    code:
        Stable machine-readable identifier of the violated invariant
        (``"link-overlap"``, ``"port-conflict"``, ...).
    detail:
        Human-readable description.
    message:
        Name of the message involved, when one is identifiable.
    link:
        The ``(u, v)`` link involved, when one is identifiable.
    node:
        The node involved, when one is identifiable.
    span:
        The ``(start, end)`` frame-time range of the violation, when one
        is identifiable.
    """

    severity: str
    code: str
    detail: str
    message: str | None = None
    link: tuple[int, int] | None = None
    node: int | None = None
    span: tuple[float, float] | None = None

    def __str__(self) -> str:
        where = []
        if self.message is not None:
            where.append(f"message={self.message}")
        if self.link is not None:
            where.append(f"link={self.link}")
        if self.node is not None:
            where.append(f"node={self.node}")
        if self.span is not None:
            where.append(f"t=[{self.span[0]:.6f},{self.span[1]:.6f}]")
        suffix = f" ({', '.join(where)})" if where else ""
        return f"[{self.severity}] {self.code}: {self.detail}{suffix}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload; tuples become lists, nothing via repr."""
        return {
            "severity": self.severity,
            "code": self.code,
            "detail": self.detail,
            "message": self.message,
            "link": list(self.link) if self.link is not None else None,
            "node": self.node,
            "span": list(self.span) if self.span is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        link = payload.get("link")
        span = payload.get("span")
        message = payload.get("message")
        node = payload.get("node")
        return cls(
            severity=str(payload["severity"]),
            code=str(payload["code"]),
            detail=str(payload.get("detail", "")),
            message=None if message is None else str(message),
            link=None if link is None else (int(link[0]), int(link[1])),
            node=None if node is None else int(node),
            span=None if span is None else (float(span[0]), float(span[1])),
        )


@dataclass
class ConformanceReport:
    """The analyzer's verdict: structured findings plus what was checked.

    ``ok`` is True when no *error*-severity finding exists (warnings do
    not fail a schedule).
    """

    tau_in: float
    findings: tuple[Finding, ...] = ()
    checks: tuple[str, ...] = ()

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(
            f for f in self.findings if f.severity == SEVERITY_ERROR
        )

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(
            f for f in self.findings if f.severity == SEVERITY_WARNING
        )

    @property
    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> dict[str, int]:
        """``finding code -> occurrence count``."""
        return dict(Counter(f.code for f in self.findings))

    def summary(self) -> str:
        """One line per finding, prefixed by the overall verdict."""
        verdict = (
            "CONFORMANT"
            if self.ok
            else f"NON-CONFORMANT ({len(self.errors)} errors)"
        )
        lines = [f"{verdict}: checks run: {', '.join(self.checks)}"]
        lines.extend(str(f) for f in self.findings)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (wire transfer, ``--json`` output)."""
        return {
            "tau_in": self.tau_in,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "checks": list(self.checks),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ConformanceReport":
        return cls(
            tau_in=float(payload["tau_in"]),
            findings=tuple(
                Finding.from_dict(f) for f in payload.get("findings", ())
            ),
            checks=tuple(str(c) for c in payload.get("checks", ())),
        )

    def to_json(self) -> str:
        """The report as a JSON document; round-trips via :meth:`from_json`
        so results cross process boundaries without pickling."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "ConformanceReport":
        return cls.from_dict(json.loads(document))

    def emit(self, tracer: "Tracer") -> int:
        """Emit every finding as a ``check``-category trace instant.

        The event lands on a ``check:<code>`` track at the finding's
        frame time (0 when the finding has no time range), carrying the
        severity and location as structured args.  Returns the number of
        events emitted.
        """
        if not tracer.enabled:
            return 0
        for f in self.findings:
            tracer.instant(
                "check",
                f.code,
                f.span[0] if f.span is not None else 0.0,
                track=f"check:{f.code}",
                severity=f.severity,
                detail=f.detail,
                message=f.message,
                link=None if f.link is None else str(f.link),
                node=f.node,
            )
        return len(self.findings)


# -- independent geometry helpers --------------------------------------------


def _wrap_segments(
    start: float, end: float, tau_in: float
) -> list[tuple[float, float]]:
    """Normalize an interval onto the circular frame ``[0, tau_in]``.

    Intervals inside the frame pass through; an interval written across
    the ``tau_in`` boundary is split into its tail and wrapped head so
    the occupancy sweeps see both sides.
    """
    if end <= tau_in + EPS:
        return [(start, min(end, tau_in))]
    return [(start, tau_in), (0.0, end - tau_in)]


def _overlap(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Overlap length of two frame intervals (0 when disjoint)."""
    return min(a[1], b[1]) - max(a[0], b[0])


def _sweep_conflicts(
    intervals: list[tuple[float, float, str]],
) -> Iterable[tuple[tuple[float, float, str], tuple[float, float, str]]]:
    """Yield pairs of labelled intervals overlapping beyond EPS.

    Plain sort-and-scan over frame-normalized intervals; callers pass
    intervals already split at the frame boundary, so linear overlap is
    circular overlap.
    """
    ordered = sorted(intervals)
    active: list[tuple[float, float, str]] = []
    for item in ordered:
        start = item[0]
        active = [a for a in active if a[1] > start + EPS]
        for earlier in active:
            if _overlap((earlier[0], earlier[1]), (item[0], item[1])) > EPS:
                yield earlier, item
        active.append(item)


def _derived_commands(
    schedule: "CommunicationSchedule",
) -> dict[int, list[tuple[float, float, object, object, str]]]:
    """Re-derive every node's switching commands from the slots.

    Independent re-implementation of the slot→command projection: at the
    path's source the AP buffer feeds the first channel, intermediate
    nodes bridge incoming to outgoing channel, and the destination drains
    the last channel into its AP buffer.  Returns
    ``node -> [(time, end, input_port, output_port, message), ...]``.
    """
    per_node: dict[int, list[tuple[float, float, object, object, str]]] = {}
    for name, slots in schedule.slots.items():
        for slot in slots:
            path = slot.path
            for position, node in enumerate(path):
                inp: object = _AP if position == 0 else path[position - 1]
                out: object = (
                    _AP if position == len(path) - 1 else path[position + 1]
                )
                per_node.setdefault(node, []).append(
                    (slot.start, slot.end, inp, out, name)
                )
    return per_node


def _recompute_windows(
    timing: "TFGTiming",
    tau_in: float,
    names: Iterable[str],
    sync_margin: float,
) -> dict[str, tuple[float, float, float, tuple[tuple[float, float], ...]]]:
    """Independently recompute each message's time bounds.

    From first principles (paper Section 4): the release is the source
    task's ASAP finish wrapped onto the frame, the deadline is one
    message window later, and a deadline past the frame edge wraps into
    two segments ``[0, d] + [r, tau_in]``.  Returns
    ``name -> (release, deadline, duration, window segments)``.
    """
    asap = timing.asap_schedule()
    window = timing.message_window
    out: dict[
        str, tuple[float, float, float, tuple[tuple[float, float], ...]]
    ] = {}
    for name in names:
        message = timing.tfg.message(name)
        release = asap[message.src][1] % tau_in
        if release > tau_in - EPS or release < EPS:
            release = 0.0
        duration = message.size_bytes / timing.bandwidth + sync_margin
        deadline_abs = release + window
        if deadline_abs <= tau_in + EPS:
            deadline = min(deadline_abs, tau_in)
            segments: tuple[tuple[float, float], ...] = ((release, deadline),)
        else:
            deadline = deadline_abs - tau_in
            segments = ((0.0, deadline), (release, tau_in))
        out[name] = (release, deadline, duration, segments)
    return out


def _inside_some_segment(
    start: float, end: float, segments: Iterable[tuple[float, float]]
) -> bool:
    return any(
        ws - EPS <= start and end <= we + EPS for ws, we in segments
    )


# -- the analyzer -------------------------------------------------------------


@dataclass
class _Analysis:
    """Mutable working state of one analysis run."""

    schedule: "CommunicationSchedule"
    topology: Topology
    findings: list[Finding] = field(default_factory=list)

    def add(self, severity: str, code: str, detail: str, **where: Any) -> None:
        self.findings.append(Finding(severity, code, detail, **where))


def analyze_schedule(
    schedule: "CommunicationSchedule",
    topology: Topology,
    timing: "TFGTiming | None" = None,
    allocation: Mapping[str, int] | None = None,
    sync_margin: float = 0.0,
    tracer: "Tracer | None" = None,
) -> ConformanceReport:
    """Statically verify a schedule's SR guarantees from scratch.

    Parameters
    ----------
    schedule:
        The schedule under test.  Only its serialized content is read
        (``tau_in``, slots, assignment, and — when present — bounds and
        node schedules); no compiler helper is invoked.
    topology:
        The machine; supplies the link set and node adjacency.
    timing:
        Optional TFG timing.  When given, the message windows are
        recomputed independently and cross-checked against the
        schedule's embedded bounds, and schedule completeness (every
        inter-node message scheduled) is verified.
    allocation:
        Optional task→node placement; with ``timing``, enables endpoint
        and completeness checks.
    sync_margin:
        The compiler's per-message clock-synchronization guard
        (:attr:`~repro.core.compiler.CompilerConfig.sync_margin`), added
        to the independently recomputed transmission requirement.
    tracer:
        Optional tracer; findings are emitted as ``check``-category
        instants (see :meth:`ConformanceReport.emit`).

    Returns a :class:`ConformanceReport`; never raises on schedule
    content (malformed values become findings).
    """
    state = _Analysis(schedule, topology)
    tau_in = float(schedule.tau_in)
    if not tau_in > 0:
        state.add(
            SEVERITY_ERROR, "bad-frame", f"non-positive period {tau_in!r}"
        )
        return ConformanceReport(tau_in, tuple(state.findings), ("frame",))

    _check_frame(state, tau_in)
    _check_paths(state, timing, allocation)
    _check_link_exclusivity(state, tau_in)
    _check_crossbar_ports(state, tau_in)
    _check_omega(state)
    _check_windows(state, tau_in, timing, sync_margin)
    _check_deadlock_freedom(state, tau_in)

    checks = (
        "frame", "path", "link", "crossbar", "omega", "window", "deadlock",
    )
    report = ConformanceReport(tau_in, tuple(state.findings), checks)
    if tracer is not None:
        report.emit(tracer)
    return report


def analyze_file(
    path: "str | PathLike[str]", topology: Topology, **kwargs: Any
) -> ConformanceReport:
    """Analyze a schedule previously saved with
    :func:`repro.core.io.save_schedule`.

    The file is parsed *without* the loader's re-validation (a schedule
    the compiler's checks would reject must still be analyzable), then
    handed to :func:`analyze_schedule`.
    """
    import json
    from pathlib import Path

    from repro.core.switching import CommunicationSchedule, TransmissionSlot
    from repro.core.timebounds import MessageTimeBounds, TimeBoundSet

    data = json.loads(Path(path).read_text())
    tau_in = float(data["tau_in"])
    assignment = {
        name: tuple(int(n) for n in p)
        for name, p in data.get("assignment", {}).items()
    }
    slots = {
        name: tuple(
            TransmissionSlot(
                message=name,
                start=float(s["start"]),
                duration=float(s["duration"]),
                path=assignment.get(name, ()),
            )
            for s in raw
        )
        for name, raw in data.get("slots", {}).items()
    }
    bounds = None
    if "bounds" in data:
        bounds = TimeBoundSet(
            tau_in,
            {
                name: MessageTimeBounds(
                    name=name,
                    release=float(b["release"]),
                    deadline=float(b["deadline"]),
                    duration=float(b["duration"]),
                    windows=tuple(
                        (float(w[0]), float(w[1])) for w in b["windows"]
                    ),
                )
                for name, b in data["bounds"].items()
            },
        )
    schedule = CommunicationSchedule(
        tau_in=tau_in, slots=slots, bounds=bounds, assignment=assignment
    )
    return analyze_schedule(schedule, topology, **kwargs)


# -- individual checks ---------------------------------------------------------


def _check_frame(state: _Analysis, tau_in: float) -> None:
    for name, slots in state.schedule.slots.items():
        for slot in slots:
            if slot.duration <= EPS:
                state.add(
                    SEVERITY_ERROR, "slot-empty",
                    f"slot of duration {slot.duration!r}",
                    message=name, span=(slot.start, slot.end),
                )
            if slot.start < -EPS or slot.end > tau_in + EPS:
                state.add(
                    SEVERITY_ERROR, "slot-outside-frame",
                    f"slot [{slot.start:.6f}, {slot.end:.6f}] outside the "
                    f"frame [0, {tau_in:.6f}]",
                    message=name, span=(slot.start, slot.end),
                )


def _check_paths(
    state: _Analysis,
    timing: "TFGTiming | None",
    allocation: Mapping[str, int] | None,
) -> None:
    links = set(state.topology.links)
    assignment = state.schedule.assignment
    for name, slots in state.schedule.slots.items():
        assigned = tuple(assignment.get(name, ()))
        if len(assigned) < 2:
            state.add(
                SEVERITY_ERROR, "path-missing",
                "message has no usable assigned path", message=name,
            )
            continue
        if len(set(assigned)) != len(assigned):
            state.add(
                SEVERITY_ERROR, "path-revisits-node",
                f"assigned path {assigned} visits a node twice",
                message=name,
            )
        for u, v in zip(assigned, assigned[1:]):
            if u == v or (min(u, v), max(u, v)) not in links:
                state.add(
                    SEVERITY_ERROR, "path-discontinuous",
                    f"hop {u}->{v} of {assigned} is not a topology link",
                    message=name, link=(min(u, v), max(u, v)),
                )
        for slot in slots:
            path = tuple(slot.path)
            if path == assigned:
                continue
            if _is_subpath(path, assigned):
                state.add(
                    SEVERITY_ERROR, "buffering-violation",
                    f"slot covers only {path} of the assigned path "
                    f"{assigned}: the message would be buffered at an "
                    "intermediate node between slots",
                    message=name, span=(slot.start, slot.end),
                )
            else:
                state.add(
                    SEVERITY_ERROR, "path-mismatch",
                    f"slot path {path} differs from the assigned path "
                    f"{assigned}",
                    message=name, span=(slot.start, slot.end),
                )
    if timing is None or allocation is None:
        return
    for message in timing.tfg.messages:
        src = allocation.get(message.src)
        dst = allocation.get(message.dst)
        if src is None or dst is None or src == dst:
            continue  # local message: never enters the network
        if message.name not in state.schedule.slots:
            state.add(
                SEVERITY_ERROR, "missing-message",
                f"inter-node message (nodes {src}->{dst}) absent from the "
                "schedule", message=message.name,
            )
            continue
        assigned = tuple(assignment.get(message.name, ()))
        if assigned and (assigned[0] != src or assigned[-1] != dst):
            state.add(
                SEVERITY_ERROR, "endpoint-mismatch",
                f"path {assigned} does not join the placed source (node "
                f"{src}) to the placed destination (node {dst})",
                message=message.name,
            )


def _is_subpath(candidate: tuple[int, ...], full: tuple[int, ...]) -> bool:
    """True when ``candidate`` is a strict contiguous sub-path of ``full``."""
    n, m = len(candidate), len(full)
    if n >= m or n < 2:
        return False
    return any(candidate == full[i:i + n] for i in range(m - n + 1))


def _check_link_exclusivity(state: _Analysis, tau_in: float) -> None:
    by_link: dict[tuple[int, int], list[tuple[float, float, str]]] = {}
    for name, slots in state.schedule.slots.items():
        for slot in slots:
            for u, v in zip(slot.path, slot.path[1:]):
                link = (min(u, v), max(u, v))
                for seg in _wrap_segments(slot.start, slot.end, tau_in):
                    by_link.setdefault(link, []).append((*seg, name))
    for link, intervals in by_link.items():
        for first, second in _sweep_conflicts(intervals):
            code = (
                "message-self-overlap"
                if first[2] == second[2]
                else "link-overlap"
            )
            state.add(
                SEVERITY_ERROR, code,
                f"{first[2]!r} [{first[0]:.6f},{first[1]:.6f}] and "
                f"{second[2]!r} [{second[0]:.6f},{second[1]:.6f}] both "
                f"occupy the link",
                message=second[2], link=link,
                span=(max(first[0], second[0]), min(first[1], second[1])),
            )


def _check_crossbar_ports(state: _Analysis, tau_in: float) -> None:
    for node, commands in _derived_commands(state.schedule).items():
        neighbors = set(state.topology.neighbors(node))
        by_port: dict[object, list[tuple[float, float, str]]] = {}
        for start, end, inp, out, name in commands:
            if inp == out:
                state.add(
                    SEVERITY_ERROR, "port-loop",
                    f"command connects port {inp!r} to itself",
                    message=name, node=node, span=(start, end),
                )
            for port in (inp, out):
                if port == _AP:
                    continue  # per-channel AP buffers never conflict
                if port not in neighbors:
                    state.add(
                        SEVERITY_ERROR, "port-unknown",
                        f"no channel from node {node} to {port!r}",
                        message=name, node=node, span=(start, end),
                    )
                    continue
                for seg in _wrap_segments(start, end, tau_in):
                    by_port.setdefault(port, []).append((*seg, name))
        for port, intervals in by_port.items():
            for first, second in _sweep_conflicts(intervals):
                if first[2] == second[2]:
                    continue  # already reported as message-self-overlap
                state.add(
                    SEVERITY_ERROR, "port-conflict",
                    f"channel to {port!r} carries {first[2]!r} and "
                    f"{second[2]!r} at once",
                    message=second[2], node=node,
                    span=(
                        max(first[0], second[0]), min(first[1], second[1])
                    ),
                )


def _check_omega(state: _Analysis) -> None:
    if not state.schedule.node_schedules:
        return
    derived = Counter(
        (node, round(t, 9), round(e, 9), str(i), str(o), m)
        for node, commands in _derived_commands(state.schedule).items()
        for t, e, i, o, m in commands
    )
    declared = Counter(
        (node, round(c.time, 9), round(c.end, 9), str(c.input_port),
         str(c.output_port), c.message)
        for node, ns in state.schedule.node_schedules.items()
        for c in ns.commands
    )
    for key, count in (derived - declared).items():
        node, t, e, inp, out, name = key
        state.add(
            SEVERITY_ERROR, "omega-missing-command",
            f"node schedule lacks {count} command(s) {inp}->{out} required "
            "by the slots",
            message=name, node=node, span=(t, e),
        )
    for key, count in (declared - derived).items():
        node, t, e, inp, out, name = key
        state.add(
            SEVERITY_ERROR, "omega-spurious-command",
            f"node schedule declares {count} command(s) {inp}->{out} that "
            "no slot requires (retimed, swapped or forged)",
            message=name, node=node, span=(t, e),
        )


def _check_windows(
    state: _Analysis,
    tau_in: float,
    timing: "TFGTiming | None",
    sync_margin: float,
) -> None:
    embedded = state.schedule.bounds
    recomputed = None
    if timing is not None:
        recomputed = _recompute_windows(
            timing, tau_in, state.schedule.slots, sync_margin
        )
        if embedded is not None:
            for name, (release, deadline, duration, segments) in (
                recomputed.items()
            ):
                stored = embedded.bounds.get(name)
                if stored is None:
                    continue
                drift = max(
                    abs(stored.release - release),
                    abs(stored.deadline - deadline),
                    abs(stored.duration - duration),
                )
                if drift > 1e-6:
                    state.add(
                        SEVERITY_ERROR, "bounds-mismatch",
                        f"embedded bounds (r={stored.release:.6f}, "
                        f"d={stored.deadline:.6f}, "
                        f"dur={stored.duration:.6f}) disagree with the "
                        f"recomputed (r={release:.6f}, d={deadline:.6f}, "
                        f"dur={duration:.6f})",
                        message=name,
                    )
    for name, slots in state.schedule.slots.items():
        if recomputed is not None:
            _, _, duration, segments = recomputed[name]
        elif embedded is not None and name in embedded.bounds:
            b = embedded.bounds[name]
            duration, segments = b.duration, b.windows
        else:
            continue  # nothing to check containment against
        total = sum(s.duration for s in slots)
        if total < duration - 1e-6 * max(1.0, duration):
            state.add(
                SEVERITY_ERROR, "under-scheduled",
                f"slots cover {total:.6f} of the required {duration:.6f} "
                "transmission time", message=name,
            )
        elif total > duration + 1e-6 * max(1.0, duration):
            state.add(
                SEVERITY_ERROR, "over-scheduled",
                f"slots cover {total:.6f}, more than the required "
                f"{duration:.6f} transmission time", message=name,
            )
        for slot in slots:
            if not _inside_some_segment(slot.start, slot.end, segments):
                state.add(
                    SEVERITY_ERROR, "window-overrun",
                    f"slot [{slot.start:.6f}, {slot.end:.6f}] escapes the "
                    f"release/deadline windows {tuple(segments)}",
                    message=name, span=(slot.start, slot.end),
                )


def _check_deadlock_freedom(state: _Analysis, tau_in: float) -> None:
    """Event-driven claim replay: every slot must acquire all of its
    links atomically at its start, with zero wait.

    A claim hitting a held link is hold-and-wait — the necessary
    precondition of circular wait — so its absence is a deadlock-freedom
    certificate (together with buffering-freedom: no transmission ever
    parks mid-path holding some links while waiting for others).
    """
    events: list[tuple[float, int, int, tuple[int, ...], str]] = []
    serial = 0
    for name, slots in state.schedule.slots.items():
        for slot in slots:
            path = tuple(slot.path)
            for seg_start, seg_end in _wrap_segments(
                slot.start, slot.end, tau_in
            ):
                # Shrink by EPS so exact abutment never reads as a wait.
                events.append((seg_end - EPS, 0, serial, path, name))
                events.append((seg_start + EPS, 1, serial, path, name))
                serial += 1
    events.sort()
    held: dict[tuple[int, int], str] = {}
    owned: dict[int, list[tuple[int, int]]] = {}
    for time, kind, serial, path, name in events:
        links = [
            (min(u, v), max(u, v)) for u, v in zip(path, path[1:])
        ]
        if kind == 1:
            granted = []
            for link in links:
                owner = held.get(link)
                if owner is not None and owner != name:
                    state.add(
                        SEVERITY_ERROR, "hold-and-wait",
                        f"claim of {link} finds it held by {owner!r}: "
                        "the transmission would block mid-acquisition "
                        "(deadlock precondition)",
                        message=name, link=link, span=(time, time),
                    )
                    continue
                held[link] = name
                granted.append(link)
            owned[serial] = granted
        else:
            for link in owned.pop(serial, []):
                if held.get(link) == name:
                    del held[link]
