"""Independent schedule-conformance analysis and differential fuzzing.

``repro.check`` is the correctness tooling that keeps the compiler
honest.  The compiler's own :meth:`~repro.core.switching.
CommunicationSchedule.validate` is built from the same data structures
and helper functions that produced the schedule, so a compiler bug and a
checker bug can cancel out.  Everything in this package re-derives the
paper's guarantees from scratch:

- :func:`~repro.check.analyzer.analyze_schedule` — a static conformance
  analyzer operating only on the serialized schedule and the topology's
  link set.  It re-derives continuous-time link exclusivity (including
  wrapped windows at the ``tau_in`` frame boundary), per-node crossbar
  port exclusivity, path continuity, window containment against
  independently recomputed time bounds, buffering-freedom and
  deadlock-freedom, and reports structured
  :class:`~repro.check.analyzer.Finding` records instead of raising on
  the first failure.
- :mod:`~repro.check.mutate` — seeded schedule corruptions (shifted
  slots, swapped crossbar ports, deleted commands, off-by-EPS window
  overruns...) used to measure the analyzer's kill rate.
- :mod:`~repro.check.fuzz` — a seeded differential fuzz harness that
  compiles random points through both LP backends and through cold and
  warm cache paths and cross-checks every verdict (``repro-sr fuzz``).

See ``docs/verification.md`` for how the three verification tiers
(static analyzer, crossbar replay, DES replay) fit together.
"""

from repro.check.analyzer import (
    ConformanceReport,
    Finding,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    analyze_schedule,
)
from repro.check.fuzz import FuzzPoint, FuzzReport, PointOutcome, run_fuzz
from repro.check.mutate import MUTATIONS, MutatedSchedule, mutate_schedule

__all__ = [
    "ConformanceReport",
    "Finding",
    "FuzzPoint",
    "FuzzReport",
    "MUTATIONS",
    "MutatedSchedule",
    "PointOutcome",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "analyze_schedule",
    "mutate_schedule",
    "run_fuzz",
]
