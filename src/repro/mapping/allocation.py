"""Allocators mapping TFG tasks onto multicomputer nodes.

An allocation is a plain ``dict[str, int]`` (task name -> node id).  All
allocators here place at most one task per node — the configuration the
paper's evaluation uses (one application processor per task; "all tasks
are assumed to take the same time") — but the simulators accept shared
nodes, serializing tasks on the node's application processor.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.errors import AllocationError
from repro.tfg.graph import TaskFlowGraph
from repro.topology.base import Topology

Allocation = dict[str, int]
"""Task name -> node id."""


def validate_allocation(
    tfg: TaskFlowGraph,
    topology: Topology,
    allocation: Mapping[str, int],
    exclusive: bool = True,
) -> None:
    """Raise :class:`~repro.errors.AllocationError` unless every task is
    placed on a valid node (and, with ``exclusive``, no node is shared)."""
    missing = [t.name for t in tfg.tasks if t.name not in allocation]
    if missing:
        raise AllocationError(f"tasks not allocated: {missing}")
    unknown = sorted(set(allocation) - {t.name for t in tfg.tasks})
    if unknown:
        raise AllocationError(f"allocation references unknown tasks: {unknown}")
    for name, node in allocation.items():
        if not 0 <= node < topology.num_nodes:
            raise AllocationError(
                f"task {name!r} placed on node {node}, but {topology.name} "
                f"has {topology.num_nodes} nodes"
            )
    if exclusive:
        by_node: dict[int, list[str]] = {}
        for name, node in allocation.items():
            by_node.setdefault(node, []).append(name)
        shared = {n: sorted(ts) for n, ts in by_node.items() if len(ts) > 1}
        if shared:
            raise AllocationError(f"nodes shared by several tasks: {shared}")


def _require_capacity(tfg: TaskFlowGraph, topology: Topology) -> None:
    if tfg.num_tasks > topology.num_nodes:
        raise AllocationError(
            f"{tfg.num_tasks} tasks do not fit on {topology.name} "
            f"({topology.num_nodes} nodes) with one task per node"
        )


def sequential_allocation(tfg: TaskFlowGraph, topology: Topology) -> Allocation:
    """Tasks in topological order onto nodes ``0, 1, 2, ...``.

    Fully deterministic; the default allocation for the figure benches.
    """
    _require_capacity(tfg, topology)
    return {name: node for node, name in enumerate(tfg.topological_order())}


def random_allocation(
    tfg: TaskFlowGraph,
    topology: Topology,
    seed: int,
) -> Allocation:
    """A seeded random one-task-per-node placement."""
    _require_capacity(tfg, topology)
    rng = random.Random(seed)
    nodes = rng.sample(range(topology.num_nodes), tfg.num_tasks)
    return dict(zip(tfg.topological_order(), nodes))


def bfs_allocation(tfg: TaskFlowGraph, topology: Topology) -> Allocation:
    """Greedy locality-aware placement.

    Tasks are placed in topological order; each task takes the free node
    minimizing the total hop-distance to its already-placed predecessors
    (ties broken by lowest node id, so the result is deterministic).
    Communicating tasks end up near each other, shortening paths and
    easing both wormhole contention and scheduled-routing utilisation.
    """
    _require_capacity(tfg, topology)
    allocation: Allocation = {}
    free = set(range(topology.num_nodes))
    for name in tfg.topological_order():
        predecessors = [
            allocation[m.src] for m in tfg.messages_in(name) if m.src in allocation
        ]
        if not predecessors:
            node = min(free)
        else:
            node = min(
                free,
                key=lambda n: (
                    sum(topology.distance(p, n) for p in predecessors),
                    n,
                ),
            )
        allocation[name] = node
        free.remove(node)
    return allocation


def communication_cost(
    tfg: TaskFlowGraph,
    topology: Topology,
    allocation: Mapping[str, int],
) -> float:
    """Sum over messages of ``size_bytes * hop distance`` — a standard
    allocation-quality figure for comparing placements."""
    validate_allocation(tfg, topology, allocation, exclusive=False)
    return sum(
        m.size_bytes * topology.distance(allocation[m.src], allocation[m.dst])
        for m in tfg.messages
    )
