"""Simulated-annealing task allocation.

The paper's concluding remarks call for coupling allocation with path
assignment "so as to set up less stringent constraints for SR
computation".  This allocator takes a step in that direction: it anneals
the task->node placement under an objective that mixes total
communication volume-distance with a *congestion* term — the maximum,
over links, of the volume crossing that link when every message takes
its LSD->MSD route.  Low congestion correlates with low peak utilisation
downstream, so annealed placements tend to widen the range of loads the
scheduled-routing compiler can serve (the ABL-ALLOC bench quantifies it).
"""

from __future__ import annotations

import math
import random
from typing import Mapping

from repro.errors import AllocationError
from repro.mapping.allocation import (
    Allocation,
    communication_cost,
    sequential_allocation,
    validate_allocation,
)
from repro.tfg.graph import TaskFlowGraph
from repro.topology.base import Topology
from repro.topology.routing import links_on_path, lsd_to_msd_route


def placement_congestion(
    tfg: TaskFlowGraph,
    topology: Topology,
    allocation: Mapping[str, int],
) -> float:
    """Maximum per-link byte volume under LSD->MSD routing.

    A cheap compile-time proxy for the peak utilisation the scheduled-
    routing pipeline will face: messages stacked on one link by the
    placement cannot all be unstacked by path assignment when the
    alternatives also collide.
    """
    volume: dict = {}
    for message in tfg.messages:
        src = allocation[message.src]
        dst = allocation[message.dst]
        if src == dst:
            continue
        for link in links_on_path(lsd_to_msd_route(topology, src, dst)):
            volume[link] = volume.get(link, 0.0) + message.size_bytes
    return max(volume.values(), default=0.0)


def annealed_allocation(
    tfg: TaskFlowGraph,
    topology: Topology,
    seed: int = 0,
    iterations: int = 4000,
    initial_temperature: float = 1.0,
    congestion_weight: float = 4.0,
) -> Allocation:
    """Anneal a one-task-per-node placement.

    Objective: ``communication_cost + congestion_weight * num_messages *
    congestion`` (both terms in byte-hops), minimised by swap/move
    proposals under a geometric cooling schedule.  Deterministic per
    ``seed``.
    """
    if tfg.num_tasks > topology.num_nodes:
        raise AllocationError(
            f"{tfg.num_tasks} tasks do not fit on {topology.name}"
        )
    rng = random.Random(seed)
    current = dict(sequential_allocation(tfg, topology))
    task_names = [t.name for t in tfg.tasks]

    def objective(allocation: Mapping[str, int]) -> float:
        return communication_cost(tfg, topology, allocation) + (
            congestion_weight * placement_congestion(tfg, topology, allocation)
        )

    current_cost = objective(current)
    best = dict(current)
    best_cost = current_cost
    free_nodes = sorted(set(range(topology.num_nodes)) - set(current.values()))

    temperature = initial_temperature * max(current_cost, 1.0)
    cooling = (1e-3) ** (1.0 / max(iterations, 1))

    for _ in range(iterations):
        task = rng.choice(task_names)
        old_node = current[task]
        if free_nodes and rng.random() < 0.5:
            # Move to a free node.
            index = rng.randrange(len(free_nodes))
            new_node = free_nodes[index]
            current[task] = new_node
            candidate_cost = objective(current)
            if _accept(candidate_cost - current_cost, temperature, rng):
                free_nodes[index] = old_node
                current_cost = candidate_cost
            else:
                current[task] = old_node
        else:
            # Swap with another task.
            other = rng.choice(task_names)
            if other == task:
                temperature *= cooling
                continue
            current[task], current[other] = current[other], current[task]
            candidate_cost = objective(current)
            if _accept(candidate_cost - current_cost, temperature, rng):
                current_cost = candidate_cost
            else:
                current[task], current[other] = (
                    current[other], current[task],
                )
        if current_cost < best_cost:
            best = dict(current)
            best_cost = current_cost
        temperature *= cooling

    validate_allocation(tfg, topology, best)
    return best


def _accept(delta: float, temperature: float, rng: random.Random) -> bool:
    """Metropolis acceptance rule."""
    if delta <= 0:
        return True
    if temperature <= 0:
        return False
    return rng.random() < math.exp(-delta / temperature)
