"""Task-to-node allocation.

The paper treats allocation as an input ("locations of the sources and
destinations of messages ... are fixed by task allocation") and notes that
coupling it with path assignment is future work.  This package provides
deterministic, seedable allocators and allocation-quality measures so
experiments can pin an allocation and reproduce exactly.
"""

from repro.mapping.allocation import (
    Allocation,
    bfs_allocation,
    communication_cost,
    random_allocation,
    sequential_allocation,
    validate_allocation,
)
from repro.mapping.annealing import annealed_allocation, placement_congestion

__all__ = [
    "Allocation",
    "annealed_allocation",
    "bfs_allocation",
    "communication_cost",
    "placement_congestion",
    "random_allocation",
    "sequential_allocation",
    "validate_allocation",
]
