"""The survivability experiment: SR-with-repair vs adaptive wormhole.

Scheduled routing and wormhole routing degrade along opposite axes when a
link dies.  Wormhole routing (with adaptive path selection) keeps
delivering — at the price of exactly the FCFS queueing jitter the paper
spends Section 3 proving away.  Scheduled routing *stops* delivering on
the dead link until a repaired schedule is compiled — at the price of an
outage window — and is then jitter-free again.

:func:`fault_recovery_experiment` runs both sides under the *identical*
seeded fault trace and reports the full trade: detection instant, repair
strategy and wall-clock latency, deliveries lost in the outage window,
post-repair jitter (SR) vs degraded-mode jitter (WR).  The ``faults``
CLI subcommand and ``benchmarks/bench_fault_recovery.py`` both run this
one function, so figures and smoke runs can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.compiler import CompilerConfig, compile_schedule
from repro.core.executor import ScheduledRoutingExecutor
from repro.core.verify import verify_schedule
from repro.errors import FaultInjectionError, SimulationError
from repro.faults.models import FaultTrace, generate_fault_trace
from repro.faults.repair import RepairOutcome, repair_schedule
from repro.metrics.survivability import OutageReport, outage_misses
from repro.results import RunConfig, RunResult, resolve_run_config
from repro.topology.base import Link
from repro.wormhole.adaptive import AdaptiveWormholeSimulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.setup import ExperimentSetup

#: Model microseconds per wall-clock millisecond of repair computation.
#: The outage window charged to scheduled routing extends from the fault
#: to detection plus the *measured* repair latency, mapped into model
#: time under the assumption that the host compiling the repair is the
#: machine's own front-end processor running in real time.
REPAIR_US_PER_WALL_MS = 1000.0


@dataclass(frozen=True)
class FaultRecoveryReport:
    """Both sides of one seeded fault scenario.

    Attributes
    ----------
    tau_in:
        Input period of the run (both techniques).
    trace:
        The injected fault history (identical for SR and WR).
    failed_links:
        The permanent link failures the repair engine handled.
    detection_time:
        Model time at which the SR executor hit the dead link (None when
        the faulted replay completed before any slot touched it).
    repair:
        The repair engine's outcome (strategy, latency, reroutes).
    sr_result:
        Replay of the repaired schedule on the residual machine — its
        jitter is the "guarantee restored" claim.
    outage:
        Deliveries lost between the fault and the repaired schedule
        taking effect.
    wr_result:
        The adaptive wormhole run under the same trace (None when the
        run could not complete, see ``wr_error``).
    wr_error:
        Diagnostic when the wormhole run raised instead of completing.
    """

    tau_in: float
    trace: FaultTrace
    failed_links: frozenset[Link]
    detection_time: float | None
    repair: RepairOutcome
    sr_result: RunResult
    outage: OutageReport
    wr_result: RunResult | None
    wr_error: str | None

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI's output body)."""
        lines = [
            f"fault trace        : {self.trace.describe()}",
            "detection          : "
            + (
                f"t={self.detection_time:.3f}us (link claim failed)"
                if self.detection_time is not None
                else "not hit during replay window"
            ),
            f"repair strategy    : {self.repair.strategy}",
            f"repair latency     : {self.repair.repair_wall_ms:.2f} ms "
            f"({self.repair.messages_rerouted} messages rerouted, "
            f"{len(self.repair.affected_messages)} affected)",
            f"post-repair peak U : {self.repair.peak_utilization:.4f}",
            f"outage window      : [{self.outage.window[0]:.3f}, "
            f"{self.outage.window[1]:.3f})us — "
            f"{self.outage.num_missed_deliveries} deliveries lost, "
            f"{self.outage.num_missed_invocations} invocations missed",
        ]
        sr_jitter = self.sr_result.jitter()
        lines.append(
            f"SR repaired jitter : peak-to-peak {sr_jitter.peak_to_peak:.6f}us "
            f"(OI={self.sr_result.has_oi()})"
        )
        if self.wr_result is not None:
            wr_jitter = self.wr_result.jitter()
            lines.append(
                f"WR degraded jitter : peak-to-peak "
                f"{wr_jitter.peak_to_peak:.6f}us "
                f"(OI={self.wr_result.has_oi()}, "
                f"fault aborts={self.wr_result.extra.get('fault_aborts', 0)})"
            )
        else:
            lines.append(f"WR degraded run    : FAILED — {self.wr_error}")
        return "\n".join(lines)


def fault_recovery_experiment(
    setup: "ExperimentSetup",
    load: float,
    seed: int | None = None,
    n_link_faults: int = 1,
    n_drifts: int = 0,
    invocations: int | None = None,
    warmup: int | None = None,
    config: CompilerConfig | None = None,
    horizon_fraction: float = 0.5,
    run: RunConfig | None = None,
) -> FaultRecoveryReport:
    """Inject, detect, repair, and compare against adaptive wormhole.

    Compiles a scheduled-routing solution for ``setup`` at normalized
    ``load``, draws a seeded fault trace restricted to links the schedule
    actually uses (so the fault is guaranteed to be *felt*), then:

    1. replays the schedule under the trace until a slot claim hits the
       dead link (:class:`~repro.errors.LinkFailedError` = detection);
    2. runs the repair engine and re-verifies the repaired schedule on
       the residual topology (:func:`~repro.core.verify.verify_schedule`);
    3. replays the repaired schedule to measure post-repair jitter;
    4. charges SR the outage window from fault to detection + repair
       latency and counts the deliveries lost in it;
    5. runs :class:`~repro.wormhole.adaptive.AdaptiveWormholeSimulator`
       under the identical trace for the degraded-mode comparison.

    ``horizon_fraction`` places fault start times inside the first
    fraction of the replay window so detection happens mid-run.

    ``run`` bundles the run parameters (invocations, warm-up, seed,
    tracer) as a :class:`~repro.results.RunConfig`; the per-call
    ``seed``/``invocations``/``warmup`` keywords are legacy shims that
    override it when passed.  A non-null ``run.tracer`` traces the
    post-repair SR replay and the degraded WR run (both into the same
    recorder, on disjoint tracks).
    """
    config = config or CompilerConfig()
    run = resolve_run_config(
        run, seed=seed, invocations=invocations, warmup=warmup
    )
    seed = run.seed
    invocations, warmup = run.invocations, run.warmup
    tau_in = setup.tau_in_for_load(load)
    routing = compile_schedule(
        setup.timing, setup.topology, setup.allocation, tau_in, config
    )
    used_links = tuple(sorted({
        link
        for slots in routing.schedule.slots.values()
        for slot in slots
        for link in slot.links
    }))
    horizon = max(horizon_fraction * invocations * tau_in, tau_in)
    trace = generate_fault_trace(
        setup.topology,
        seed=seed,
        n_link_faults=n_link_faults,
        n_drifts=n_drifts,
        horizon=horizon,
        candidate_links=used_links,
    )
    failed = trace.permanent_failed_links(setup.topology)

    executor = ScheduledRoutingExecutor(
        routing, setup.timing, setup.topology, setup.allocation
    )
    detection_time: float | None = None
    try:
        executor.run(invocations=invocations, warmup=warmup, fault_trace=trace)
    except FaultInjectionError as error:
        # LinkFailedError carries the claim instant; drift-induced
        # violations may be caught statically (detection_time None).
        detection_time = error.detection_time

    repair = repair_schedule(
        routing, setup.timing, setup.topology, setup.allocation, failed,
        config=config,
    )
    verify_schedule(
        repair.routing, setup.timing, repair.residual, setup.allocation
    )
    sr_result = ScheduledRoutingExecutor(
        repair.routing, setup.timing, repair.residual, setup.allocation
    ).run(config=run.replace(fault_trace=None))

    fault_start = min(
        (f.start for f in trace.all_link_faults(setup.topology) if f.permanent),
        default=0.0,
    )
    repair_applied = (
        (detection_time if detection_time is not None else fault_start)
        + repair.repair_wall_ms * REPAIR_US_PER_WALL_MS
    )
    outage = outage_misses(
        executor, failed, (fault_start, repair_applied), invocations
    )

    wr_result = wr_error = None
    try:
        wr_result = AdaptiveWormholeSimulator(
            setup.timing, setup.topology, setup.allocation
        ).run(tau_in, config=run.replace(fault_trace=trace))
    except SimulationError as error:
        wr_error = str(error)

    return FaultRecoveryReport(
        tau_in=tau_in,
        trace=trace,
        failed_links=failed,
        detection_time=detection_time,
        repair=repair,
        sr_result=sr_result,
        outage=outage,
        wr_result=wr_result,
        wr_error=wr_error,
    )