"""Fault models: link/node failures and CP clock drift.

The paper proves scheduled routing contention- and jitter-free on a
*healthy* network; this module describes the ways the network stops
being healthy, so the rest of :mod:`repro.faults` can measure what the
guarantee degrades to and how fast it can be restored.

Three fault classes are modelled:

- **link faults** — a half-duplex channel goes down at ``start``; either
  *transient* (comes back after ``duration``) or *permanent*
  (``duration is None``; the repair engine must route around it),
- **node faults** — a node's communication processor dies, taking every
  incident link down (the application processor is not modelled as
  failing: a dead AP kills the workload, not the network, and is out of
  scope for *communication* scheduling),
- **clock drift** — a CP's clock runs offset from the global time base,
  shifting every transmission its node sources; drift beyond the
  compiler's ``sync_margin`` manifests as contention or missed
  deadlines.

Traces are plain frozen dataclasses, generated deterministically per
seed, so SR and WR runs can be subjected to *identical* fault histories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.topology.base import Link, Topology, link_between


@dataclass(frozen=True)
class LinkFault:
    """One link outage.

    Attributes
    ----------
    link:
        The failed (undirected, canonical) link.
    start:
        Absolute simulation time the outage begins.
    duration:
        Outage length; ``None`` marks a permanent failure.
    """

    link: Link
    start: float
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ReproError(f"fault start must be >= 0, got {self.start}")
        if self.duration is not None and self.duration <= 0:
            raise ReproError(
                f"transient fault duration must be > 0, got {self.duration}"
            )

    @property
    def permanent(self) -> bool:
        return self.duration is None

    @property
    def end(self) -> float:
        """Absolute restore instant (``inf`` for permanent faults)."""
        return float("inf") if self.duration is None else self.start + self.duration

    def active_at(self, time: float) -> bool:
        """True while the outage holds at ``time``."""
        return self.start <= time < self.end


@dataclass(frozen=True)
class NodeFault:
    """A communication-processor failure: every incident link goes down."""

    node: int
    start: float
    duration: float | None = None

    @property
    def permanent(self) -> bool:
        return self.duration is None

    def link_faults(self, topology: Topology) -> tuple[LinkFault, ...]:
        """The equivalent per-link outages on a concrete topology."""
        return tuple(
            LinkFault(link_between(self.node, n), self.start, self.duration)
            for n in topology.neighbors(self.node)
        )


@dataclass(frozen=True)
class ClockDrift:
    """A constant clock offset at one node's CP, in microseconds.

    Positive offset = the node's clock runs late, so its switching
    commands (and hence the transmissions it sources) execute ``offset``
    after their nominal instants.
    """

    node: int
    offset: float


@dataclass(frozen=True)
class FaultTrace:
    """A deterministic fault history for one run.

    ``link_faults``/``node_faults``/``drifts`` are applied together; node
    faults expand to link faults via :meth:`all_link_faults` when a
    concrete topology is known.
    """

    link_faults: tuple[LinkFault, ...] = ()
    node_faults: tuple[NodeFault, ...] = ()
    drifts: tuple[ClockDrift, ...] = ()
    seed: int | None = None
    _drift_index: dict[int, float] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        index: dict[int, float] = {}
        for drift in self.drifts:
            index[drift.node] = index.get(drift.node, 0.0) + drift.offset
        object.__setattr__(self, "_drift_index", index)

    @property
    def empty(self) -> bool:
        return not (self.link_faults or self.node_faults or self.drifts)

    def all_link_faults(self, topology: Topology) -> tuple[LinkFault, ...]:
        """Every link outage, with node faults expanded, sorted by start."""
        faults = list(self.link_faults)
        for node_fault in self.node_faults:
            faults.extend(node_fault.link_faults(topology))
        return tuple(sorted(faults, key=lambda f: (f.start, f.link)))

    def permanent_failed_links(self, topology: Topology) -> frozenset[Link]:
        """Links that never come back — the repair engine's input."""
        return frozenset(
            f.link for f in self.all_link_faults(topology) if f.permanent
        )

    def failed_links_at(self, time: float, topology: Topology) -> frozenset[Link]:
        """Links down at one instant (transient and permanent alike)."""
        return frozenset(
            f.link for f in self.all_link_faults(topology) if f.active_at(time)
        )

    def drift_of(self, node: int) -> float:
        """Clock offset of a node (0 for undrifted nodes)."""
        return self._drift_index.get(node, 0.0)

    def describe(self) -> str:
        parts = []
        for f in self.link_faults:
            kind = "permanent" if f.permanent else f"for {f.duration:g}us"
            parts.append(f"link {f.link} down at t={f.start:g} ({kind})")
        for f in self.node_faults:
            kind = "permanent" if f.permanent else f"for {f.duration:g}us"
            parts.append(f"node {f.node} down at t={f.start:g} ({kind})")
        for d in self.drifts:
            parts.append(f"node {d.node} clock drift {d.offset:+g}us")
        return "; ".join(parts) if parts else "no faults"


def generate_fault_trace(
    topology: Topology,
    seed: int = 0,
    n_link_faults: int = 1,
    n_node_faults: int = 0,
    n_drifts: int = 0,
    horizon: float = 100.0,
    transient_fraction: float = 0.0,
    mean_outage: float = 10.0,
    max_drift: float = 1.0,
    candidate_links: tuple[Link, ...] | None = None,
) -> FaultTrace:
    """Seeded deterministic fault-trace generation.

    Parameters
    ----------
    topology:
        The machine the faults strike.
    seed:
        Seeds every random choice; identical seeds yield identical traces
        (the property the SR-vs-WR survivability comparison relies on).
    n_link_faults, n_node_faults, n_drifts:
        How many faults of each class to draw.
    horizon:
        Fault start times are drawn uniformly from ``[0, horizon)``.
    transient_fraction:
        Probability a drawn link/node fault is transient rather than
        permanent.
    mean_outage:
        Mean duration of transient outages (exponential).
    max_drift:
        Drift offsets are drawn uniformly from ``[-max_drift, max_drift]``.
    candidate_links:
        Restrict link faults to this pool (e.g. the links a compiled
        schedule actually uses, so every drawn fault is *felt*); defaults
        to all links.
    """
    rng = random.Random(seed)
    pool = list(candidate_links) if candidate_links else list(topology.links)
    if n_link_faults > len(pool):
        raise ReproError(
            f"cannot draw {n_link_faults} distinct link faults from "
            f"{len(pool)} candidate links"
        )
    link_faults = []
    for link in rng.sample(pool, n_link_faults):
        start = rng.uniform(0.0, horizon)
        duration = (
            rng.expovariate(1.0 / mean_outage)
            if rng.random() < transient_fraction
            else None
        )
        link_faults.append(LinkFault(link, start, duration))
    node_faults = []
    if n_node_faults:
        for node in rng.sample(range(topology.num_nodes), n_node_faults):
            start = rng.uniform(0.0, horizon)
            duration = (
                rng.expovariate(1.0 / mean_outage)
                if rng.random() < transient_fraction
                else None
            )
            node_faults.append(NodeFault(node, start, duration))
    drifts = tuple(
        ClockDrift(node, rng.uniform(-max_drift, max_drift))
        for node in (
            rng.sample(range(topology.num_nodes), n_drifts) if n_drifts else ()
        )
    )
    return FaultTrace(
        link_faults=tuple(sorted(link_faults, key=lambda f: (f.start, f.link))),
        node_faults=tuple(sorted(node_faults, key=lambda f: (f.start, f.node))),
        drifts=drifts,
        seed=seed,
    )
