"""Online repair of a scheduled-routing solution after permanent faults.

Scheduled routing's compile-time guarantee dies with the first permanent
link failure: some messages' clear paths no longer exist.  The repair
engine restores the guarantee on the **residual topology**:

1. **Local repair** (preferred): keep every unaffected message on its
   existing path and re-run the AssignPaths-style improvement search
   *only over the affected messages*, drawing candidate paths from the
   residual network's surviving shortest paths.  The messages' original
   release/deadline windows are untouched (the input period, the TFG
   timing and hence the time bounds are exactly those of the broken
   schedule), so a successful local repair disturbs no healthy message.
2. **Full recompilation** (fallback): when the locally repaired
   assignment fails the utilisation gate or a downstream LP, recompile
   from scratch on the residual topology — every message may move.
3. **Infeasible**: the fault disconnected some message's endpoints, or
   even the full recompile cannot pack the requirements into the
   surviving links; :class:`~repro.errors.RepairInfeasibleError` is
   raised with the diagnosis.

Either repair path ends in :func:`~repro.core.switching.build_schedule`'s
machine-validation, and the result can be handed straight to
:func:`repro.core.verify.verify_schedule` on the residual topology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

from repro.core.assignment import PathAssignment
from repro.core.compiler import (
    CompilerConfig,
    ScheduledRouting,
    compile_schedule,
    schedule_from_assignment,
)
from repro.core.utilization import UtilizationState, utilization_report
from repro.errors import RepairInfeasibleError, SchedulingError, TopologyError
from repro.faults.residual import ResidualTopology
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Link, Topology
from repro.units import EPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ScheduleCache


@dataclass(frozen=True)
class RepairOutcome:
    """What the repair engine did and what it cost.

    Attributes
    ----------
    routing:
        The repaired schedule, valid on :attr:`residual`.
    residual:
        The degraded topology the repaired schedule runs on.
    strategy:
        ``"none"`` (no message crossed a failed link), ``"local"``
        (affected messages rerouted in place) or ``"recompile"`` (full
        pipeline re-run).
    affected_messages, rerouted_messages:
        Messages whose path crossed a failed link; messages whose path
        actually changed (for ``"recompile"`` this may include healthy
        messages the fresh AssignPaths moved).
    repair_wall_ms:
        Wall-clock cost of the repair computation — the compile-side
        contribution to the detection -> repair outage window.
    peak_utilization:
        Post-repair peak utilisation ``U`` on the residual topology.
    """

    routing: ScheduledRouting
    residual: Topology
    strategy: str
    affected_messages: tuple[str, ...]
    rerouted_messages: tuple[str, ...]
    repair_wall_ms: float
    peak_utilization: float

    @property
    def messages_rerouted(self) -> int:
        return len(self.rerouted_messages)


def affected_messages(
    routing: ScheduledRouting, failed_links: frozenset[Link]
) -> tuple[str, ...]:
    """Messages whose assigned path crosses any failed link."""
    hit = []
    for name, path in routing.schedule.assignment.items():
        links = {
            (min(u, v), max(u, v)) for u, v in zip(path, path[1:])
        }
        if links & failed_links:
            hit.append(name)
    return tuple(hit)


def repair_schedule(
    routing: ScheduledRouting,
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    failed_links,
    config: CompilerConfig | None = None,
    allow_local: bool = True,
    max_pool: int = 48,
    cache: "ScheduleCache | None" = None,
) -> RepairOutcome:
    """Repair a compiled schedule after permanent link failures.

    Parameters
    ----------
    routing:
        The schedule that was valid before the failure.
    timing, topology, allocation:
        The inputs it was compiled from (``topology`` is the *healthy*
        machine; the residual is derived here).
    failed_links:
        Permanently failed links (any iterable of node pairs) — e.g.
        ``trace.permanent_failed_links(topology)``.
    config:
        Compiler knobs for the downstream stages / full recompile;
        defaults to a fresh :class:`~repro.core.compiler.CompilerConfig`.
    allow_local:
        Set False to force the full-recompilation path (used by tests
        and ablations).
    max_pool:
        Cap on residual candidate paths per affected message.
    cache:
        Optional :class:`~repro.cache.ScheduleCache` consulted by the
        full-recompilation path.  The cache key includes the residual
        topology's *link set*, so repeated repairs after the same fault
        pattern (common across survivability sweeps) reuse the
        recompiled schedule, while different patterns of equal size
        never collide.

    Raises
    ------
    RepairInfeasibleError
        When no valid schedule exists on the residual topology.
    """
    config = config or CompilerConfig()
    failed = frozenset(
        (min(u, v), max(u, v)) for u, v in failed_links
    )
    began = time.perf_counter()
    residual = ResidualTopology(topology, failed)
    affected = affected_messages(routing, failed)
    if not affected:
        return RepairOutcome(
            routing=routing,
            residual=residual,
            strategy="none",
            affected_messages=(),
            rerouted_messages=(),
            repair_wall_ms=(time.perf_counter() - began) * 1e3,
            peak_utilization=routing.utilization.peak,
        )

    bounds = routing.bounds
    endpoints = {
        name: (routing.schedule.assignment[name][0],
               routing.schedule.assignment[name][-1])
        for name in routing.schedule.assignment
    }
    # Disconnected endpoints are unrepairable regardless of strategy.
    for name in affected:
        src, dst = endpoints[name]
        if not residual.connected(src, dst):
            raise RepairInfeasibleError(
                f"message {name!r}: nodes {src} and {dst} disconnected by "
                f"failed links {sorted(failed)}"
            )

    if allow_local:
        try:
            repaired, rerouted = _local_repair(
                bounds, residual, endpoints, routing, affected,
                routing.tau_in, list(routing.local_messages), config,
                max_pool,
            )
            return RepairOutcome(
                routing=repaired,
                residual=residual,
                strategy="local",
                affected_messages=affected,
                rerouted_messages=rerouted,
                repair_wall_ms=(time.perf_counter() - began) * 1e3,
                peak_utilization=repaired.utilization.peak,
            )
        except (SchedulingError, TopologyError):
            pass  # fall through to full recompilation

    try:
        recompiled = compile_schedule(
            timing,
            residual,
            allocation,
            routing.tau_in,
            _recompile_config(config),
            cache=cache,
        )
    except SchedulingError as error:
        raise RepairInfeasibleError(
            f"local repair and full recompilation both failed on "
            f"{residual.name}: {error}"
        ) from error
    rerouted = tuple(
        name
        for name, path in recompiled.schedule.assignment.items()
        if path != routing.schedule.assignment.get(name)
    )
    return RepairOutcome(
        routing=recompiled,
        residual=residual,
        strategy="recompile",
        affected_messages=affected,
        rerouted_messages=rerouted,
        repair_wall_ms=(time.perf_counter() - began) * 1e3,
        peak_utilization=recompiled.utilization.peak,
    )


def _recompile_config(config: CompilerConfig) -> CompilerConfig:
    """The full-recompile config: AssignPaths is mandatory (LSD->MSD
    routes may cross the failed links)."""
    if config.use_assign_paths:
        return config
    return replace(config, use_assign_paths=True)


def _local_repair(
    bounds,
    residual: ResidualTopology,
    endpoints: Mapping[str, tuple[int, int]],
    routing: ScheduledRouting,
    affected: tuple[str, ...],
    tau_in: float,
    local: list[str],
    config: CompilerConfig,
    max_pool: int,
):
    """Reroute only the affected messages, then re-run downstream stages.

    Returns ``(ScheduledRouting, rerouted names)``; raises a
    :class:`~repro.errors.SchedulingError` subclass when the restricted
    assignment cannot be scheduled (the caller falls back to a full
    recompile).
    """
    pools = {
        name: residual.minimal_path_pool(*endpoints[name], max_pool)
        for name in affected
    }
    # Seed each affected message with its first surviving candidate; the
    # unaffected messages keep their (still minimal, still live) paths.
    paths = {
        name: list(path)
        for name, path in routing.schedule.assignment.items()
    }
    for name in affected:
        paths[name] = list(pools[name][0])
    assignment = PathAssignment(residual, dict(endpoints), paths)

    state = UtilizationState(bounds, assignment)
    _descend_affected(state, pools)

    report = utilization_report(bounds, state.assignment)
    repaired = schedule_from_assignment(
        bounds, state.assignment, report, tau_in, local, config,
    )
    rerouted = tuple(
        name
        for name in affected
        if repaired.schedule.assignment[name]
        != routing.schedule.assignment[name]
    )
    return repaired, rerouted


def _descend_affected(
    state: UtilizationState,
    pools: Mapping[str, list[list[int]]],
    max_rounds: int = 50,
) -> None:
    """Greedy peak-utilisation descent restricted to the affected messages.

    A miniature of :func:`repro.core.assign_paths.assign_paths`'s inner
    loop: in each round, try every candidate path of every affected
    message and apply the single reroute with the largest peak reduction;
    stop when no reroute improves the peak.
    """
    for _ in range(max_rounds):
        best_value = state.peak().value
        best_move: tuple[str, list[int]] | None = None
        for name, pool in pools.items():
            current = state.assignment.path(name)
            for path in pool:
                if tuple(path) == current:
                    continue
                outcome = state.evaluate_reroute(name, path)
                if outcome.value < best_value - EPS:
                    best_value = outcome.value
                    best_move = (name, path)
        if best_move is None:
            return
        state.reroute(*best_move)
