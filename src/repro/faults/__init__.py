"""Fault injection and schedule repair for the reproduced machine.

The paper assumes a healthy network: scheduled routing's compile-time
guarantee is only as good as the topology it was compiled against.  This
package asks what the guarantee costs to *keep* when links and nodes
fail:

- :mod:`repro.faults.models` — declarative, seeded fault traces
  (transient/permanent link outages, node failures, CP clock drift);
- :mod:`repro.faults.residual` — the degraded topology view used for
  rerouting and re-verification;
- :mod:`repro.faults.injection` — drives a trace into a live
  discrete-event run (both the SR executor and the wormhole simulators);
- :mod:`repro.faults.repair` — restores the SR guarantee after permanent
  failures, locally when possible, by full recompilation otherwise;
- :mod:`repro.faults.compare` — the SR-with-repair vs adaptive-wormhole
  survivability experiment shared by the CLI and the benchmark suite.
"""

from repro.faults.injection import FaultInjector
from repro.faults.models import (
    ClockDrift,
    FaultTrace,
    LinkFault,
    NodeFault,
    generate_fault_trace,
)
from repro.faults.repair import RepairOutcome, affected_messages, repair_schedule
from repro.faults.residual import ResidualTopology

__all__ = [
    "ClockDrift",
    "FaultInjector",
    "FaultTrace",
    "LinkFault",
    "NodeFault",
    "RepairOutcome",
    "ResidualTopology",
    "affected_messages",
    "generate_fault_trace",
    "repair_schedule",
]