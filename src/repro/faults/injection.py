"""Driving fault traces into a live discrete-event simulation.

:class:`FaultInjector` is the bridge between the declarative
:class:`~repro.faults.models.FaultTrace` and the kernel's runtime hooks:
for every link outage in the trace it spawns a process that calls
:meth:`~repro.sim.resources.Resource.fail` at the outage start and (for
transient faults) :meth:`~repro.sim.resources.Resource.restore` at its
end.  Both the scheduled-routing executor and the wormhole simulators
instantiate one when handed a trace; neither needs to know fault timing
— they only observe ``resource.failed``.

Every state flip is recorded on a :class:`~repro.sim.Monitor`, so a run
result can report exactly when the machine degraded and recovered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.sim import Monitor
from repro.topology.base import Link, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.models import FaultTrace
    from repro.sim import Environment, Resource


class FaultInjector:
    """Schedules a trace's link outages onto an environment's resources.

    Parameters
    ----------
    env:
        The simulation environment the outages play out in.
    links:
        ``Link -> Resource`` map of the run (the injector fails/restores
        these in place).
    trace:
        The fault history; node faults are expanded to their incident
        links via ``topology``.
    topology:
        The machine, needed to expand node faults.
    """

    def __init__(
        self,
        env: "Environment",
        links: Mapping[Link, "Resource"],
        trace: "FaultTrace",
        topology: Topology,
    ):
        self.env = env
        self.links = links
        self.trace = trace
        self.events = Monitor("fault-events")
        self._down_count: dict[Link, int] = {}
        for fault in trace.all_link_faults(topology):
            if fault.link in links:
                env.process(self._outage(fault))

    def _outage(self, fault):
        if fault.start > self.env.now:
            yield self.env.timeout(fault.start - self.env.now)
        link = fault.link
        # Overlapping outages on one link: the link is down while any of
        # them holds (reference count), so a restore of one outage does
        # not resurrect a link another outage still claims.
        self._down_count[link] = self._down_count.get(link, 0) + 1
        self.links[link].fail()
        self.events.record(self.env.now, ("down", link))
        if self.env.tracer.enabled:
            self.env.tracer.instant(
                "fault", "down", self.env.now, track=str(link),
                permanent=fault.permanent,
            )
        if fault.permanent:
            return
        yield self.env.timeout(fault.duration)
        self._down_count[link] -= 1
        if self._down_count[link] == 0:
            self.links[link].restore()
            self.events.record(self.env.now, ("up", link))
            if self.env.tracer.enabled:
                self.env.tracer.instant(
                    "fault", "up", self.env.now, track=str(link),
                )

    def failed_links(self) -> frozenset[Link]:
        """Links currently down (live view of the injected state)."""
        return frozenset(
            link for link, resource in self.links.items() if resource.failed
        )
