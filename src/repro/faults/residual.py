"""The residual topology a machine degrades to after permanent faults.

A :class:`ResidualTopology` is the original interconnect minus a set of
failed links (node faults arrive pre-expanded to their incident links).
It *is* a :class:`~repro.topology.base.Topology`, so every downstream
consumer — path assignment, utilisation, the switching-schedule builder,
the executor, `verify_schedule` — runs on it unchanged; links that no
longer exist simply are not there to be claimed.

The one structural difference: minimal paths on a residual network are
no longer the mixed-radix interleavings of the product structure, so
:meth:`ResidualTopology.minimal_path_pool` enumerates shortest paths on
the surviving graph directly (BFS distance labels + backward DFS).
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Link, Topology, link_between


class ResidualTopology(Topology):
    """A topology with a set of links removed by permanent faults.

    Parameters
    ----------
    base:
        The healthy interconnect.
    failed_links:
        Links to remove (canonical ``(u, v)`` order not required).
    """

    def __init__(self, base: Topology, failed_links):
        canonical = frozenset(link_between(u, v) for u, v in failed_links)
        unknown = canonical - set(base.links)
        if unknown:
            raise TopologyError(
                f"failed links {sorted(unknown)} are not links of {base.name}"
            )
        super().__init__(
            base.radices, f"{base.name}-{len(canonical)}down"
        )
        self.base = base
        self.failed_links: frozenset[Link] = canonical
        self._neighbor_cache: dict[int, tuple[int, ...]] = {}
        self._distance_cache: dict[int, dict[int, int]] = {}

    def neighbors(self, node: int) -> tuple[int, ...]:
        cached = self._neighbor_cache.get(node)
        if cached is None:
            cached = tuple(
                n
                for n in self.base.neighbors(node)
                if link_between(node, n) not in self.failed_links
            )
            self._neighbor_cache[node] = cached
        return cached

    def _bfs_distances(self, src: int) -> dict[int, int]:
        """Hop distances from ``src`` on the surviving graph (memoised)."""
        cached = self._distance_cache.get(src)
        if cached is None:
            cached = {src: 0}
            frontier = [src]
            hops = 0
            while frontier:
                hops += 1
                nxt: list[int] = []
                for u in frontier:
                    for v in self.neighbors(u):
                        if v not in cached:
                            cached[v] = hops
                            nxt.append(v)
                frontier = nxt
            self._distance_cache[src] = cached
        return cached

    def distance(self, u: int, v: int) -> int:
        self._check_node(u)
        self._check_node(v)
        distances = self._bfs_distances(u)
        if v not in distances:
            raise TopologyError(
                f"{self.name} is disconnected: no surviving path {u}->{v}"
            )
        return distances[v]

    def connected(self, u: int, v: int) -> bool:
        """True when a surviving path joins the two nodes."""
        self._check_node(u)
        self._check_node(v)
        return v in self._bfs_distances(u)

    def minimal_path_pool(
        self, src: int, dst: int, max_paths: int | None = None
    ) -> list[list[int]]:
        """Shortest surviving paths ``src -> dst``, capped at ``max_paths``.

        Deterministic (ascending-neighbor DFS over the BFS shortest-path
        DAG); raises :class:`~repro.errors.TopologyError` when the faults
        disconnected the endpoints.
        """
        if src == dst:
            return [[src]]
        distances = self._bfs_distances(src)
        if dst not in distances:
            raise TopologyError(
                f"{self.name} is disconnected: no surviving path {src}->{dst}"
            )
        pool: list[list[int]] = []
        # Walk the shortest-path DAG forward: from each node take only
        # neighbors one hop closer to dst (per distances-from-dst labels).
        from_dst = self._bfs_distances(dst)
        path = [src]

        def recurse(node: int) -> bool:
            if node == dst:
                pool.append(list(path))
                return max_paths is not None and len(pool) >= max_paths
            for n in self.neighbors(node):
                if from_dst.get(n, -1) == from_dst[node] - 1:
                    path.append(n)
                    if recurse(n):
                        return True
                    path.pop()
            return False

        recurse(src)
        return pool

    def __repr__(self) -> str:
        return (
            f"<{self.name}: {self.num_nodes} nodes, "
            f"{self.num_links}/{self.base.num_links} links up>"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ResidualTopology)
            and self.base == other.base
            and self.failed_links == other.failed_links
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.base, self.failed_links))
