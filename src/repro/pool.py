"""Graceful worker-pool lifecycle, shared by the matrix and the farm.

Both process-parallel consumers of the compiler — the experiment
matrix's ``jobs=N`` fan-out and the ``repro.serve`` compile farm — need
the same shutdown story: on SIGTERM/SIGINT stop accepting work, let the
compilations already running finish (their results, and their cache
writes, are about to land — killing them wastes the LP work), cancel
everything still queued, and flush accumulated statistics to disk
before the process exits.  :class:`GracefulPool` packages that policy
around a :class:`~concurrent.futures.ProcessPoolExecutor` so neither
consumer grows its own abrupt ``executor.shutdown()`` teardown.

The pool never installs signal handlers behind the caller's back:
:meth:`install_signal_handlers` is explicit, restores the previous
handlers on :meth:`shutdown`, and degrades to a no-op off the main
thread (where the interpreter forbids handler installation).
"""

from __future__ import annotations

import signal
import threading
from concurrent.futures import Future, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterable

__all__ = ["GracefulPool"]

#: Signals that trigger a drain when handlers are installed.
_DRAIN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class GracefulPool:
    """A :class:`ProcessPoolExecutor` with drain-on-signal semantics.

    Parameters
    ----------
    max_workers:
        Worker process count (forwarded to the executor).
    on_shutdown:
        Callables invoked exactly once during :meth:`shutdown`, after
        the drain — the hook both consumers use to persist cache/service
        statistics.  Exceptions are collected, not propagated, so one
        failing callback cannot abort the teardown of the rest.

    Usage::

        with GracefulPool(max_workers=4, on_shutdown=[persist]) as pool:
            pool.install_signal_handlers()
            futures = [pool.submit(fn, arg) for arg in work]
            for future in futures:
                if future.cancelled():      # drained by a signal
                    continue
                consume(future.result())

    On SIGTERM the handler calls :meth:`initiate_drain`: queued-but-
    unstarted futures are cancelled (``future.cancelled()`` becomes
    true), running ones complete normally, and :attr:`draining` lets the
    consumer loop notice it should stop submitting and wrap up.
    """

    def __init__(
        self,
        max_workers: int,
        on_shutdown: Iterable[Callable[[], None]] = (),
    ):
        self.max_workers = max_workers
        self._executor = ProcessPoolExecutor(max_workers=max_workers)
        self._on_shutdown = list(on_shutdown)
        self._pending: set[Future] = set()
        self._lock = threading.Lock()
        self._draining = threading.Event()
        self._closed = False
        self._previous_handlers: dict[int, Any] = {}
        self.shutdown_errors: list[BaseException] = []

    # -- submission ------------------------------------------------------

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The wrapped executor (for ``loop.run_in_executor`` callers)."""
        return self._executor

    @property
    def draining(self) -> bool:
        """True once a drain started; no new work is accepted."""
        return self._draining.is_set()

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any) -> Future:
        """Submit one task; raises :class:`RuntimeError` while draining."""
        if self.draining or self._closed:
            raise RuntimeError("pool is draining; no new work accepted")
        future = self._executor.submit(fn, *args, **kwargs)
        with self._lock:
            self._pending.add(future)
        future.add_done_callback(self._discard)
        return future

    def _discard(self, future: Future) -> None:
        with self._lock:
            self._pending.discard(future)

    def in_flight(self) -> int:
        """Futures submitted but not yet done (running or queued)."""
        with self._lock:
            return len(self._pending)

    # -- drain / shutdown ------------------------------------------------

    def initiate_drain(self) -> None:
        """Stop accepting work and cancel queued-but-unstarted futures.

        Safe to call from a signal handler: it only flips the event and
        cancels futures (running ones ignore the cancel), never blocks.
        """
        self._draining.set()
        with self._lock:
            pending = list(self._pending)
        for future in pending:
            future.cancel()

    def drain(self, timeout: float | None = None) -> None:
        """Block until every in-flight future is done (or cancelled)."""
        with self._lock:
            pending = list(self._pending)
        wait(pending, timeout=timeout)

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to :meth:`initiate_drain`.

        The previous handlers are chained (so e.g. SIGINT still raises
        :class:`KeyboardInterrupt` for the consumer loop to unwind) and
        restored by :meth:`shutdown`.  Off the main thread this is a
        no-op — the interpreter only allows handler changes there.
        """
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in _DRAIN_SIGNALS:
            previous = signal.getsignal(signum)
            self._previous_handlers[signum] = previous

            def _handler(
                num: int, frame: Any, _chain: Any = previous
            ) -> None:
                self.initiate_drain()
                if callable(_chain):
                    _chain(num, frame)

            signal.signal(signum, _handler)

    def _restore_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        for signum, previous in self._previous_handlers.items():
            signal.signal(signum, previous)
        self._previous_handlers.clear()

    def shutdown(self, drain: bool = True) -> None:
        """Drain (optionally), run the shutdown hooks, stop the workers.

        Idempotent; the hooks run exactly once.  With ``drain=False``
        in-flight work is abandoned (queued futures cancelled) — the
        abrupt path, for tests and emergency teardown only.
        """
        if self._closed:
            return
        self._closed = True
        if drain:
            self.drain()
        else:
            self.initiate_drain()
        self._restore_signal_handlers()
        for callback in self._on_shutdown:
            try:
                callback()
            except BaseException as error:  # noqa: BLE001 - collected
                self.shutdown_errors.append(error)
        self._executor.shutdown(wait=drain, cancel_futures=not drain)

    def __enter__(self) -> "GracefulPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=exc_info[0] is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "draining" if self.draining else "open"
        return (
            f"<GracefulPool workers={self.max_workers} {state} "
            f"in_flight={self.in_flight()}>"
        )
