"""Deterministic routing and path utilities.

Wormhole routing in the paper "imposes deterministic path selection via its
routing function" (Section 3); the concrete function used throughout the
evaluation is LSD-to-MSD routing: walk the address digits from the least
significant dimension to the most significant, correcting each digit in
turn (Section 5.1).  :func:`lsd_to_msd_route` implements it for any
:class:`~repro.topology.base.Topology` that defines per-dimension steps.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.topology.base import Link, Topology, link_between


def lsd_to_msd_route(topology: Topology, src: int, dst: int) -> list[int]:
    """The deterministic LSD->MSD minimal route from ``src`` to ``dst``.

    Digits are corrected dimension 0 first.  Where a dimension offers
    several minimal moves (a half-ring tie on an even torus) the first
    alternative — the positive ring direction — is taken, keeping the
    function single-valued as a routing function must be.

    Returns the node sequence ``[src, ..., dst]`` (length 1 when
    ``src == dst``).
    """
    src_addr = topology.address(src)
    dst_addr = topology.address(dst)
    digits = list(src_addr)
    path = [src]
    for dim in range(topology.num_dimensions):
        walks = topology.dimension_steps(src_addr[dim], dst_addr[dim], dim)
        for digit in walks[0]:
            digits[dim] = digit
            path.append(topology.node_at(digits))
    if path[-1] != dst:  # pragma: no cover - would indicate a topology bug
        raise RoutingError(
            f"LSD->MSD route on {topology.name} ended at {path[-1]}, "
            f"expected {dst}"
        )
    return path


def links_on_path(path: list[int]) -> tuple[Link, ...]:
    """The undirected links traversed by a node sequence."""
    return tuple(link_between(u, v) for u, v in zip(path, path[1:]))


def validate_path(
    topology: Topology,
    path: list[int],
    src: int,
    dst: int,
    require_minimal: bool = True,
) -> None:
    """Raise :class:`~repro.errors.RoutingError` unless ``path`` is a valid
    (optionally minimal) simple route from ``src`` to ``dst``."""
    if not path:
        raise RoutingError("empty path")
    if path[0] != src or path[-1] != dst:
        raise RoutingError(
            f"path endpoints {path[0]}->{path[-1]} do not match {src}->{dst}"
        )
    if len(set(path)) != len(path):
        raise RoutingError(f"path revisits a node: {path}")
    for u, v in zip(path, path[1:]):
        if not topology.are_adjacent(u, v):
            raise RoutingError(
                f"path hop {u}->{v} is not a link of {topology.name}"
            )
    if require_minimal and len(path) - 1 != topology.distance(src, dst):
        raise RoutingError(
            f"path of {len(path) - 1} hops is not minimal for {src}->{dst} "
            f"(distance {topology.distance(src, dst)})"
        )
