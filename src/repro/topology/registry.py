"""The registry of standard 64-node machines.

The paper's evaluation (and every CLI/service entry point in this repo)
works over four canonical 64-node interconnects.  This module gives
them stable wire names so that the CLI, the serve farm's HTTP requests
and the load generator all resolve ``"hypercube6"`` (or a paper-style
alias like ``"6cube"``) to the same machine without importing each
other.
"""

from __future__ import annotations

from typing import Callable

from repro.topology.base import Topology
from repro.topology.ghc import GeneralizedHypercube
from repro.topology.hypercube import binary_hypercube
from repro.topology.torus import Torus

#: Canonical machine name -> factory.
STANDARD_TOPOLOGIES: dict[str, Callable[[], Topology]] = {
    "hypercube6": lambda: binary_hypercube(6),
    "ghc444": lambda: GeneralizedHypercube((4, 4, 4)),
    "torus8x8": lambda: Torus((8, 8)),
    "torus4x4x4": lambda: Torus((4, 4, 4)),
}

#: Paper-style shorthand accepted anywhere a topology name is.
TOPOLOGY_ALIASES: dict[str, str] = {
    "6cube": "hypercube6",
    "cube6": "hypercube6",
    "8x8torus": "torus8x8",
    "4x4x4torus": "torus4x4x4",
}


def topology_names() -> list[str]:
    """Every accepted name: canonical names plus aliases, sorted."""
    return sorted(STANDARD_TOPOLOGIES) + sorted(TOPOLOGY_ALIASES)


def make_topology(name: str) -> Topology:
    """Resolve a topology name (canonical or alias) to a fresh instance.

    Raises :class:`KeyError` with the accepted names for unknown input —
    callers validating untrusted wire payloads turn that into a 400.
    """
    canonical = TOPOLOGY_ALIASES.get(name, name)
    try:
        factory = STANDARD_TOPOLOGIES[canonical]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; expected one of "
            f"{', '.join(topology_names())}"
        ) from None
    return factory()
