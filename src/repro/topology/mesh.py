"""Open (non-wraparound) meshes.

Not part of the paper's evaluation, but a natural member of the family:
with only one minimal direction per dimension a mesh has even fewer
alternative paths than a torus, which makes it a useful stress case for
path assignment in tests and examples.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology


class Mesh(Topology):
    """Open mesh with the given per-dimension radices (LSD first).

    >>> Mesh((4, 4)).degree(0)   # a corner node
    2
    >>> Mesh((4, 4)).num_links
    24
    """

    def __init__(self, radices: Sequence[int]):
        label = "Mesh(" + "x".join(str(r) for r in radices) + ")"
        super().__init__(radices, name=label)
        self._neighbor_cache: dict[int, tuple[int, ...]] = {}

    def neighbors(self, node: int) -> tuple[int, ...]:
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        self._check_node(node)
        digits = list(self.address(node))
        result: list[int] = []
        for dim, radix in enumerate(self.radices):
            original = digits[dim]
            for step in (1, -1):
                digit = original + step
                if not 0 <= digit < radix:
                    continue
                digits[dim] = digit
                result.append(self.node_at(digits))
            digits[dim] = original
        out = tuple(result)
        self._neighbor_cache[node] = out
        return out

    def distance(self, u: int, v: int) -> int:
        """Manhattan distance over digit vectors."""
        a = self.address(u)
        b = self.address(v)
        return sum(abs(x - y) for x, y in zip(a, b))

    def dimension_steps(self, src_digit: int, dst_digit: int, dim: int) -> list[list[int]]:
        """The single unit-step walk toward the target digit."""
        if src_digit == dst_digit:
            return [[]]
        step = 1 if dst_digit > src_digit else -1
        walk = list(range(src_digit + step, dst_digit + step, step))
        return [walk]
