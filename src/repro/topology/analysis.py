"""Structural analysis of interconnect topologies.

Quantities a designer reads off a candidate machine before committing to
it: diameter, average distance, bisection width, and per-node capacity.
The design-sweep example and the bounds analysis
(:mod:`repro.core.bounds`) build on these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.base import Link, Topology


@dataclass(frozen=True)
class TopologySummary:
    """Headline structural figures of one interconnect."""

    name: str
    num_nodes: int
    num_links: int
    degree_min: int
    degree_max: int
    diameter: int
    average_distance: float
    bisection_width: int


def diameter(topology: Topology) -> int:
    """Maximum over node pairs of the minimal hop count."""
    return max(
        topology.distance(0, v) for v in range(topology.num_nodes)
    ) if _is_vertex_transitive(topology) else max(
        topology.distance(u, v)
        for u in range(topology.num_nodes)
        for v in range(topology.num_nodes)
    )


def average_distance(topology: Topology) -> float:
    """Mean minimal distance over ordered distinct node pairs."""
    n = topology.num_nodes
    if n < 2:
        return 0.0
    if _is_vertex_transitive(topology):
        total = sum(topology.distance(0, v) for v in range(n))
        return total / (n - 1)
    total = sum(
        topology.distance(u, v)
        for u in range(n)
        for v in range(n)
        if u != v
    )
    return total / (n * (n - 1))


def canonical_bisection(topology: Topology) -> tuple[frozenset[int], tuple[Link, ...]]:
    """The canonical half-split: (upper-side node set, crossing links).

    The split fixes the most significant address digit below/at-or-above
    half its radix — the textbook bisection for GHCs, tori and meshes
    (exact when the top radix is even; a floor split otherwise).  The
    crossing-link set is what the static diagnoser's cut-capacity bound
    consumes; :func:`bisection_width` is its cardinality.
    """
    top_radix = topology.radices[-1]
    threshold = top_radix // 2
    upper = frozenset(
        node
        for node in range(topology.num_nodes)
        if topology.address(node)[-1] >= threshold
    )
    crossing = tuple(
        sorted(
            (u, v)
            for u in range(topology.num_nodes)
            for v in topology.neighbors(u)
            if u < v and ((u in upper) != (v in upper))
        )
    )
    return upper, crossing


def bisection_width(topology: Topology) -> int:
    """Links crossing the canonical half-split of the node set."""
    _, crossing = canonical_bisection(topology)
    return len(crossing)


def summarize(topology: Topology) -> TopologySummary:
    """Compute the full structural summary."""
    degrees = [topology.degree(n) for n in range(topology.num_nodes)]
    return TopologySummary(
        name=topology.name,
        num_nodes=topology.num_nodes,
        num_links=topology.num_links,
        degree_min=min(degrees),
        degree_max=max(degrees),
        diameter=diameter(topology),
        average_distance=average_distance(topology),
        bisection_width=bisection_width(topology),
    )


def _is_vertex_transitive(topology: Topology) -> bool:
    """GHCs and tori look the same from every node; meshes do not.

    Used only to shortcut all-pairs scans; correctness does not depend on
    it (the conservative path scans all pairs).
    """
    from repro.topology.ghc import GeneralizedHypercube
    from repro.topology.torus import Torus

    return isinstance(topology, (GeneralizedHypercube, Torus))
