"""k-ary n-dimensional tori (wraparound meshes).

Nodes are adjacent when their addresses differ by +-1 (mod radix) in
exactly one dimension.  Per dimension the minimal move is the shorter way
around the ring; when the offset is exactly half the (even) radix, both
directions are minimal and path enumeration explores both.  Tori have far
fewer minimal paths than generalized hypercubes — the paper traces their
higher peak utilisation (Fig. 6) to exactly this.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology


def ring_offsets(src_digit: int, dst_digit: int, radix: int) -> list[int]:
    """Signed minimal offsets moving ``src_digit -> dst_digit`` on a ring.

    Returns one offset normally, two (``+d`` and ``-d``) on an exact
    half-ring tie, and ``[0]`` when the digits already match.
    """
    if src_digit == dst_digit:
        return [0]
    forward = (dst_digit - src_digit) % radix
    backward = forward - radix
    if forward * 2 < radix:
        return [forward]
    if forward * 2 > radix:
        return [backward]
    return [forward, backward]  # half-ring tie: both directions minimal


class Torus(Topology):
    """Torus with the given per-dimension radices (LSD first).

    Examples
    --------
    >>> t = Torus((8, 8))
    >>> t.num_nodes, t.degree(0), t.num_links
    (64, 4, 128)
    >>> Torus((4, 4, 4)).num_links
    192
    """

    def __init__(self, radices: Sequence[int]):
        label = "Torus(" + "x".join(str(r) for r in radices) + ")"
        super().__init__(radices, name=label)
        self._neighbor_cache: dict[int, tuple[int, ...]] = {}

    def neighbors(self, node: int) -> tuple[int, ...]:
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        self._check_node(node)
        digits = list(self.address(node))
        result: list[int] = []
        for dim, radix in enumerate(self.radices):
            original = digits[dim]
            for step in (1, -1):
                digit = (original + step) % radix
                if digit == original:  # radix-2 ring: +1 and -1 coincide
                    continue
                digits[dim] = digit
                candidate = self.node_at(digits)
                if candidate not in result:
                    result.append(candidate)
            digits[dim] = original
        out = tuple(result)
        self._neighbor_cache[node] = out
        return out

    def distance(self, u: int, v: int) -> int:
        """Sum of per-dimension ring distances."""
        a = self.address(u)
        b = self.address(v)
        total = 0
        for x, y, radix in zip(a, b, self.radices):
            forward = (y - x) % radix
            total += min(forward, radix - forward)
        return total

    def dimension_steps(self, src_digit: int, dst_digit: int, dim: int) -> list[list[int]]:
        """Unit-step digit walks for each minimal ring direction.

        On a radix-2 ring the half-ring "tie" directions coincide (both
        are the single opposite node), so duplicates are dropped.
        """
        radix = self.radices[dim]
        alternatives: list[list[int]] = []
        for offset in ring_offsets(src_digit, dst_digit, radix):
            if offset == 0:
                return [[]]
            step = 1 if offset > 0 else -1
            walk = [
                (src_digit + step * k) % radix for k in range(1, abs(offset) + 1)
            ]
            if walk not in alternatives:
                alternatives.append(walk)
        return alternatives
