"""Interconnect topologies for distributed-memory multicomputers.

The paper's evaluation covers 64-node generalized hypercubes (the binary
6-cube and the GHC(4,4,4)) and tori (8x8 and 4x4x4).  This package models
those families plus open meshes:

- :class:`~repro.topology.base.Topology` — common node/link/addressing API,
- :class:`~repro.topology.ghc.GeneralizedHypercube` — GHC(m_1 ... m_r),
  complete graph in every dimension; the binary hypercube is the all-2 case
  (:func:`~repro.topology.hypercube.binary_hypercube`),
- :class:`~repro.topology.torus.Torus` — k-ary n-cube with wraparound,
- :class:`~repro.topology.mesh.Mesh` — open mesh (no wraparound),
- :mod:`~repro.topology.routing` — the deterministic LSD->MSD routing
  function used by wormhole routing, and path utilities,
- :mod:`~repro.topology.paths` — enumeration/sampling of the multiple
  equivalent minimal paths that scheduled routing exploits.

Links are **undirected and half-duplex** (paper Section 4.1): at any
instant a link carries at most one message, in one direction.
"""

from repro.topology.analysis import TopologySummary, summarize
from repro.topology.base import Link, Topology, link_between
from repro.topology.embedding import hamiltonian_path, ring_allocation
from repro.topology.ghc import GeneralizedHypercube
from repro.topology.hypercube import binary_hypercube
from repro.topology.mesh import Mesh
from repro.topology.routing import links_on_path, lsd_to_msd_route, validate_path
from repro.topology.paths import enumerate_minimal_paths, sample_minimal_path
from repro.topology.registry import (
    STANDARD_TOPOLOGIES,
    TOPOLOGY_ALIASES,
    make_topology,
    topology_names,
)
from repro.topology.torus import Torus

__all__ = [
    "GeneralizedHypercube",
    "Link",
    "Mesh",
    "STANDARD_TOPOLOGIES",
    "TOPOLOGY_ALIASES",
    "Topology",
    "TopologySummary",
    "Torus",
    "binary_hypercube",
    "enumerate_minimal_paths",
    "hamiltonian_path",
    "link_between",
    "links_on_path",
    "lsd_to_msd_route",
    "make_topology",
    "ring_allocation",
    "sample_minimal_path",
    "summarize",
    "topology_names",
    "validate_path",
]
