"""Generalized hypercubes GHC(m_1, ..., m_r).

In a generalized hypercube [Agr86] every dimension is a *complete* graph:
two nodes are adjacent iff their addresses differ in exactly one digit, by
any amount.  The binary hypercube is the special case with all radices 2.
Distance is the Hamming distance over digit vectors, and any differing
digit can be corrected in a single hop — so the minimal paths between two
nodes at distance h are exactly the h! orderings of the digit corrections,
the "multiple equivalent paths" scheduled routing spreads traffic over.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Topology


class GeneralizedHypercube(Topology):
    """GHC over the given per-dimension radices (LSD first).

    Examples
    --------
    >>> ghc = GeneralizedHypercube((4, 4, 4))
    >>> ghc.num_nodes, ghc.degree(0)
    (64, 9)
    >>> cube = GeneralizedHypercube((2,) * 6)   # binary 6-cube
    >>> cube.num_nodes, cube.num_links
    (64, 192)
    """

    def __init__(self, radices: Sequence[int]):
        label = "GHC(" + ",".join(str(r) for r in radices) + ")"
        super().__init__(radices, name=label)
        self._neighbor_cache: dict[int, tuple[int, ...]] = {}

    def neighbors(self, node: int) -> tuple[int, ...]:
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        self._check_node(node)
        digits = list(self.address(node))
        result: list[int] = []
        for dim, radix in enumerate(self.radices):
            original = digits[dim]
            for digit in range(radix):
                if digit == original:
                    continue
                digits[dim] = digit
                result.append(self.node_at(digits))
            digits[dim] = original
        out = tuple(result)
        self._neighbor_cache[node] = out
        return out

    def distance(self, u: int, v: int) -> int:
        """Hamming distance over mixed-radix digit vectors."""
        a = self.address(u)
        b = self.address(v)
        return sum(1 for x, y in zip(a, b) if x != y)

    def dimension_steps(self, src_digit: int, dst_digit: int, dim: int) -> list[list[int]]:
        """A GHC corrects a whole digit in one hop: one alternative."""
        if src_digit == dst_digit:
            return [[]]
        return [[dst_digit]]
