"""Hamiltonian-path embeddings into the supported topologies.

A classic mapping trick: lay a pipeline out along a Hamiltonian path so
every chain message crosses exactly one link.  Hypercubes admit the
binary reflected Gray code; tori and meshes admit boustrophedon (snake)
orders; generalized hypercubes admit a mixed-radix Gray code (adjacent
codewords differ in one digit — one GHC hop).

:func:`hamiltonian_path` dispatches per family and always returns a
sequence of all nodes in which consecutive nodes are adjacent — a
property the tests verify exhaustively.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.topology.ghc import GeneralizedHypercube
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus


def mixed_radix_gray(radices: tuple[int, ...]) -> list[tuple[int, ...]]:
    """The reflected Gray code over mixed radices (LSD first).

    Consecutive codewords differ in exactly one digit (by any amount) —
    i.e. by one generalized-hypercube hop.  For all-2 radices this is
    the standard binary reflected Gray code.

    >>> mixed_radix_gray((2, 2))
    [(0, 0), (1, 0), (1, 1), (0, 1)]
    """
    codes: list[tuple[int, ...]] = [()]
    for radix in radices:
        extended: list[tuple[int, ...]] = []
        for digit in range(radix):
            block = codes if digit % 2 == 0 else list(reversed(codes))
            for code in block:
                extended.append(code + (digit,))
        codes = extended
    return codes


def hamiltonian_path(topology: Topology) -> list[int]:
    """All nodes in an order where consecutive nodes are adjacent.

    Supported: generalized hypercubes (mixed-radix Gray code), tori and
    meshes (snake order).  Raises
    :class:`~repro.errors.TopologyError` for anything else.
    """
    if isinstance(topology, GeneralizedHypercube):
        return [
            topology.node_at(code)
            for code in mixed_radix_gray(topology.radices)
        ]
    if isinstance(topology, (Torus, Mesh)):
        return [
            topology.node_at(code) for code in _snake(topology.radices)
        ]
    raise TopologyError(
        f"no Hamiltonian-path construction for {topology.name}"
    )


def _snake(radices: tuple[int, ...]) -> list[tuple[int, ...]]:
    """Boustrophedon order: dimension 0 sweeps back and forth while the
    higher dimensions advance one step at a time (unit-step adjacency,
    valid on meshes and a fortiori on tori)."""
    codes: list[tuple[int, ...]] = [()]
    for radix in radices:
        extended = []
        for digit in range(radix):
            block = codes if digit % 2 == 0 else list(reversed(codes))
            for code in block:
                extended.append(code + (digit,))
        codes = extended
    return codes


def ring_allocation(tfg, topology: Topology) -> dict[str, int]:
    """Place tasks in topological order along the Hamiltonian path.

    For chain-like TFGs every message becomes a single hop; for layered
    TFGs communicating stages land close.  A drop-in alternative to the
    allocators in :mod:`repro.mapping`.
    """
    from repro.errors import AllocationError

    order = tfg.topological_order()
    path = hamiltonian_path(topology)
    if len(order) > len(path):
        raise AllocationError(
            f"{len(order)} tasks do not fit on {topology.name}"
        )
    return {name: path[i] for i, name in enumerate(order)}
