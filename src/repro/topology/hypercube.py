"""Binary hypercube convenience constructor."""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.ghc import GeneralizedHypercube


def binary_hypercube(dimensions: int) -> GeneralizedHypercube:
    """The binary ``dimensions``-cube, i.e. GHC(2, 2, ..., 2).

    >>> binary_hypercube(6).num_nodes
    64
    """
    if dimensions < 1:
        raise TopologyError(f"hypercube needs >= 1 dimension, got {dimensions}")
    return GeneralizedHypercube((2,) * dimensions)
