"""Common topology machinery: nodes, links, mixed-radix addressing.

Nodes are integers ``0 .. N-1``.  A node's *address* is its mixed-radix
digit vector over the topology's per-dimension radices, least-significant
digit (LSD) first — dimension 0 is the LSD, matching the paper's
"LSD-to-MSD" routing terminology.

Links are undirected: :data:`Link` is a sorted ``(u, v)`` node pair, so a
link is the same object key regardless of traversal direction (half-duplex
channels, paper Section 4.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TopologyError

Link = tuple[int, int]
"""An undirected link, canonically ordered ``(min(u, v), max(u, v))``."""


def link_between(u: int, v: int) -> Link:
    """The canonical :data:`Link` joining two adjacent nodes."""
    if u == v:
        raise TopologyError(f"no self-links: node {u}")
    return (u, v) if u < v else (v, u)


class Topology:
    """Base class for all interconnects.

    Subclasses define :meth:`neighbors`; everything else (link set,
    adjacency checks, addressing, distance) is derived here.  Subclasses
    with richer structure override :meth:`distance` and provide the
    path-enumeration hooks used by :mod:`repro.topology.paths`.

    Parameters
    ----------
    radices:
        Per-dimension sizes, LSD first.  The node count is their product.
    name:
        Human-readable label used in reports.
    """

    def __init__(self, radices: Sequence[int], name: str):
        radices = tuple(int(r) for r in radices)
        if not radices:
            raise TopologyError("topology needs at least one dimension")
        if any(r < 2 for r in radices):
            raise TopologyError(f"every radix must be >= 2, got {radices}")
        self.radices = radices
        self.name = name
        self.num_dimensions = len(radices)
        num_nodes = 1
        for r in radices:
            num_nodes *= r
        self.num_nodes = num_nodes
        self._links: tuple[Link, ...] | None = None

    # -- addressing ------------------------------------------------------

    def address(self, node: int) -> tuple[int, ...]:
        """Mixed-radix digits of ``node``, LSD first."""
        self._check_node(node)
        digits = []
        for r in self.radices:
            digits.append(node % r)
            node //= r
        return tuple(digits)

    def node_at(self, address: Sequence[int]) -> int:
        """Node id for a digit vector (inverse of :meth:`address`)."""
        if len(address) != self.num_dimensions:
            raise TopologyError(
                f"address {tuple(address)} has {len(address)} digits, "
                f"expected {self.num_dimensions}"
            )
        node = 0
        weight = 1
        for digit, radix in zip(address, self.radices):
            if not 0 <= digit < radix:
                raise TopologyError(
                    f"digit {digit} out of range for radix {radix} "
                    f"in address {tuple(address)}"
                )
            node += digit * weight
            weight *= radix
        return node

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range for {self.name} "
                f"({self.num_nodes} nodes)"
            )

    # -- structure ---------------------------------------------------------

    def neighbors(self, node: int) -> tuple[int, ...]:
        """Nodes adjacent to ``node``."""
        raise NotImplementedError

    def degree(self, node: int) -> int:
        """Number of links at ``node``."""
        return len(self.neighbors(node))

    @property
    def links(self) -> tuple[Link, ...]:
        """All undirected links, canonically ordered, sorted."""
        if self._links is None:
            found: set[Link] = set()
            for u in range(self.num_nodes):
                for v in self.neighbors(u):
                    found.add(link_between(u, v))
            self._links = tuple(sorted(found))
        return self._links

    @property
    def num_links(self) -> int:
        """Total undirected link count."""
        return len(self.links)

    def are_adjacent(self, u: int, v: int) -> bool:
        """True when ``u`` and ``v`` share a link."""
        self._check_node(u)
        self._check_node(v)
        return v in self.neighbors(u)

    def distance(self, u: int, v: int) -> int:
        """Minimal hop count between two nodes.

        The base implementation is a BFS; regular subclasses override it
        with closed forms.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return 0
        frontier = [u]
        seen = {u}
        hops = 0
        while frontier:
            hops += 1
            nxt: list[int] = []
            for w in frontier:
                for n in self.neighbors(w):
                    if n == v:
                        return hops
                    if n not in seen:
                        seen.add(n)
                        nxt.append(n)
            frontier = nxt
        raise TopologyError(f"{self.name} is disconnected: no path {u}->{v}")

    def minimal_path_pool(
        self, src: int, dst: int, max_paths: int | None = None
    ) -> list[list[int]]:
        """The pool of minimal ``src -> dst`` paths candidates draw from.

        The default delegates to the mixed-radix enumeration of
        :func:`repro.topology.paths.enumerate_minimal_paths`.  Subclasses
        whose link set is *not* the full product structure — notably the
        residual topologies of :mod:`repro.faults` — override this so
        path assignment and schedule repair only ever see live links.
        """
        from repro.topology.paths import enumerate_minimal_paths

        return enumerate_minimal_paths(self, src, dst, max_paths)

    # -- per-dimension step hooks used by routing/path enumeration ---------

    def dimension_steps(self, src_digit: int, dst_digit: int, dim: int) -> list[list[int]]:
        """Digit sequences (exclusive of ``src_digit``) realising the move
        ``src_digit -> dst_digit`` along ``dim`` by single hops.

        Returns a list of alternatives, each a list of intermediate+final
        digits.  A GHC corrects a digit in one hop (single alternative of
        length one); a torus walks unit steps and may have two minimal
        directions.  Dimensions already equal return ``[[]]``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.name}: {self.num_nodes} nodes, {self.num_links} links>"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.radices == other.radices  # type: ignore[union-attr]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.radices))
