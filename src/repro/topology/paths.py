"""Enumeration and sampling of the minimal paths between two nodes.

Scheduled routing "makes use of the multiple equivalent paths between
non-adjacent nodes" (paper abstract): the path-assignment heuristic needs,
for every multi-hop message, the pool of alternative minimal paths.  A
minimal path is built by choosing, per dimension, one minimal digit walk
(GHC: the one-hop correction; torus: one of at most two ring directions)
and then interleaving the per-dimension moves in any order.

The number of alternatives grows factorially with the hop count (h! in a
GHC), so enumeration takes a ``max_paths`` cap; the heuristic's inner loop
works with the capped pool and the random-restart outer loop compensates.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Iterator

from repro.errors import RoutingError
from repro.topology.base import Topology


def _move_lists(topology: Topology, src: int, dst: int) -> list[list[list[int]]]:
    """Per-dimension alternatives of digit walks from ``src`` to ``dst``."""
    src_addr = topology.address(src)
    dst_addr = topology.address(dst)
    alternatives: list[list[list[int]]] = []
    for dim in range(topology.num_dimensions):
        walks = topology.dimension_steps(src_addr[dim], dst_addr[dim], dim)
        alternatives.append(walks)
    return alternatives


def _interleavings(
    walks: list[list[int]],
    topology: Topology,
    src: int,
) -> Iterator[list[int]]:
    """All node paths realizable by interleaving the per-dimension walks.

    ``walks[dim]`` is the (possibly empty) ordered digit sequence dimension
    ``dim`` must pass through.  Moves within a dimension keep their order;
    moves across dimensions interleave freely.
    """
    digits = list(topology.address(src))
    positions = [0] * len(walks)
    path = [src]

    def recurse() -> Iterator[list[int]]:
        done = True
        for dim, walk in enumerate(walks):
            if positions[dim] < len(walk):
                done = False
                saved = digits[dim]
                digits[dim] = walk[positions[dim]]
                positions[dim] += 1
                path.append(topology.node_at(digits))
                yield from recurse()
                path.pop()
                positions[dim] -= 1
                digits[dim] = saved
        if done:
            yield list(path)

    yield from recurse()


def iter_minimal_paths(topology: Topology, src: int, dst: int) -> Iterator[list[int]]:
    """Lazily yield every minimal path ``src -> dst`` in deterministic order."""
    topology._check_node(src)
    topology._check_node(dst)
    if src == dst:
        yield [src]
        return
    for combo in product(*_move_lists(topology, src, dst)):
        yield from _interleavings(list(combo), topology, src)


def enumerate_minimal_paths(
    topology: Topology,
    src: int,
    dst: int,
    max_paths: int | None = None,
) -> list[list[int]]:
    """All minimal paths ``src -> dst``, capped at ``max_paths``.

    The order is deterministic (dimension-0-first DFS), so a capped pool is
    stable across runs.
    """
    if max_paths is not None and max_paths < 1:
        raise RoutingError(f"max_paths must be >= 1, got {max_paths}")
    result: list[list[int]] = []
    for path in iter_minimal_paths(topology, src, dst):
        result.append(path)
        if max_paths is not None and len(result) >= max_paths:
            break
    return result


def count_minimal_paths(topology: Topology, src: int, dst: int) -> int:
    """Closed-form count of minimal paths (multinomial over dimensions,
    times the product of per-dimension direction choices)."""
    if src == dst:
        return 1
    from math import factorial

    total = 0
    for combo in product(*_move_lists(topology, src, dst)):
        lengths = [len(walk) for walk in combo if walk]
        numer = factorial(sum(lengths))
        for length in lengths:
            numer //= factorial(length)
        total += numer
    return total


def sample_minimal_path(
    topology: Topology,
    src: int,
    dst: int,
    rng: random.Random,
) -> list[int]:
    """A random minimal path, drawn without enumerating the full set.

    Picks a random direction per tied dimension and then a uniformly random
    interleaving of the remaining moves.  (Across direction choices the
    distribution is close to, not exactly, uniform; the path-assignment
    heuristic only needs diversity, not exact uniformity.)
    """
    if src == dst:
        return [src]
    walks = [rng.choice(options) for options in _move_lists(topology, src, dst)]
    digits = list(topology.address(src))
    positions = [0] * len(walks)
    path = [src]
    pending = [dim for dim, walk in enumerate(walks) if walk]
    while pending:
        weights = [len(walks[dim]) - positions[dim] for dim in pending]
        dim = rng.choices(pending, weights=weights)[0]
        digits[dim] = walks[dim][positions[dim]]
        positions[dim] += 1
        path.append(topology.node_at(digits))
        if positions[dim] == len(walks[dim]):
            pending.remove(dim)
    return path
