"""Unicode sparklines for measured series."""

from __future__ import annotations

from typing import Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(series: Sequence[float]) -> str:
    """A one-line unicode plot of a numeric series.

    Values are scaled to the series' own min..max; a constant series
    renders as a flat mid-height line — which is exactly what a
    consistent pipelined run's output-interval series should look like.

    >>> sparkline([1.0, 1.0, 1.0])
    '▄▄▄'
    >>> len(sparkline([0, 5, 10, 5, 0]))
    5
    """
    if not series:
        return ""
    lo, hi = min(series), max(series)
    if hi - lo < 1e-12:
        return _BLOCKS[3] * len(series)
    span = hi - lo
    return "".join(
        _BLOCKS[min(int((v - lo) / span * (len(_BLOCKS) - 1)), len(_BLOCKS) - 1)]
        for v in series
    )


def series_panel(title: str, series: Sequence[float], unit: str = "") -> str:
    """A labeled sparkline with min/mean/max annotations."""
    if not series:
        return f"{title}: (empty)"
    mean = sum(series) / len(series)
    suffix = f" {unit}" if unit else ""
    return (
        f"{title}\n"
        f"  {sparkline(series)}\n"
        f"  min {min(series):.3f} / mean {mean:.3f} / "
        f"max {max(series):.3f}{suffix} over {len(series)} samples"
    )
