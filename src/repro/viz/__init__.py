"""Plain-text visualization of schedules and measurements.

Terminal-friendly renderings used by the examples and handy in a REPL:

- :func:`~repro.viz.gantt.node_gantt` — a Gantt chart of one node's
  switching schedule over the frame,
- :func:`~repro.viz.gantt.link_occupancy_chart` — per-link busy bars for
  a communication schedule,
- :func:`~repro.viz.gantt.trace_occupancy_chart` — per-link busy bars
  measured from a recorded run trace (:mod:`repro.trace`),
- :func:`~repro.viz.sparkline.sparkline` — a unicode mini-plot of a
  measured series (throughput/latency per invocation).
"""

from repro.viz.gantt import (
    link_occupancy_chart,
    node_gantt,
    trace_occupancy_chart,
)
from repro.viz.sparkline import series_panel, sparkline

__all__ = [
    "link_occupancy_chart",
    "node_gantt",
    "series_panel",
    "sparkline",
    "trace_occupancy_chart",
]
