"""ASCII Gantt charts of communication schedules and recorded traces."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.switching import CommunicationSchedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.tracer import TraceRecorder


def _bar(intervals: list[tuple[float, float]], frame: float, width: int) -> str:
    """Render busy intervals of ``[0, frame]`` as a fixed-width bar."""
    cells = [" "] * width
    for start, end in intervals:
        first = int(start / frame * width)
        last = max(first, int(end / frame * width) - 1)
        for i in range(first, min(last + 1, width)):
            cells[i] = "#"
    return "".join(cells)


def node_gantt(
    schedule: CommunicationSchedule,
    node: int,
    width: int = 64,
) -> str:
    """A Gantt chart of one node's switching commands over the frame.

    One row per (input port -> output port) connection the node makes;
    ``#`` marks when the connection is held.  Ports are neighbor node ids
    or ``AP`` for the local processor's buffers.

    >>> # doctest-style shape only; see tests for exact assertions
    """
    node_schedule = schedule.node_schedules.get(node)
    if node_schedule is None or not node_schedule.commands:
        return f"node {node}: no switching commands"
    rows: dict[tuple, list[tuple[float, float]]] = {}
    labels: dict[tuple, str] = {}
    for command in node_schedule.commands:
        key = (command.input_port, command.output_port, command.message)
        rows.setdefault(key, []).append((command.time, command.end))
        labels[key] = (
            f"{str(command.input_port):>3}->{str(command.output_port):<3} "
            f"{command.message}"
        )
    label_width = max(len(v) for v in labels.values())
    lines = [
        f"node {node} switching schedule, frame [0, {schedule.tau_in:g}] us"
    ]
    for key in sorted(rows, key=lambda k: min(s for s, _ in rows[k])):
        bar = _bar(rows[key], schedule.tau_in, width)
        lines.append(f"{labels[key]:<{label_width}} |{bar}|")
    return "\n".join(lines)


def link_occupancy_chart(
    schedule: CommunicationSchedule,
    width: int = 64,
    top: int | None = None,
) -> str:
    """Busy bars for every link the schedule uses, busiest first.

    ``top`` limits the output to the N busiest links.
    """
    by_link: dict[tuple, list[tuple[float, float]]] = {}
    for slot in schedule.all_slots():
        for link in slot.links:
            by_link.setdefault(link, []).append((slot.start, slot.end))
    if not by_link:
        return "schedule uses no links"

    def busy_time(intervals):
        return sum(end - start for start, end in intervals)

    ranked = sorted(by_link.items(), key=lambda kv: -busy_time(kv[1]))
    if top is not None:
        ranked = ranked[:top]
    lines = [f"link occupancy over frame [0, {schedule.tau_in:g}] us"]
    for link, intervals in ranked:
        fraction = busy_time(intervals) / schedule.tau_in
        bar = _bar(intervals, schedule.tau_in, width)
        lines.append(f"{str(link):>10} {fraction:5.1%} |{bar}|")
    return "\n".join(lines)


def trace_occupancy_chart(
    recorder: "TraceRecorder",
    width: int = 64,
    top: int | None = None,
    window: tuple[float, float] | None = None,
) -> str:
    """Busy bars of *measured* link occupancy from a recorded trace.

    Where :func:`link_occupancy_chart` draws the compiled schedule's
    intent (one frame), this draws what a traced run actually did over
    the whole simulation: every ``link``/``occupy`` span the
    :class:`~repro.trace.tracer.TraceRecorder` captured, one row per
    link, busiest first.  ``window`` restricts the chart to an absolute
    time interval (e.g. one steady-state period).
    """
    occupancy = recorder.occupancy()
    if window is not None:
        t0, t1 = window
        occupancy = {
            track: [
                (max(start, t0), min(end, t1), owner)
                for start, end, owner in spans
                if start < t1 and end > t0
            ]
            for track, spans in occupancy.items()
        }
        occupancy = {k: v for k, v in occupancy.items() if v}
    if not occupancy:
        return "trace recorded no link occupancy"
    origin = min(s for spans in occupancy.values() for s, _, _ in spans)
    horizon = max(e for spans in occupancy.values() for _, e, _ in spans)
    span = max(horizon - origin, 1e-9)

    def busy_time(spans):
        return sum(end - start for start, end, _ in spans)

    ranked = sorted(occupancy.items(), key=lambda kv: -busy_time(kv[1]))
    if top is not None:
        ranked = ranked[:top]
    lines = [f"traced link occupancy over [{origin:g}, {horizon:g}] us"]
    for track, spans in ranked:
        fraction = busy_time(spans) / span
        intervals = [(s - origin, e - origin) for s, e, _ in spans]
        bar = _bar(intervals, span, width)
        owners = sorted({owner for _, _, owner in spans if owner})
        suffix = f"  [{', '.join(owners)}]" if owners else ""
        lines.append(f"{track:>10} {fraction:5.1%} |{bar}|{suffix}")
    return "\n".join(lines)
