"""ASCII Gantt charts of communication schedules."""

from __future__ import annotations

from repro.core.switching import CommunicationSchedule


def _bar(intervals: list[tuple[float, float]], frame: float, width: int) -> str:
    """Render busy intervals of ``[0, frame]`` as a fixed-width bar."""
    cells = [" "] * width
    for start, end in intervals:
        first = int(start / frame * width)
        last = max(first, int(end / frame * width) - 1)
        for i in range(first, min(last + 1, width)):
            cells[i] = "#"
    return "".join(cells)


def node_gantt(
    schedule: CommunicationSchedule,
    node: int,
    width: int = 64,
) -> str:
    """A Gantt chart of one node's switching commands over the frame.

    One row per (input port -> output port) connection the node makes;
    ``#`` marks when the connection is held.  Ports are neighbor node ids
    or ``AP`` for the local processor's buffers.

    >>> # doctest-style shape only; see tests for exact assertions
    """
    node_schedule = schedule.node_schedules.get(node)
    if node_schedule is None or not node_schedule.commands:
        return f"node {node}: no switching commands"
    rows: dict[tuple, list[tuple[float, float]]] = {}
    labels: dict[tuple, str] = {}
    for command in node_schedule.commands:
        key = (command.input_port, command.output_port, command.message)
        rows.setdefault(key, []).append((command.time, command.end))
        labels[key] = (
            f"{str(command.input_port):>3}->{str(command.output_port):<3} "
            f"{command.message}"
        )
    label_width = max(len(v) for v in labels.values())
    lines = [
        f"node {node} switching schedule, frame [0, {schedule.tau_in:g}] us"
    ]
    for key in sorted(rows, key=lambda k: min(s for s, _ in rows[k])):
        bar = _bar(rows[key], schedule.tau_in, width)
        lines.append(f"{labels[key]:<{label_width}} |{bar}|")
    return "\n".join(lines)


def link_occupancy_chart(
    schedule: CommunicationSchedule,
    width: int = 64,
    top: int | None = None,
) -> str:
    """Busy bars for every link the schedule uses, busiest first.

    ``top`` limits the output to the N busiest links.
    """
    by_link: dict[tuple, list[tuple[float, float]]] = {}
    for slot in schedule.all_slots():
        for link in slot.links:
            by_link.setdefault(link, []).append((slot.start, slot.end))
    if not by_link:
        return "schedule uses no links"

    def busy_time(intervals):
        return sum(end - start for start, end in intervals)

    ranked = sorted(by_link.items(), key=lambda kv: -busy_time(kv[1]))
    if top is not None:
        ranked = ranked[:top]
    lines = [f"link occupancy over frame [0, {schedule.tau_in:g}] us"]
    for link, intervals in ranked:
        fraction = busy_time(intervals) / schedule.tau_in
        bar = _bar(intervals, schedule.tau_in, width)
        lines.append(f"{str(link):>10} {fraction:5.1%} |{bar}|")
    return "\n".join(lines)
