"""Per-stage delta compilation: artifact keys over the stage pipeline.

The monolithic schedule key of :mod:`repro.cache.keys` is all-or-nothing:
change one message size, drop one link, and the whole compilation is
cold again even though most of the LP work would come out identical.
This module generalizes what :mod:`repro.faults.repair` proved locally —
partial recompilation is sound — into content-addressed **artifact
keys** for the expensive pipeline stages:

- ``assign-paths`` — keyed on the *content* of the time bounds, the
  minimal-path candidate pools, and the heuristic knobs (seed,
  ``max_paths``, ``max_restarts``).  The pools insight does the heavy
  lifting: a topology perturbation that touches no candidate pool (e.g.
  dropping an unused link) leaves the key unchanged, so the whole
  descent is skipped;
- ``allocate+schedule`` — one artifact per maximal subset, keyed on the
  interval lengths plus each member's duration, activity row and path
  links (everything the two LPs consume).  Failures are stored as
  *negative* artifacts so a delta recompile replays the feedback/retry
  loop byte-identically;
- ``build-schedule`` — the final Omega, keyed on the bounds digest, the
  assignment content digest and the per-subset artifact keys.

Keys hash actual stage **inputs**, never instance provenance, so an
artifact is reused exactly when stage determinism guarantees the same
output — byte-identity of delta recompiles (modulo wall times and LP
tallies) falls out by construction and is enforced by the fuzz corpus'
delta differential.  Cheap stages (time bounds, the utilisation gate,
maximal subsets) are recomputed; their content digests feed the keys of
the stages downstream.

:class:`DeltaState` carries the digests through one compilation and
brokers fetch/store against the :class:`~repro.cache.store.ScheduleCache`
artifact tier; per-stage hit/miss/store counters land in
``CacheStats.stages`` (never in the scalar schedule-level counters).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.cache.keys import (
    CACHE_VERSION,
    canonical_allocation,
    canonical_topology,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ScheduleCache
    from repro.core.assignment import PathAssignment
    from repro.core.compiler import CompilerConfig
    from repro.core.interval_allocation import IntervalAllocation
    from repro.core.interval_scheduling import IntervalSchedule
    from repro.core.switching import CommunicationSchedule
    from repro.core.timebounds import TimeBoundSet
    from repro.errors import SchedulingError
    from repro.tfg.analysis import TFGTiming
    from repro.topology.base import Topology

__all__ = [
    "DeltaState",
    "artifact_key",
    "bounds_content",
    "pools_content",
    "warm_scope_key",
]

#: Artifact stage names (also the ``CacheStats.stages`` counter keys).
STAGE_ASSIGN = "assign-paths"
STAGE_INTERVAL = "allocate+schedule"
STAGE_SCHEDULE = "build-schedule"


def _digest(payload: Any) -> str:
    """SHA-256 hex digest of a canonical-JSON payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def artifact_key(stage: str, inputs: Mapping[str, Any]) -> str:
    """The content key of one stage artifact.

    ``inputs`` must canonicalize everything the stage reads; the
    ``"artifact"`` marker keeps the key space disjoint from schedule and
    diagnosis keys, and :data:`~repro.cache.keys.CACHE_VERSION` retires
    old artifacts whenever the payload layout changes.
    """
    return _digest(
        {"version": CACHE_VERSION, "artifact": stage, "inputs": dict(inputs)}
    )


def bounds_content(bounds: "TimeBoundSet") -> dict[str, Any]:
    """The time-bound set as canonical content (order-preserving).

    Message order is part of the content: the AssignPaths RNG consumes
    pools in message order, so bound sets equal up to reordering must
    *not* collapse to one digest.
    """
    return {
        "tau_in": bounds.tau_in,
        "bounds": [
            [
                name,
                b.release,
                b.deadline,
                b.duration,
                [[start, end] for start, end in b.windows],
            ]
            for name, b in bounds.bounds.items()
        ],
    }


def pools_content(
    pools: Mapping[str, Sequence[Sequence[int]]],
) -> list[list[Any]]:
    """Candidate path pools as canonical content (order-preserving).

    Pool enumeration order matters — the heuristic's random initial
    assignments index into it — so the pools are hashed exactly as
    enumerated.  The pools also determine every message's endpoints
    (each path runs source → destination), so no separate endpoint
    digest is needed.
    """
    return [
        [name, [list(path) for path in pool]] for name, pool in pools.items()
    ]


def warm_scope_key(
    timing: "TFGTiming",
    topology: "Topology",
    allocation: Mapping[str, int],
    backend_name: str,
) -> str:
    """The warm-start basis scope of one structural problem family.

    Deliberately **excludes** message sizes, task speeds, bandwidth and
    the period: LP *structure* (which variables and constraints exist)
    follows from the task/message/topology/allocation skeleton, so
    matrix cells differing only in load — and delta recompiles of
    size-perturbed instances — share one basis pool.  Safety does not
    rest on this key: the backend re-checks the per-problem structure
    signature before applying any cached basis, and warm-started HiGHS
    solves are byte-identical to cold ones (PR 7 property tests).
    """
    tfg = timing.tfg
    return _digest(
        {
            "version": CACHE_VERSION,
            "scope": "warm-start",
            "tasks": [task.name for task in tfg.tasks],
            "messages": [[m.name, m.src, m.dst] for m in tfg.messages],
            "topology": canonical_topology(topology),
            "allocation": canonical_allocation(allocation),
            "backend": backend_name,
        }
    )


def _assignment_content(assignment: "PathAssignment") -> list[list[Any]]:
    return [
        [name, list(assignment.path(name))] for name in assignment.messages
    ]


class DeltaState:
    """Digest bookkeeping + artifact broker for one delta compilation.

    Created by :func:`~repro.core.compiler.compile_schedule` whenever a
    cache is attached and the monolithic key missed; the pipeline stages
    consult it through ``context.delta``.  Instance-level digests are
    computed once; attempt-level digests (assignment, subsets) are wiped
    by :meth:`reset_attempt` alongside the context's artifacts.
    """

    def __init__(
        self,
        cache: "ScheduleCache",
        timing: "TFGTiming",
        topology: "Topology",
        allocation: Mapping[str, int],
        tau_in: float,
        config: "CompilerConfig",
    ) -> None:
        from repro.solvers import default_backend_name

        self.cache = cache
        self.config = config
        backend = config.lp_backend
        self.backend_name = (
            default_backend_name() if backend == "auto" else backend
        )
        self.topology_digest = _digest(canonical_topology(topology))
        self.allocation_digest = _digest(canonical_allocation(allocation))
        self.tau_in = float(tau_in)
        # Recorded as the stages run.
        self.bounds_digest: str | None = None
        self.assignment_digest: str | None = None
        self.subset_keys: list[str] = []

    def reset_attempt(self) -> None:
        """Wipe attempt-scoped digests before a retry under a new seed."""
        self.assignment_digest = None
        self.subset_keys = []

    # -- time bounds (recomputed; digest feeds downstream keys) ----------

    def record_bounds(self, bounds: "TimeBoundSet") -> None:
        self.bounds_digest = _digest(bounds_content(bounds))

    # -- path assignment --------------------------------------------------

    def assignment_key(
        self, pools: Mapping[str, Sequence[Sequence[int]]], seed: int
    ) -> str:
        """Artifact key of the heuristic assignment for one attempt."""
        config = self.config
        return artifact_key(
            STAGE_ASSIGN,
            {
                "kind": "heuristic",
                "bounds": self.bounds_digest,
                "pools": pools_content(pools),
                "seed": seed,
                "max_paths": config.max_paths,
                "max_restarts": config.max_restarts,
            },
        )

    def lsd_assignment_key(self) -> str:
        """Artifact key of the deterministic LSD→MSD baseline assignment."""
        return artifact_key(
            STAGE_ASSIGN,
            {
                "kind": "lsd",
                "bounds": self.bounds_digest,
                "topology": self.topology_digest,
                "allocation": self.allocation_digest,
            },
        )

    def fetch_assignment(
        self,
        key: str,
        topology: "Topology",
        endpoints: Mapping[str, tuple[int, int]],
    ) -> "PathAssignment | None":
        """Rebuild a stored assignment; ``None`` on miss or stale payload."""
        from repro.core.assignment import PathAssignment
        from repro.errors import ReproError

        payload = self.cache.fetch_artifact(key, STAGE_ASSIGN)
        if payload is None:
            return None
        try:
            paths = {
                str(name): [int(n) for n in path]
                for name, path in payload["paths"]
            }
            assignment = PathAssignment(topology, dict(endpoints), paths)
        except (KeyError, TypeError, ValueError, ReproError):
            return None
        self.record_assignment(assignment)
        return assignment

    def store_assignment(self, key: str, assignment: "PathAssignment") -> None:
        self.cache.store_artifact(
            key, STAGE_ASSIGN, {"paths": _assignment_content(assignment)}
        )
        self.record_assignment(assignment)

    def record_assignment(self, assignment: "PathAssignment") -> None:
        self.assignment_digest = _digest(_assignment_content(assignment))

    # -- per-subset interval allocation + scheduling ----------------------

    def subset_key(
        self,
        bounds: "TimeBoundSet",
        assignment: "PathAssignment",
        subset: tuple[str, ...],
        index: int,
    ) -> str:
        """Artifact key of one subset's allocation/scheduling outcome.

        Canonicalizes everything the two LPs (and the feedback loop
        between them) consume: the interval lengths, and per member its
        duration, activity row and path links.  The resolved backend
        name is included (different solvers may legitimately pick
        different optima); the perf-only ``lp_batch``/``lp_warm_start``
        knobs are not (batched and warm-started solves are
        byte-identical).  ``index`` pins the error metadata
        (``subset_index``) of negative artifacts.
        """
        messages = []
        for name in subset:
            bound = bounds.bounds[name]
            row = bounds.activity[bounds.index[name]]
            messages.append(
                [
                    name,
                    bound.duration,
                    [int(flag) for flag in row],
                    [[u, v] for u, v in assignment.links(name)],
                ]
            )
        return artifact_key(
            STAGE_INTERVAL,
            {
                "lengths": list(bounds.intervals.lengths),
                "messages": messages,
                "subset_index": index,
                "feedback_rounds": self.config.feedback_rounds,
                "backend": self.backend_name,
            },
        )

    def fetch_subset(
        self, key: str, subset: tuple[str, ...]
    ) -> "tuple[IntervalAllocation, dict[int, IntervalSchedule]] | None":
        """Replay one subset's stored outcome.

        Returns the (allocation, interval schedules) pair on a success
        hit, ``None`` on a miss or stale payload — and **raises** the
        recorded :class:`~repro.errors.SchedulingError` on a negative
        hit, exactly as the live feedback loop would, so the compiler's
        retry machinery replays byte-identically.
        """
        from repro.cache.store import entry_to_error
        from repro.core.interval_allocation import IntervalAllocation
        from repro.core.interval_scheduling import (
            FeasibleSetSlot,
            IntervalSchedule,
        )

        payload = self.cache.fetch_artifact(key, STAGE_INTERVAL)
        if payload is None:
            return None
        try:
            if payload.get("outcome") == "failure":
                error = entry_to_error(payload["error"])
            else:
                allocation = IntervalAllocation(
                    subset=subset,
                    allocation={
                        (str(name), int(k)): float(t)
                        for name, k, t in payload["cells"]
                    },
                    load_factor=float(payload["load_factor"]),
                )
                schedules = {
                    int(k): IntervalSchedule(
                        interval=int(k),
                        slots=tuple(
                            FeasibleSetSlot(
                                messages=frozenset(
                                    str(m) for m in slot_messages
                                ),
                                duration=float(duration),
                            )
                            for slot_messages, duration in slots
                        ),
                    )
                    for k, slots in payload["schedules"]
                }
        except (KeyError, TypeError, ValueError):
            return None
        if payload.get("outcome") == "failure":
            self.subset_keys.append(key)
            raise error
        self.subset_keys.append(key)
        return allocation, schedules

    def store_subset(
        self,
        key: str,
        allocation: "IntervalAllocation",
        schedules: "Mapping[int, IntervalSchedule]",
    ) -> None:
        payload = {
            "outcome": "success",
            "cells": [
                [name, k, t] for (name, k), t in allocation.allocation.items()
            ],
            "load_factor": allocation.load_factor,
            "schedules": [
                [
                    k,
                    [
                        [sorted(slot.messages), slot.duration]
                        for slot in schedule.slots
                    ],
                ]
                for k, schedule in schedules.items()
            ],
        }
        self.cache.store_artifact(key, STAGE_INTERVAL, payload)
        self.subset_keys.append(key)

    def store_subset_failure(self, key: str, error: "SchedulingError") -> None:
        """Record a negative artifact replaying the exact stage error."""
        from repro.cache.store import error_to_entry

        self.cache.store_artifact(
            key,
            STAGE_INTERVAL,
            {"outcome": "failure", "error": error_to_entry(error)},
        )
        self.subset_keys.append(key)

    # -- the assembled schedule ------------------------------------------

    def schedule_key(self) -> str:
        """Artifact key of the final Omega for this attempt's artifacts."""
        return artifact_key(
            STAGE_SCHEDULE,
            {
                "bounds": self.bounds_digest,
                "assignment": self.assignment_digest,
                "subsets": list(self.subset_keys),
            },
        )

    def fetch_schedule(self, key: str) -> "CommunicationSchedule | None":
        from repro.core.io import schedule_from_dict
        from repro.errors import ReproError

        payload = self.cache.fetch_artifact(key, STAGE_SCHEDULE)
        if payload is None:
            return None
        try:
            return schedule_from_dict(payload["schedule"])
        except (KeyError, TypeError, ValueError, ReproError):
            return None

    def store_schedule(
        self, key: str, schedule: "CommunicationSchedule"
    ) -> None:
        from repro.core.io import schedule_to_dict

        self.cache.store_artifact(
            key, STAGE_SCHEDULE, {"schedule": schedule_to_dict(schedule)}
        )
