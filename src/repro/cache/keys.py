"""Content-addressed cache keys for compiled schedules.

A compilation is fully determined by five inputs: the task-flow graph,
its timing (bandwidth, speeds, message window), the topology's link set,
the task→node allocation, the input period, and the compiler config.
:func:`schedule_cache_key` canonicalizes all of them into one JSON
payload and hashes it with SHA-256, so the key is

- **stable** — independent of ``PYTHONHASHSEED``, process, platform and
  dict insertion tricks (every mapping is emitted with sorted keys;
  floats round-trip exactly through ``repr``);
- **complete** — any input that can change the compiled schedule is in
  the payload, including every :class:`~repro.core.compiler.
  CompilerConfig` field, so perturbing a single field yields a
  different key;
- **structural for topologies** — the key hashes the actual link set,
  not the topology's display name, so two residual topologies that both
  print as ``hypercube(6)-2down`` but lost different links get
  different keys.

Bump :data:`CACHE_VERSION` whenever the payload layout or the
serialized entry format changes; old entries then miss instead of
deserializing wrongly (the invalidation rule — see ``docs/compiler.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiler import CompilerConfig
    from repro.tfg.analysis import TFGTiming
    from repro.tfg.graph import TaskFlowGraph
    from repro.topology.base import Topology

#: Version stamp baked into every key and every stored entry.
#: ``/2``: perf-only solver knobs (``lp_batch``/``lp_warm_start``) are
#: now elided from :func:`canonical_config` unconditionally — entries
#: written under ``/1`` keys (which hashed non-default knob values)
#: would otherwise shadow or miss the unified key space.
CACHE_VERSION = "repro.cache/2"

#: ``CompilerConfig`` fields that change solver wall time but provably
#: not the compiled schedule (pinned by the PR 7 property tests) —
#: always elided from cache keys.
PERF_ONLY_CONFIG_FIELDS = ("lp_batch", "lp_warm_start")

#: ``CompilerConfig`` fields that are part of cache identity.  Together
#: with :data:`PERF_ONLY_CONFIG_FIELDS` this is the complete decision
#: ledger: every config field appears in exactly one of the two tuples.
#: The ``cache-key`` lint rule cross-checks the ledger against the
#: dataclass statically, and :func:`canonical_config` enforces it at
#: runtime — a new knob cannot ship without an explicit hash-or-elide
#: decision.
HASHED_CONFIG_FIELDS = (
    "seed",
    "use_assign_paths",
    "max_paths",
    "max_restarts",
    "retries",
    "feedback_rounds",
    "sync_margin",
    "lp_backend",
    "prescreen",
)


def canonical_tfg(tfg: "TaskFlowGraph") -> dict[str, Any]:
    """The TFG as a plain, deterministically ordered structure."""
    return {
        "name": tfg.name,
        "tasks": [[task.name, task.ops] for task in tfg.tasks],
        "messages": [
            [m.name, m.src, m.dst, m.size_bytes] for m in tfg.messages
        ],
    }


def canonical_timing(timing: "TFGTiming") -> dict[str, Any]:
    """Timing inputs: TFG plus bandwidth, speeds and message window."""
    return {
        "tfg": canonical_tfg(timing.tfg),
        "bandwidth": timing.bandwidth,
        "speeds": sorted(
            (task.name, timing.speed(task.name)) for task in timing.tfg.tasks
        ),
        "message_window": timing.message_window,
    }


def canonical_topology(topology: "Topology") -> dict[str, Any]:
    """The topology as its actual link set (not its display name).

    The name is included for debuggability but the links are what makes
    residual topologies with equal names distinguishable.
    """
    return {
        "name": topology.name,
        "radices": list(topology.radices),
        "links": sorted([a, b] for a, b in topology.links),
    }


def canonical_allocation(allocation: Mapping[str, int]) -> list[list[Any]]:
    """The task→node map as a sorted pair list."""
    return sorted([task, int(node)] for task, node in allocation.items())


def canonical_config(config: "CompilerConfig") -> dict[str, Any]:
    """Every config field; new fields invalidate old keys automatically.

    ``lp_backend`` is canonicalized to the backend ``"auto"`` *resolves
    to in this environment*, not the literal string.  Hashing the
    literal ``"auto"`` poisoned shared caches: an environment without
    scipy resolves ``"auto"`` to the reference simplex, one with scipy
    resolves it to HiGHS, yet both hashed to the same key — so a
    negative ("infeasible") entry recorded by one solver was replayed
    verbatim to the other.  Canonicalizing also unifies
    ``key("auto") == key(resolved)`` within one environment, which is
    what content addressing promises.

    Solver *performance* knobs (:data:`PERF_ONLY_CONFIG_FIELDS`) are
    elided **unconditionally**: they change how fast the LPs are
    solved, not which schedule comes out (batched and warm-started
    solves are byte-identical to sequential cold ones — pinned by the
    PR 7 property tests), so all four knob combinations must hash to
    the same key.  Eliding only default values — the pre-``/2``
    behaviour — fragmented the key space: a sweep run with
    ``lp_batch=False`` could not reuse entries a default-config run had
    already compiled, despite producing byte-identical schedules.
    """
    from repro.solvers import default_backend_name

    fields = asdict(config)
    decided = set(HASHED_CONFIG_FIELDS) | set(PERF_ONLY_CONFIG_FIELDS)
    if set(fields) != decided:
        undecided = sorted(set(fields) - decided)
        stale = sorted(decided - set(fields))
        raise ValueError(
            "CompilerConfig fields drifted from the cache-key decision "
            f"ledger (undecided: {undecided}, stale: {stale}); update "
            "HASHED_CONFIG_FIELDS / PERF_ONLY_CONFIG_FIELDS in "
            "repro.cache.keys"
        )
    if fields.get("lp_backend") == "auto":
        fields["lp_backend"] = default_backend_name()
    for knob in PERF_ONLY_CONFIG_FIELDS:
        fields.pop(knob, None)
    return fields


def cache_key_payload(
    timing: "TFGTiming",
    topology: "Topology",
    allocation: Mapping[str, int],
    tau_in: float,
    config: "CompilerConfig",
) -> dict[str, Any]:
    """The full canonical payload a key hashes (exposed for tests)."""
    return {
        "version": CACHE_VERSION,
        "timing": canonical_timing(timing),
        "topology": canonical_topology(topology),
        "allocation": canonical_allocation(allocation),
        "tau_in": float(tau_in),
        "config": canonical_config(config),
    }


def schedule_cache_key(
    timing: "TFGTiming",
    topology: "Topology",
    allocation: Mapping[str, int],
    tau_in: float,
    config: "CompilerConfig",
) -> str:
    """SHA-256 hex digest of the canonical compilation inputs."""
    payload = cache_key_payload(timing, topology, allocation, tau_in, config)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def diagnosis_cache_key(
    timing: "TFGTiming",
    topology: "Topology",
    allocation: Mapping[str, int],
    tau_in: float,
    sync_margin: float = 0.0,
) -> str:
    """Key for a cached :class:`~repro.diagnose.Diagnosis`.

    Diagnosis depends only on the instance (timing, topology,
    allocation, period, sync margin) — not on the compiler config — so
    the key omits seeds, backends and retry knobs: the same instance
    diagnosed under any config hits the same entry.  The ``"analysis"``
    marker keeps the key space disjoint from schedule keys.
    """
    payload = {
        "version": CACHE_VERSION,
        "analysis": "diagnosis",
        "timing": canonical_timing(timing),
        "topology": canonical_topology(topology),
        "allocation": canonical_allocation(allocation),
        "tau_in": float(tau_in),
        "sync_margin": float(sync_margin),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
