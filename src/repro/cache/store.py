"""The schedule cache: an in-memory tier over an optional on-disk tier.

Entries are JSON documents addressed by the content key of
:mod:`repro.cache.keys`.  Three kinds exist:

- ``"schedule"`` — a successful compilation: the serialized
  :class:`~repro.core.switching.CommunicationSchedule` (via
  :mod:`repro.core.io`) plus the subsets/allocations/attempt metadata
  needed to rebuild a full :class:`~repro.core.compiler.ScheduledRouting`;
- ``"failure"`` — a *negative* entry recording which
  :class:`~repro.errors.SchedulingError` a compilation raised, so the
  feasibility matrix's infeasible points also hit on warm runs instead
  of re-running the LPs just to fail identically;
- ``"artifact"`` — one pipeline stage's output under an artifact key
  from :mod:`repro.cache.artifacts`, the unit of delta compilation.
  Artifact traffic is counted in :attr:`CacheStats.stages` (per stage
  name), never in the scalar schedule-level counters, so delta
  recompiles don't skew schedule hit rates.

:meth:`ScheduleCache.fetch` returns a rebuilt routing on a schedule hit,
**raises** the reconstructed error on a failure hit, and returns ``None``
on a miss.  Disk writes are atomic (temp file + ``os.replace``) so
parallel matrix workers sharing one cache directory never observe a
torn entry; entries with an unknown format version or unparsable JSON
are dropped and counted as invalidations.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.cache.keys import CACHE_VERSION
from repro.core.assignment import PathAssignment
from repro.core.interval_allocation import IntervalAllocation
from repro.core.io import schedule_from_dict, schedule_to_dict
from repro.core.utilization import utilization_report
from repro.errors import (
    IntervalAllocationError,
    IntervalSchedulingError,
    SchedulingError,
    StaticallyRefutedError,
    UtilizationExceededError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiler import ScheduledRouting
    from repro.topology.base import Topology


@dataclass
class CacheStats:
    """Hit/miss/store/invalidation counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    #: Per-stage artifact counters of the delta-compilation tier, keyed
    #: ``stage name -> {"hits" | "misses" | "stores": int}``.  Kept
    #: separate from the scalar schedule-level counters above so
    #: artifact traffic never skews schedule hit rates (which CI gates
    #: on for the matrix and serve load tests).
    stages: dict[str, dict[str, int]] = field(default_factory=dict)

    #: The raw counter names (everything except the derived hit rate).
    FIELDS = ("hits", "misses", "stores", "invalidations")
    #: Counter names tracked per artifact stage.
    STAGE_FIELDS = ("hits", "misses", "stores")

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stage(self, name: str) -> dict[str, int]:
        """The (auto-created) counter dict of one artifact stage."""
        return self.stages.setdefault(
            name, {event: 0 for event in self.STAGE_FIELDS}
        )

    def record_stage(self, name: str, event: str) -> None:
        """Count one artifact-stage ``"hits"``/``"misses"``/``"stores"``."""
        self.stage(name)[event] += 1

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }
        if self.stages:
            payload["stages"] = {
                name: dict(counters)
                for name, counters in sorted(self.stages.items())
            }
        return payload

    def snapshot(self) -> dict[str, Any]:
        """The raw counters, for :meth:`since` deltas across a task."""
        snap: dict[str, Any] = {
            name: getattr(self, name) for name in self.FIELDS
        }
        snap["stages"] = {
            name: dict(counters) for name, counters in self.stages.items()
        }
        return snap

    def since(self, before: Mapping[str, Any]) -> dict[str, Any]:
        """Counter deltas relative to an earlier :meth:`snapshot`.

        Worker processes ship these per-task deltas back to the parent
        (matrix fan-out, serve farm), which :meth:`merge`\\ s them — so
        aggregated totals sum correctly even when one long-lived worker
        cache serves many tasks.  Stage counters ride along under
        ``"stages"`` (omitted when no stage moved).
        """
        delta: dict[str, Any] = {
            name: getattr(self, name) - int(before.get(name, 0))
            for name in self.FIELDS
        }
        before_stages: Mapping[str, Mapping[str, int]] = (
            before.get("stages") or {}
        )
        stages: dict[str, dict[str, int]] = {}
        for name, counters in self.stages.items():
            prior = before_stages.get(name, {})
            moved = {
                event: counters.get(event, 0) - int(prior.get(event, 0))
                for event in self.STAGE_FIELDS
            }
            if any(moved.values()):
                stages[name] = moved
        if stages:
            delta["stages"] = stages
        return delta

    def merge(self, other: "CacheStats | Mapping[str, Any]") -> None:
        """Add another instance's (or delta dict's) counters into this one."""
        if isinstance(other, CacheStats):
            other = other.snapshot()
        for name in self.FIELDS:
            setattr(self, name, getattr(self, name) + int(other.get(name, 0)))
        stage_counts: Mapping[str, Mapping[str, int]] = (
            other.get("stages") or {}
        )
        for name, counters in stage_counts.items():
            mine = self.stage(name)
            for event in self.STAGE_FIELDS:
                mine[event] += int(counters.get(event, 0))


def persist_cache_stats(
    cache_dir: str | Path, stats: "Mapping[str, float | int] | CacheStats | None"
) -> Path | None:
    """Atomically write aggregated cache counters next to the entries.

    Both graceful-shutdown consumers of the compiler — the experiment
    matrix's ``jobs=N`` fan-out and the ``repro.serve`` worker pool —
    call this from their :class:`~repro.pool.GracefulPool` shutdown
    hooks, so even a SIGTERM-drained run leaves
    ``<cache_dir>/cache-stats.json`` behind.  Returns the written path
    (``None`` when there was nothing to persist).
    """
    if stats is None:
        return None
    if isinstance(stats, CacheStats):
        stats = stats.as_dict()
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "cache-stats.json"
    payload = dict(stats)
    lookups = payload.get("hits", 0) + payload.get("misses", 0)
    payload.setdefault(
        "hit_rate",
        round(payload.get("hits", 0) / lookups, 4) if lookups else 0.0,
    )
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".stats-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:  # pragma: no cover - cleanup path
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


#: ``solver_stats`` keys that report wall-clock measurements.  They are
#: live telemetry of *this* compilation, not properties of the cached
#: artifact: storing them made two byte-identical compilations produce
#: different cache entries (and re-served stale timings as if they were
#: fresh).  :func:`routing_to_entry` strips them; cache hits simply
#: have no timing, which is the truth.
VOLATILE_SOLVER_STATS = ("lp_wall_ms",)


def _stable_solver_stats(
    stats: Mapping[str, Any] | None,
) -> dict[str, Any] | None:
    if stats is None:
        return None
    return {
        key: value
        for key, value in stats.items()
        if key not in VOLATILE_SOLVER_STATS
    }


def routing_to_entry(routing: "ScheduledRouting") -> dict[str, Any]:
    """Serialize a successful compilation to a JSON-able entry."""
    return {
        "format": CACHE_VERSION,
        "kind": "schedule",
        "schedule": schedule_to_dict(routing.schedule),
        "subsets": [list(subset) for subset in routing.subsets],
        "allocations": [
            {
                "subset": list(a.subset),
                "cells": [
                    [name, k, t] for (name, k), t in a.allocation.items()
                ],
                "load_factor": a.load_factor,
            }
            for a in routing.allocations
        ],
        "tau_in": routing.tau_in,
        "local_messages": list(routing.local_messages),
        "attempts": routing.attempts,
        "solver_stats": _stable_solver_stats(
            routing.extra.get("solver_stats")
        ),
    }


def entry_to_routing(
    entry: Mapping[str, Any],
    topology: "Topology",
    key: str,
) -> "ScheduledRouting":
    """Rebuild a :class:`ScheduledRouting` from a ``"schedule"`` entry.

    The schedule itself round-trips exactly through
    :mod:`repro.core.io` (and is re-validated on load); the utilisation
    report is recomputed from the deserialized bounds and paths on the
    given topology — a cheap matrix evaluation, no LP work.
    """
    from repro.core.compiler import ScheduledRouting

    schedule = schedule_from_dict(entry["schedule"])
    endpoints = {
        name: (path[0], path[-1])
        for name, path in schedule.assignment.items()
    }
    assignment = PathAssignment(
        topology,
        endpoints,
        {name: list(path) for name, path in schedule.assignment.items()},
    )
    report = utilization_report(schedule.bounds, assignment)
    allocations = [
        IntervalAllocation(
            subset=tuple(a["subset"]),
            allocation={
                (name, int(k)): float(t) for name, k, t in a["cells"]
            },
            load_factor=float(a["load_factor"]),
        )
        for a in entry["allocations"]
    ]
    routing = ScheduledRouting(
        schedule=schedule,
        utilization=report,
        bounds=schedule.bounds,
        subsets=[tuple(subset) for subset in entry["subsets"]],
        allocations=allocations,
        tau_in=float(entry["tau_in"]),
        local_messages=tuple(entry["local_messages"]),
        attempts=int(entry["attempts"]),
    )
    if entry.get("solver_stats") is not None:
        routing.extra["solver_stats"] = dict(entry["solver_stats"])
    routing.extra["cache"] = {"hit": True, "key": key}
    return routing


def error_to_entry(error: SchedulingError) -> dict[str, Any]:
    """Serialize a compilation failure to a negative entry."""
    args: dict[str, Any] = {}
    if isinstance(error, UtilizationExceededError):
        args = {"peak": error.peak, "witness": error.witness}
    elif isinstance(error, IntervalAllocationError):
        args = {"subset_index": error.subset_index}
    elif isinstance(error, IntervalSchedulingError):
        args = {
            "interval_index": error.interval_index,
            "required": error.required,
            "available": error.available,
        }
    elif isinstance(error, StaticallyRefutedError):
        args = {"refutations": [dict(r) for r in error.refutations]}
    return {
        "format": CACHE_VERSION,
        "kind": "failure",
        "type": type(error).__name__,
        "stage": error.stage,
        "message": str(error),
        "args": args,
    }


def entry_to_error(entry: Mapping[str, Any]) -> SchedulingError:
    """Reconstruct the exact error class a ``"failure"`` entry recorded."""
    kind = entry["type"]
    args = entry.get("args", {})
    error: SchedulingError
    if kind == "UtilizationExceededError":
        error = UtilizationExceededError(
            float(args["peak"]), args.get("witness", "")
        )
    elif kind == "IntervalAllocationError":
        error = IntervalAllocationError(int(args["subset_index"]))
    elif kind == "IntervalSchedulingError":
        error = IntervalSchedulingError(
            int(args["interval_index"]),
            float(args["required"]),
            float(args["available"]),
        )
    elif kind == "StaticallyRefutedError":
        error = StaticallyRefutedError(
            [dict(r) for r in args.get("refutations", [])]
        )
    else:
        error = SchedulingError(entry["message"])
    # Keep the original message text rather than the regenerated one.
    error.args = (entry["message"],)
    return error


class ScheduleCache:
    """Content-addressed schedule cache (memory tier + optional disk tier).

    Parameters
    ----------
    directory:
        When given, entries are also persisted as
        ``<directory>/<key[:2]>/<key>.json`` — sharded by the first two
        hex digits of the content key so concurrent worker processes
        spread their directory operations over 256 subdirectories
        instead of contending on one — and survive the process;
        multiple processes may share the directory (writes are atomic).
        When ``None`` the cache is purely in-memory.

    Opening a directory that still holds flat-layout entries
    (``<directory>/<key>.json``, the pre-shard format) migrates them
    into their shard subdirectories once, via atomic renames, so mixed
    and concurrent openers converge on the sharded layout without ever
    observing a missing entry.
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, dict[str, Any]] = {}
        self.stats = CacheStats()
        #: Flat-layout entries moved into shard dirs when opening.
        self.migrated_entries = 0
        if self.directory is not None and self.directory.is_dir():
            self.migrated_entries = self._migrate_flat_layout()

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        tier = str(self.directory) if self.directory else "memory"
        return (
            f"<ScheduleCache [{tier}] {len(self._memory)} entries, "
            f"{self.stats.hits}h/{self.stats.misses}m>"
        )

    def _disk_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def _migrate_flat_layout(self) -> int:
        """One-shot migration of pre-shard entries into shard dirs.

        Earlier cache versions wrote ``<directory>/<key>.json`` at the
        top level; every key is a SHA-256 hex digest, so anything else
        (``cache-stats.json``, temp files) is left alone.  Renames are
        atomic and races with other processes migrating the same
        directory are benign: whoever loses the :func:`os.replace`
        simply finds the source gone and moves on.
        """
        migrated = 0
        assert self.directory is not None
        for path in self.directory.glob("*.json"):
            key = path.stem
            if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
                continue
            target = self._disk_path(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(path, target)
            except OSError:  # pragma: no cover - racing migrator won
                continue
            migrated += 1
        return migrated

    def fetch(
        self, key: str, topology: "Topology | None" = None
    ) -> "ScheduledRouting | None":
        """Look up a key; see the module docstring for the contract."""
        entry = self._memory.get(key)
        if entry is None and self.directory is not None:
            entry = self._read_disk(key)
            if entry is not None:
                self._memory[key] = entry
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.get("kind") not in ("schedule", "failure"):
            # A diagnosis (or future) entry under a schedule key: a bug
            # upstream, but never replay it as a compilation result.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if entry["kind"] == "failure":
            raise entry_to_error(entry)
        return entry_to_routing(entry, topology, key)

    def store(self, key: str, routing: "ScheduledRouting") -> None:
        """Record a successful compilation."""
        self._put(key, routing_to_entry(routing))

    def store_failure(self, key: str, error: SchedulingError) -> None:
        """Record a compilation failure (negative caching)."""
        self._put(key, error_to_entry(error))

    def store_diagnosis(self, key: str, diagnosis: Any) -> None:
        """Record a :class:`~repro.diagnose.Diagnosis` (positive or not).

        Diagnosis entries use keys from
        :func:`~repro.cache.keys.diagnosis_cache_key`, a key space
        disjoint from schedule keys, so they never shadow a compiled
        schedule.
        """
        self._put(
            key,
            {
                "format": CACHE_VERSION,
                "kind": "diagnosis",
                "diagnosis": diagnosis.to_dict(),
            },
        )

    def fetch_diagnosis(self, key: str) -> Any | None:
        """Look up a stored diagnosis; ``None`` on miss or wrong kind."""
        entry = self._memory.get(key)
        if entry is None and self.directory is not None:
            entry = self._read_disk(key)
            if entry is not None:
                self._memory[key] = entry
        if entry is None or entry.get("kind") != "diagnosis":
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        from repro.diagnose.certificates import Diagnosis

        return Diagnosis.from_dict(entry["diagnosis"])

    def contains(self, key: str) -> bool:
        """Whether a key is present in either tier.

        A pure existence probe: it touches no counters and deserializes
        nothing, so callers validating an *external* memo (the serve
        farm's result memo) can check that the backing entry still
        exists without skewing hit rates.
        """
        if key in self._memory:
            return True
        if self.directory is not None:
            return self._disk_path(key).exists()
        return False

    def fetch_artifact(self, key: str, stage: str) -> dict[str, Any] | None:
        """Look up one stage artifact; ``None`` on miss or wrong kind.

        Counts a per-stage hit or miss in :attr:`CacheStats.stages` and
        never touches the scalar schedule-level counters.
        """
        entry = self._memory.get(key)
        if entry is None and self.directory is not None:
            entry = self._read_disk(key)
            if entry is not None:
                self._memory[key] = entry
        if (
            entry is None
            or entry.get("kind") != "artifact"
            or entry.get("stage") != stage
        ):
            self.stats.record_stage(stage, "misses")
            return None
        self.stats.record_stage(stage, "hits")
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def store_artifact(
        self, key: str, stage: str, payload: Mapping[str, Any]
    ) -> None:
        """Record one stage artifact (per-stage store counter only)."""
        entry = {
            "format": CACHE_VERSION,
            "kind": "artifact",
            "stage": stage,
            "payload": dict(payload),
        }
        self._memory[key] = entry
        self.stats.record_stage(stage, "stores")
        self._write_disk(key, entry)

    def invalidate(self, key: str) -> None:
        """Drop one entry from both tiers."""
        dropped = self._memory.pop(key, None) is not None
        if self.directory is not None:
            path = self._disk_path(key)
            if path.exists():
                path.unlink()
                dropped = True
        if dropped:
            self.stats.invalidations += 1

    def clear(self) -> None:
        """Drop the in-memory tier (disk entries stay)."""
        self._memory.clear()

    def _put(self, key: str, entry: dict[str, Any]) -> None:
        self._memory[key] = entry
        self.stats.stores += 1
        self._write_disk(key, entry)

    def _write_disk(self, key: str, entry: dict[str, Any]) -> None:
        if self.directory is None:
            return
        path = self._disk_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(entry, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):  # pragma: no cover - cleanup path
                os.unlink(tmp)
            raise

    def _read_disk(self, key: str) -> dict[str, Any] | None:
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            entry = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            entry = None
        if not isinstance(entry, dict) or entry.get("format") != CACHE_VERSION:
            # Torn write, tampering, or a stale format: drop and count.
            self.stats.invalidations += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return None
        return entry
