"""The schedule cache: an in-memory tier over an optional on-disk tier.

Entries are JSON documents addressed by the content key of
:mod:`repro.cache.keys`.  Two kinds exist:

- ``"schedule"`` — a successful compilation: the serialized
  :class:`~repro.core.switching.CommunicationSchedule` (via
  :mod:`repro.core.io`) plus the subsets/allocations/attempt metadata
  needed to rebuild a full :class:`~repro.core.compiler.ScheduledRouting`;
- ``"failure"`` — a *negative* entry recording which
  :class:`~repro.errors.SchedulingError` a compilation raised, so the
  feasibility matrix's infeasible points also hit on warm runs instead
  of re-running the LPs just to fail identically.

:meth:`ScheduleCache.fetch` returns a rebuilt routing on a schedule hit,
**raises** the reconstructed error on a failure hit, and returns ``None``
on a miss.  Disk writes are atomic (temp file + ``os.replace``) so
parallel matrix workers sharing one cache directory never observe a
torn entry; entries with an unknown format version or unparsable JSON
are dropped and counted as invalidations.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.cache.keys import CACHE_VERSION
from repro.core.assignment import PathAssignment
from repro.core.interval_allocation import IntervalAllocation
from repro.core.io import schedule_from_dict, schedule_to_dict
from repro.core.utilization import utilization_report
from repro.errors import (
    IntervalAllocationError,
    IntervalSchedulingError,
    SchedulingError,
    StaticallyRefutedError,
    UtilizationExceededError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiler import ScheduledRouting
    from repro.topology.base import Topology


@dataclass
class CacheStats:
    """Hit/miss/store/invalidation counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


def routing_to_entry(routing: "ScheduledRouting") -> dict[str, Any]:
    """Serialize a successful compilation to a JSON-able entry."""
    return {
        "format": CACHE_VERSION,
        "kind": "schedule",
        "schedule": schedule_to_dict(routing.schedule),
        "subsets": [list(subset) for subset in routing.subsets],
        "allocations": [
            {
                "subset": list(a.subset),
                "cells": [
                    [name, k, t] for (name, k), t in a.allocation.items()
                ],
                "load_factor": a.load_factor,
            }
            for a in routing.allocations
        ],
        "tau_in": routing.tau_in,
        "local_messages": list(routing.local_messages),
        "attempts": routing.attempts,
        "solver_stats": routing.extra.get("solver_stats"),
    }


def entry_to_routing(
    entry: Mapping[str, Any],
    topology: "Topology",
    key: str,
) -> "ScheduledRouting":
    """Rebuild a :class:`ScheduledRouting` from a ``"schedule"`` entry.

    The schedule itself round-trips exactly through
    :mod:`repro.core.io` (and is re-validated on load); the utilisation
    report is recomputed from the deserialized bounds and paths on the
    given topology — a cheap matrix evaluation, no LP work.
    """
    from repro.core.compiler import ScheduledRouting

    schedule = schedule_from_dict(entry["schedule"])
    endpoints = {
        name: (path[0], path[-1])
        for name, path in schedule.assignment.items()
    }
    assignment = PathAssignment(
        topology,
        endpoints,
        {name: list(path) for name, path in schedule.assignment.items()},
    )
    report = utilization_report(schedule.bounds, assignment)
    allocations = [
        IntervalAllocation(
            subset=tuple(a["subset"]),
            allocation={
                (name, int(k)): float(t) for name, k, t in a["cells"]
            },
            load_factor=float(a["load_factor"]),
        )
        for a in entry["allocations"]
    ]
    routing = ScheduledRouting(
        schedule=schedule,
        utilization=report,
        bounds=schedule.bounds,
        subsets=[tuple(subset) for subset in entry["subsets"]],
        allocations=allocations,
        tau_in=float(entry["tau_in"]),
        local_messages=tuple(entry["local_messages"]),
        attempts=int(entry["attempts"]),
    )
    if entry.get("solver_stats") is not None:
        routing.extra["solver_stats"] = dict(entry["solver_stats"])
    routing.extra["cache"] = {"hit": True, "key": key}
    return routing


def error_to_entry(error: SchedulingError) -> dict[str, Any]:
    """Serialize a compilation failure to a negative entry."""
    args: dict[str, Any] = {}
    if isinstance(error, UtilizationExceededError):
        args = {"peak": error.peak, "witness": error.witness}
    elif isinstance(error, IntervalAllocationError):
        args = {"subset_index": error.subset_index}
    elif isinstance(error, IntervalSchedulingError):
        args = {
            "interval_index": error.interval_index,
            "required": error.required,
            "available": error.available,
        }
    elif isinstance(error, StaticallyRefutedError):
        args = {"refutations": [dict(r) for r in error.refutations]}
    return {
        "format": CACHE_VERSION,
        "kind": "failure",
        "type": type(error).__name__,
        "stage": error.stage,
        "message": str(error),
        "args": args,
    }


def entry_to_error(entry: Mapping[str, Any]) -> SchedulingError:
    """Reconstruct the exact error class a ``"failure"`` entry recorded."""
    kind = entry["type"]
    args = entry.get("args", {})
    error: SchedulingError
    if kind == "UtilizationExceededError":
        error = UtilizationExceededError(
            float(args["peak"]), args.get("witness", "")
        )
    elif kind == "IntervalAllocationError":
        error = IntervalAllocationError(int(args["subset_index"]))
    elif kind == "IntervalSchedulingError":
        error = IntervalSchedulingError(
            int(args["interval_index"]),
            float(args["required"]),
            float(args["available"]),
        )
    elif kind == "StaticallyRefutedError":
        error = StaticallyRefutedError(
            [dict(r) for r in args.get("refutations", [])]
        )
    else:
        error = SchedulingError(entry["message"])
    # Keep the original message text rather than the regenerated one.
    error.args = (entry["message"],)
    return error


class ScheduleCache:
    """Content-addressed schedule cache (memory tier + optional disk tier).

    Parameters
    ----------
    directory:
        When given, entries are also persisted as
        ``<directory>/<key[:2]>/<key>.json`` and survive the process;
        multiple processes may share the directory (writes are atomic).
        When ``None`` the cache is purely in-memory.
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, dict[str, Any]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        tier = str(self.directory) if self.directory else "memory"
        return (
            f"<ScheduleCache [{tier}] {len(self._memory)} entries, "
            f"{self.stats.hits}h/{self.stats.misses}m>"
        )

    def _disk_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def fetch(
        self, key: str, topology: "Topology | None" = None
    ) -> "ScheduledRouting | None":
        """Look up a key; see the module docstring for the contract."""
        entry = self._memory.get(key)
        if entry is None and self.directory is not None:
            entry = self._read_disk(key)
            if entry is not None:
                self._memory[key] = entry
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.get("kind") not in ("schedule", "failure"):
            # A diagnosis (or future) entry under a schedule key: a bug
            # upstream, but never replay it as a compilation result.
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if entry["kind"] == "failure":
            raise entry_to_error(entry)
        return entry_to_routing(entry, topology, key)

    def store(self, key: str, routing: "ScheduledRouting") -> None:
        """Record a successful compilation."""
        self._put(key, routing_to_entry(routing))

    def store_failure(self, key: str, error: SchedulingError) -> None:
        """Record a compilation failure (negative caching)."""
        self._put(key, error_to_entry(error))

    def store_diagnosis(self, key: str, diagnosis: Any) -> None:
        """Record a :class:`~repro.diagnose.Diagnosis` (positive or not).

        Diagnosis entries use keys from
        :func:`~repro.cache.keys.diagnosis_cache_key`, a key space
        disjoint from schedule keys, so they never shadow a compiled
        schedule.
        """
        self._put(
            key,
            {
                "format": CACHE_VERSION,
                "kind": "diagnosis",
                "diagnosis": diagnosis.to_dict(),
            },
        )

    def fetch_diagnosis(self, key: str) -> Any | None:
        """Look up a stored diagnosis; ``None`` on miss or wrong kind."""
        entry = self._memory.get(key)
        if entry is None and self.directory is not None:
            entry = self._read_disk(key)
            if entry is not None:
                self._memory[key] = entry
        if entry is None or entry.get("kind") != "diagnosis":
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        from repro.diagnose.certificates import Diagnosis

        return Diagnosis.from_dict(entry["diagnosis"])

    def invalidate(self, key: str) -> None:
        """Drop one entry from both tiers."""
        dropped = self._memory.pop(key, None) is not None
        if self.directory is not None:
            path = self._disk_path(key)
            if path.exists():
                path.unlink()
                dropped = True
        if dropped:
            self.stats.invalidations += 1

    def clear(self) -> None:
        """Drop the in-memory tier (disk entries stay)."""
        self._memory.clear()

    def _put(self, key: str, entry: dict[str, Any]) -> None:
        self._memory[key] = entry
        self.stats.stores += 1
        if self.directory is None:
            return
        path = self._disk_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(entry, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):  # pragma: no cover - cleanup path
                os.unlink(tmp)
            raise

    def _read_disk(self, key: str) -> dict[str, Any] | None:
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            entry = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            entry = None
        if not isinstance(entry, dict) or entry.get("format") != CACHE_VERSION:
            # Torn write, tampering, or a stale format: drop and count.
            self.stats.invalidations += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            return None
        return entry
