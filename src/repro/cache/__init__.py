"""Content-addressed schedule caching.

Compiling a schedule is LP-heavy; its inputs (TFG + timing + topology +
allocation + period + config) are pure values.  This package hashes
those values into a stable key (:mod:`repro.cache.keys`) and stores the
compiled :class:`~repro.core.switching.CommunicationSchedule` — or the
:class:`~repro.errors.SchedulingError` the compilation raised — under it
(:mod:`repro.cache.store`), so the feasibility matrix, the fault-repair
engine and repeated CLI runs reuse prior work:

>>> from repro.cache import ScheduleCache
>>> cache = ScheduleCache("~/.cache/repro-schedules")   # or ScheduleCache()
>>> routing = compile_schedule(timing, topo, alloc, tau, config, cache=cache)
>>> cache.stats.as_dict()["misses"], cache.stats.as_dict()["stores"]
(1, 1)

Beyond the monolithic schedule key, the cache also holds per-stage
**artifacts** (:mod:`repro.cache.artifacts`): content-keyed outputs of
the expensive pipeline stages, so a near-identical instance — one
message resized, one link dropped — resumes mid-pipeline instead of
recompiling cold.  Artifact traffic is counted per stage under
``cache.stats.stages`` (surfaced as ``"stages"`` in ``as_dict()``),
never in the scalar counters above.

See ``docs/compiler.md`` for the key scheme and invalidation rules.
"""

from repro.cache.artifacts import (
    DeltaState,
    artifact_key,
    bounds_content,
    pools_content,
    warm_scope_key,
)
from repro.cache.keys import (
    CACHE_VERSION,
    PERF_ONLY_CONFIG_FIELDS,
    cache_key_payload,
    canonical_allocation,
    canonical_config,
    canonical_tfg,
    canonical_timing,
    canonical_topology,
    diagnosis_cache_key,
    schedule_cache_key,
)
from repro.cache.store import (
    CacheStats,
    ScheduleCache,
    entry_to_error,
    entry_to_routing,
    error_to_entry,
    persist_cache_stats,
    routing_to_entry,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "DeltaState",
    "PERF_ONLY_CONFIG_FIELDS",
    "ScheduleCache",
    "artifact_key",
    "bounds_content",
    "cache_key_payload",
    "canonical_allocation",
    "canonical_config",
    "canonical_tfg",
    "canonical_timing",
    "canonical_topology",
    "diagnosis_cache_key",
    "entry_to_error",
    "entry_to_routing",
    "error_to_entry",
    "persist_cache_stats",
    "pools_content",
    "routing_to_entry",
    "schedule_cache_key",
    "warm_scope_key",
]
