"""Content-addressed schedule caching.

Compiling a schedule is LP-heavy; its inputs (TFG + timing + topology +
allocation + period + config) are pure values.  This package hashes
those values into a stable key (:mod:`repro.cache.keys`) and stores the
compiled :class:`~repro.core.switching.CommunicationSchedule` — or the
:class:`~repro.errors.SchedulingError` the compilation raised — under it
(:mod:`repro.cache.store`), so the feasibility matrix, the fault-repair
engine and repeated CLI runs reuse prior work:

>>> from repro.cache import ScheduleCache
>>> cache = ScheduleCache("~/.cache/repro-schedules")   # or ScheduleCache()
>>> routing = compile_schedule(timing, topo, alloc, tau, config, cache=cache)
>>> cache.stats.as_dict()
{'hits': 0, 'misses': 1, 'stores': 1, 'invalidations': 0, 'hit_rate': 0.0}

See ``docs/compiler.md`` for the key scheme and invalidation rules.
"""

from repro.cache.keys import (
    CACHE_VERSION,
    cache_key_payload,
    canonical_allocation,
    canonical_config,
    canonical_tfg,
    canonical_timing,
    canonical_topology,
    diagnosis_cache_key,
    schedule_cache_key,
)
from repro.cache.store import (
    CacheStats,
    ScheduleCache,
    entry_to_error,
    entry_to_routing,
    error_to_entry,
    persist_cache_stats,
    routing_to_entry,
)

__all__ = [
    "CACHE_VERSION",
    "CacheStats",
    "ScheduleCache",
    "cache_key_payload",
    "canonical_allocation",
    "canonical_config",
    "canonical_tfg",
    "canonical_timing",
    "canonical_topology",
    "diagnosis_cache_key",
    "entry_to_error",
    "entry_to_routing",
    "error_to_entry",
    "persist_cache_stats",
    "routing_to_entry",
    "schedule_cache_key",
]
