"""Refutation certificates: structured *why not* answers.

A :class:`Refutation` is a necessary-condition violation computed from
the problem instance alone — it names the messages, links and frame
window that cannot coexist, so infeasibility is *explained* rather than
merely reported.  A :class:`Diagnosis` bundles every certificate found
for one (timing, topology, allocation, tau_in) point together with the
list of analyses that ran.

Certificate taxonomy (``kind`` values)
--------------------------------------
``period``
    ``tau_in < tau_c``: the slowest task cannot keep up with the input
    rate (paper Section 2) — infinite accumulation, no schedule exists.
``window``
    A message's transmission requirement exceeds its release/deadline
    window, or the window exceeds the frame (successive instances of the
    message would overlap).
``disconnected``
    A routed message's endpoints have no path in the (possibly residual)
    topology.
``link-overload``
    Definition 5.1 violated on a *forced* link: messages that every
    minimal route must carry demand more transmission time than the
    union of their windows provides (``U_j > 1`` for every assignment).
``window-density``
    Hall-type bound: within some contiguous frame window, the load the
    involved messages cannot move elsewhere exceeds the time the window
    offers on a forced link.
``cut-overload``
    A topology cut (a node's link star, or the canonical bisection) is
    saturated: messages that must cross it demand more cut service time
    than ``|cut| x window`` provides.
``network-capacity``
    Volume bound: summed ``duration x minimal-distance`` over all routed
    messages exceeds total link time in the frame.
``lp-farkas``
    A Farkas ray of the interval-allocation LP (solver-backed; see
    :mod:`repro.diagnose.duals`).  Scope is *assignment*, not instance:
    it explains why one concrete path assignment failed.

Scopes
------
``instance`` certificates hold for **every** path assignment — they
refute the point outright and are what the compile-time prescreen acts
on.  ``assignment`` certificates explain one assignment's LP failure;
another assignment might still succeed, so they never gate compilation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.topology.base import Link
from repro.trace.tracer import NULL_TRACER, Tracer

#: Certificates valid for every path assignment (prescreen acts on these).
SCOPE_INSTANCE = "instance"
#: Certificates explaining one concrete assignment's LP failure.
SCOPE_ASSIGNMENT = "assignment"

#: Relative margin a violation must clear before we refute.  An order of
#: magnitude wider than the LP feasibility tolerance, so a statically
#: refuted point can never sit inside the solvers' acceptance band.
REFUTE_MARGIN = 1e-6


def exceeds_capacity(demand: float, capacity: float) -> bool:
    """True when ``demand`` violates ``capacity`` beyond the refute margin."""
    return demand > capacity * (1.0 + REFUTE_MARGIN) + REFUTE_MARGIN


@dataclass(frozen=True)
class Refutation:
    """One necessary-condition violation with its concrete witness.

    Attributes
    ----------
    kind:
        Taxonomy bucket (module docstring).
    detail:
        Human-readable one-line explanation.
    messages:
        Names of the messages whose joint demand is infeasible.
    links:
        The overloaded links (one for link certificates, the cut's link
        set for cut certificates, empty for window/period kinds).
    window:
        The violated frame window ``(start, end)``; ``start > end``
        denotes a wrapped window.  ``None`` for non-temporal kinds.
    demand:
        Transmission time the messages require inside the window.
    capacity:
        Time the window/resource can offer; a certificate asserts
        ``demand > capacity`` beyond :data:`REFUTE_MARGIN`.
    scope:
        :data:`SCOPE_INSTANCE` or :data:`SCOPE_ASSIGNMENT`.
    """

    kind: str
    detail: str
    messages: tuple[str, ...] = ()
    links: tuple[Link, ...] = ()
    window: tuple[float, float] | None = None
    demand: float = 0.0
    capacity: float = 0.0
    scope: str = SCOPE_INSTANCE

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (cache entries, ``--json`` output)."""
        return {
            "kind": self.kind,
            "detail": self.detail,
            "messages": list(self.messages),
            "links": [list(link) for link in self.links],
            "window": list(self.window) if self.window is not None else None,
            "demand": self.demand,
            "capacity": self.capacity,
            "scope": self.scope,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Refutation":
        window = payload.get("window")
        return cls(
            kind=str(payload["kind"]),
            detail=str(payload.get("detail", "")),
            messages=tuple(str(m) for m in payload.get("messages", ())),
            links=tuple(
                (int(a), int(b)) for a, b in payload.get("links", ())
            ),
            window=(float(window[0]), float(window[1]))
            if window is not None
            else None,
            demand=float(payload.get("demand", 0.0)),
            capacity=float(payload.get("capacity", 0.0)),
            scope=str(payload.get("scope", SCOPE_INSTANCE)),
        )

    def to_json(self) -> str:
        """The certificate as a JSON document (see :meth:`from_json`)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "Refutation":
        return cls.from_dict(json.loads(document))

    def describe(self) -> str:
        """Terminal-friendly single line."""
        parts = [f"[{self.kind}] {self.detail}"]
        if self.window is not None:
            parts.append(f"window [{self.window[0]:g}, {self.window[1]:g}]")
        if self.capacity or self.demand:
            parts.append(f"demand {self.demand:.4f} > capacity {self.capacity:.4f}")
        return "; ".join(parts)


@dataclass(frozen=True)
class Diagnosis:
    """Every certificate found for one problem instance.

    ``checks`` records which analyses ran (so an empty refutation list
    is distinguishable from an analysis that was skipped), and
    ``elapsed_ms`` the static-analysis wall time.
    """

    tau_in: float
    refutations: tuple[Refutation, ...] = ()
    checks: tuple[str, ...] = ()
    elapsed_ms: float = 0.0

    @property
    def refuted(self) -> bool:
        """True when an *instance-scoped* certificate exists — no path
        assignment can work, so the LP pipeline may be skipped."""
        return any(r.scope == SCOPE_INSTANCE for r in self.refutations)

    @property
    def instance_refutations(self) -> tuple[Refutation, ...]:
        return tuple(r for r in self.refutations if r.scope == SCOPE_INSTANCE)

    def summary(self) -> str:
        if not self.refutations:
            return (
                f"no static refutation (checks: {', '.join(self.checks)})"
            )
        kinds: dict[str, int] = {}
        for r in self.refutations:
            kinds[r.kind] = kinds.get(r.kind, 0) + 1
        label = "refuted" if self.refuted else "explained (assignment-scoped)"
        body = ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items()))
        return f"{label}: {body}"

    def emit(self, tracer: Tracer = NULL_TRACER) -> None:
        """Emit one ``diagnose``-category instant per certificate.

        Mirrors :meth:`repro.check.analyzer.ConformanceReport.emit`: the
        event sits at the start of the violated window (0 for
        non-temporal kinds) on a ``diagnose:<kind>`` track.
        """
        if not tracer.enabled:
            return
        for r in self.refutations:
            time = r.window[0] if r.window is not None else 0.0
            tracer.instant(
                "diagnose",
                r.kind,
                time,
                track=f"diagnose:{r.kind}",
                detail=r.detail,
                scope=r.scope,
                demand=r.demand,
                capacity=r.capacity,
                messages=list(r.messages),
                links=[list(link) for link in r.links],
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "tau_in": self.tau_in,
            "refuted": self.refuted,
            "refutations": [r.to_dict() for r in self.refutations],
            "checks": list(self.checks),
            "elapsed_ms": self.elapsed_ms,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Diagnosis":
        return cls(
            tau_in=float(payload["tau_in"]),
            refutations=tuple(
                Refutation.from_dict(r) for r in payload.get("refutations", ())
            ),
            checks=tuple(str(c) for c in payload.get("checks", ())),
            elapsed_ms=float(payload.get("elapsed_ms", 0.0)),
        )

    def to_json(self) -> str:
        """The diagnosis as a JSON document; round-trips via
        :meth:`from_json` so admission verdicts cross the wire without
        pickling."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "Diagnosis":
        return cls.from_dict(json.loads(document))
