"""Independent replay of refutation witnesses.

The fuzz soundness gate must not trust the diagnoser's own arithmetic,
so this module re-derives every overload claim from first principles:
release instants straight from the windowed ASAP schedule, window
segments re-wrapped onto the frame by hand, overlap lengths by direct
segment intersection, and forced links by a fresh BFS.  It deliberately
does **not** import :mod:`repro.core.timebounds` or
:mod:`repro.core.utilization` — a shared bug there would otherwise
confirm its own wrong certificates.

:func:`verify_refutation` returns a list of problems; an empty list
means the witness replays as genuinely overloaded.
"""

from __future__ import annotations

from typing import Mapping

from repro.diagnose.certificates import REFUTE_MARGIN, Refutation
from repro.tfg.analysis import TFGTiming
from repro.topology.base import Link, Topology, link_between
from repro.units import EPS

Segment = tuple[float, float]


def _message_segments(
    timing: TFGTiming, tau_in: float, name: str, sync_margin: float
) -> tuple[list[Segment], float]:
    """(window segments on the frame, transmission requirement)."""
    message = timing.tfg.message(name)
    finish = timing.asap_schedule()[message.src][1]
    release = finish - tau_in * int(finish / tau_in)
    if release >= tau_in - EPS:
        release = 0.0
    duration = timing.xmit_time(name) + sync_margin
    end = release + timing.message_window
    if end <= tau_in + EPS:
        return [(release, min(end, tau_in))], duration
    return [(0.0, end - tau_in), (release, tau_in)], duration


def _window_segments(window: Segment, tau_in: float) -> list[Segment]:
    """A (possibly wrapped) refutation window as plain segments."""
    start, end = window
    if start <= end:
        return [(start, end)]
    return [(0.0, end), (start, tau_in)]


def _overlap(a: list[Segment], b: list[Segment]) -> float:
    """Total length of the intersection of two segment lists."""
    total = 0.0
    for a0, a1 in a:
        for b0, b1 in b:
            total += max(0.0, min(a1, b1) - max(a0, b0))
    return total


def _union_length(segments: list[Segment]) -> float:
    """Length of the union of segments (sweep)."""
    if not segments:
        return 0.0
    ordered = sorted(segments)
    total = 0.0
    cur_start, cur_end = ordered[0]
    for start, end in ordered[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


def _bfs_distance(
    topology: Topology, src: int, dst: int, banned: Link | None = None
) -> int | None:
    """Hop count by plain BFS; ``None`` if unreachable."""
    if src == dst:
        return 0
    frontier = [src]
    seen = {src}
    hops = 0
    while frontier:
        hops += 1
        nxt: list[int] = []
        for u in frontier:
            for v in topology.neighbors(u):
                if banned is not None and link_between(u, v) == banned:
                    continue
                if v == dst:
                    return hops
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return None


def verify_refutation(
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    tau_in: float,
    refutation: Refutation,
    sync_margin: float = 0.0,
) -> list[str]:
    """Replay one certificate's witness; return the list of problems.

    Checks, per certificate kind, that (a) the structural claim holds
    (the messages really are forced across the named links / really
    cross the cut) and (b) the recomputed demand genuinely exceeds the
    recomputed capacity.  An empty return confirms the witness.
    """
    problems: list[str] = []
    kind = refutation.kind

    if kind == "period":
        if tau_in >= timing.tau_c - EPS:
            problems.append(
                f"period claim false: tau_in={tau_in} >= tau_c={timing.tau_c}"
            )
        return problems

    if kind == "window":
        window = timing.message_window
        if window > tau_in + EPS:
            return problems
        for name in refutation.messages:
            duration = timing.xmit_time(name) + sync_margin
            if duration > window + EPS:
                return problems
        problems.append("window claim false: every named message fits")
        return problems

    if kind == "disconnected":
        for name in refutation.messages:
            message = timing.tfg.message(name)
            src, dst = allocation[message.src], allocation[message.dst]
            if _bfs_distance(topology, src, dst) is not None:
                problems.append(
                    f"disconnected claim false: {name!r} has a path"
                )
        return problems

    if refutation.window is None:
        problems.append(f"{kind} certificate lacks a window witness")
        return problems

    window_segments = _window_segments(refutation.window, tau_in)
    demands: dict[str, float] = {}
    segments: dict[str, list[Segment]] = {}
    for name in refutation.messages:
        segs, duration = _message_segments(timing, tau_in, name, sync_margin)
        segments[name] = segs
        active = sum(e - s for s, e in segs)
        within = _overlap(segs, window_segments)
        demands[name] = max(0.0, duration - (active - within))

    clipped = [
        (max(s, w0), min(e, w1))
        for name in refutation.messages
        for s, e in segments[name]
        for w0, w1 in window_segments
        if min(e, w1) - max(s, w0) > 0
    ]
    available = _union_length(clipped)

    if kind in ("link-overload", "window-density"):
        for name in refutation.messages:
            message = timing.tfg.message(name)
            src, dst = allocation[message.src], allocation[message.dst]
            distance = _bfs_distance(topology, src, dst)
            for link in refutation.links:
                without = _bfs_distance(topology, src, dst, banned=link)
                if (
                    distance is not None
                    and without is not None
                    and without <= distance
                ):
                    problems.append(
                        f"{name!r} is not forced onto link {link}: a "
                        "minimal route avoids it"
                    )
        demand = sum(demands.values())
        capacity = available * len(refutation.links)
    elif kind == "cut-overload":
        cut = set(refutation.links)
        for name in refutation.messages:
            message = timing.tfg.message(name)
            src, dst = allocation[message.src], allocation[message.dst]
            if not _crosses_cut(topology, src, dst, cut):
                problems.append(
                    f"{name!r} does not have to cross the claimed cut"
                )
        demand = sum(demands.values())
        capacity = available * len(refutation.links)
    elif kind == "network-capacity":
        demand = 0.0
        for name in refutation.messages:
            message = timing.tfg.message(name)
            src, dst = allocation[message.src], allocation[message.dst]
            distance = _bfs_distance(topology, src, dst)
            if distance is None:
                problems.append(f"{name!r} endpoints unreachable")
                continue
            demand += demands[name] * distance
        capacity = available * topology.num_links
    else:
        problems.append(f"unknown certificate kind {kind!r}")
        return problems

    if demand <= capacity * (1.0 + REFUTE_MARGIN / 10.0):
        problems.append(
            f"overload claim false: replayed demand {demand:.6f} fits "
            f"capacity {capacity:.6f}"
        )
    return problems


def _crosses_cut(
    topology: Topology, src: int, dst: int, cut: set[Link]
) -> bool:
    """True when every ``src -> dst`` path uses at least one cut link.

    BFS on the topology minus the cut: unreachable means the cut
    separates the endpoints.
    """
    if src == dst:
        return False
    frontier = [src]
    seen = {src}
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for v in topology.neighbors(u):
                if link_between(u, v) in cut:
                    continue
                if v == dst:
                    return False
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return True


__all__ = ["verify_refutation"]
