"""Static instance diagnosis: refute or explain before solving.

``repro.diagnose`` analyses problem *instances* — (TFG timing,
topology, allocation, tau_in) points — where :mod:`repro.check`
analyses compiled *schedules*.  Three layers:

1. :func:`diagnose_instance` — solver-free necessary-condition
   certificates (window/period violations, disconnection, forced-link
   utilisation and Hall window-density bounds, cut and network
   capacity).  An instance-scoped :class:`Refutation` proves **no**
   path assignment can work; the compiler's prescreen stage
   (``CompilerConfig.prescreen``) acts on exactly these.
2. :func:`explain_assignment` / :func:`explain_allocation_failure` —
   verified Farkas certificates extracted from the interval-allocation
   LP, naming the conflicting duration equations and link-capacity
   rows for one concrete assignment.
3. :func:`analyze_wormhole` — static wormhole-routing hazards: channel-
   dependency-graph deadlock cycles (Dally-Seitz) and first-order
   output-inconsistency prediction, no simulation needed.

See ``docs/diagnosis.md`` for the certificate taxonomy and CLI usage.
"""

from repro.diagnose.certificates import (
    REFUTE_MARGIN,
    SCOPE_ASSIGNMENT,
    SCOPE_INSTANCE,
    Diagnosis,
    Refutation,
)
from repro.diagnose.duals import explain_allocation_failure, explain_assignment
from repro.diagnose.instance import diagnose_instance, forced_links
from repro.diagnose.verify import verify_refutation
from repro.diagnose.wormhole import (
    WrFinding,
    WrReport,
    analyze_wormhole,
    channel_dependency_graph,
    find_dependency_cycle,
)

__all__ = [
    "Diagnosis",
    "REFUTE_MARGIN",
    "Refutation",
    "SCOPE_ASSIGNMENT",
    "SCOPE_INSTANCE",
    "WrFinding",
    "WrReport",
    "analyze_wormhole",
    "channel_dependency_graph",
    "diagnose_instance",
    "explain_allocation_failure",
    "explain_assignment",
    "find_dependency_cycle",
    "forced_links",
    "verify_refutation",
]
