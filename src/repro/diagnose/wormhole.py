"""Layer 3: static wormhole-routing analysis (deadlock + OI prediction).

Two compile-time checks over the deterministic routing function, no
simulation required:

- **Channel-dependency-graph cycle detection** (Dally & Seitz 1987): a
  wormhole message holds the channels of its route simultaneously, so a
  cycle among directed channels under the routing function admits a
  deadlock configuration.  LSD-to-MSD (dimension-ordered) routing is
  provably acyclic on meshes, hypercubes and GHCs; on tori the wrap
  links close rings and the analysis produces a concrete cycle witness.
- **Output-inconsistency prediction**: the paper Section 3 conditions
  evaluated over the contention-free baseline timetable, reusing
  :func:`repro.wormhole.analysis.predict_oi_risks`, translated into the
  diagnoser's finding vocabulary.  Validated against
  ``wormhole.simulator`` on the paper's claim witness in the test
  suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.tfg.analysis import TFGTiming
from repro.topology.base import Topology
from repro.topology.routing import lsd_to_msd_route
from repro.wormhole.analysis import OiRisk, predict_oi_risks

#: A directed channel ``(u, v)`` — the half of link ``{u, v}`` that
#: carries flits from ``u`` to ``v``.
Channel = tuple[int, int]

Router = Callable[[Topology, int, int], list[int]]


@dataclass(frozen=True)
class WrFinding:
    """One static wormhole hazard (deadlock cycle or OI risk)."""

    kind: str  # "cdg-cycle" | "oi-risk"
    detail: str
    channels: tuple[Channel, ...] = ()
    messages: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "channels": [list(c) for c in self.channels],
            "messages": list(self.messages),
        }


@dataclass(frozen=True)
class WrReport:
    """Static wormhole analysis of one instance.

    ``deadlock_free`` refers to the analyzed route set: ``True`` means
    the channel-dependency graph is acyclic (no deadlock possible among
    these routes), ``False`` means a cycle witness exists.
    """

    findings: tuple[WrFinding, ...]
    routes_analyzed: int
    oi_risks: tuple[OiRisk, ...]

    @property
    def deadlock_free(self) -> bool:
        return not any(f.kind == "cdg-cycle" for f in self.findings)

    @property
    def oi_safe(self) -> bool:
        """No predicted cross-invocation collision (first-order)."""
        return not self.oi_risks

    def to_dict(self) -> dict[str, Any]:
        return {
            "deadlock_free": self.deadlock_free,
            "oi_safe": self.oi_safe,
            "routes_analyzed": self.routes_analyzed,
            "findings": [f.to_dict() for f in self.findings],
        }


def channel_dependency_graph(
    routes: Iterable[Sequence[int]],
) -> dict[Channel, frozenset[Channel]]:
    """Directed-channel dependencies induced by a set of routes.

    Node set: every directed channel some route uses.  Edge
    ``c1 -> c2``: some route acquires ``c2`` while holding ``c1``
    (consecutive hops).  A cycle means the routing function admits a
    circular wait.
    """
    edges: dict[Channel, set[Channel]] = {}
    for route in routes:
        hops = [
            (route[i], route[i + 1]) for i in range(len(route) - 1)
        ]
        for channel in hops:
            edges.setdefault(channel, set())
        for held, wanted in zip(hops, hops[1:]):
            edges[held].add(wanted)
    return {c: frozenset(nxt) for c, nxt in edges.items()}


def find_dependency_cycle(
    graph: Mapping[Channel, frozenset[Channel]],
) -> tuple[Channel, ...] | None:
    """A cycle in the channel-dependency graph, or ``None`` if acyclic.

    Iterative three-colour DFS; returns the channels along one cycle in
    dependency order.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {c: WHITE for c in graph}
    parent: dict[Channel, Channel | None] = {}
    for root in sorted(graph):
        if colour[root] != WHITE:
            continue
        stack: list[tuple[Channel, Iterable[Channel]]] = [
            (root, iter(sorted(graph[root])))
        ]
        colour[root] = GREY
        parent[root] = None
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if colour.get(child, BLACK) == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if colour.get(child) == GREY:
                    # Back edge: unwind the grey chain into a cycle.
                    cycle = [child]
                    walk: Channel | None = node
                    while walk is not None and walk != child:
                        cycle.append(walk)
                        walk = parent[walk]
                    cycle.reverse()
                    return tuple(cycle)
            if not advanced:
                colour[node] = BLACK
                stack.pop()
        parent.clear()
    return None


def analyze_wormhole(
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    tau_in: float,
    router: Router = lsd_to_msd_route,
    all_pairs: bool = False,
) -> WrReport:
    """Static WR hazards for one instance under a deterministic router.

    With ``all_pairs=False`` (default) the dependency graph covers the
    instance's actual message routes — "can *these* messages deadlock".
    With ``all_pairs=True`` it covers every ordered node pair — a
    property of the routing function itself on this topology.
    """
    if all_pairs:
        pairs = [
            (u, v)
            for u in range(topology.num_nodes)
            for v in range(topology.num_nodes)
            if u != v
        ]
    else:
        pairs = []
        for message in timing.tfg.messages:
            src, dst = allocation[message.src], allocation[message.dst]
            if src != dst:
                pairs.append((src, dst))
    routes = [router(topology, src, dst) for src, dst in pairs]
    graph = channel_dependency_graph(routes)
    findings: list[WrFinding] = []
    cycle = find_dependency_cycle(graph)
    if cycle is not None:
        path = " -> ".join(f"{u}->{v}" for u, v in cycle)
        findings.append(
            WrFinding(
                kind="cdg-cycle",
                detail=(
                    f"channel dependency cycle of length {len(cycle)}: "
                    f"{path} (deadlock possible under wormhole routing)"
                ),
                channels=cycle,
            )
        )
    risks = tuple(
        predict_oi_risks(timing, topology, allocation, tau_in, router=router)
    )
    for risk in risks:
        findings.append(
            WrFinding(
                kind="oi-risk",
                detail=(
                    f"invocation j+1 of {risk.blocked!r} becomes available "
                    f"at t={risk.available_at:g} while {risk.holder!r} "
                    f"holds link {risk.link} "
                    f"[{risk.busy_from:g}, {risk.busy_until:g}]"
                ),
                channels=(risk.link,),
                messages=(risk.holder, risk.blocked),
            )
        )
    return WrReport(
        findings=tuple(findings),
        routes_analyzed=len(routes),
        oi_risks=risks,
    )
