"""Layer 1: necessary-condition certificates from instance structure.

Everything here is solver-free: the checks read the TFG timing, the
topology and the task allocation, and refute a point only when **every**
path assignment would fail.  The load arithmetic is shared with the
compiler's utilisation gate via :func:`repro.core.utilization.
window_demand` / :func:`~repro.core.utilization.link_loads`, and the
time bounds come from the same :func:`repro.core.timebounds.
compute_time_bounds` the pipeline uses — the diagnoser cannot drift
from the compiler's own definitions.

The refutation engine is one Hall-type argument instantiated three ways:
for any set of messages pinned to a resource of multiplicity ``c`` and
any contiguous frame window ``W``, the load they cannot move outside
``W`` must fit in ``c`` times the time ``W`` offers.  With the resource
a *forced link* (multiplicity 1) and ``W`` the whole frame this is
exactly Definition 5.1's ``U_j <= 1``; with shorter windows it is the
window-density bound; with the resource a node's link star or the
canonical bisection it is the cut bound.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.core.timebounds import TimeBoundSet, compute_time_bounds
from repro.core.utilization import link_loads
from repro.diagnose.certificates import (
    Diagnosis,
    Refutation,
    exceeds_capacity,
)
from repro.errors import SchedulingError, TopologyError
from repro.tfg.analysis import TFGTiming
from repro.topology.analysis import canonical_bisection
from repro.topology.base import Link, Topology, link_between
from repro.topology.routing import links_on_path
from repro.units import EPS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ScheduleCache


def _distance_avoiding(
    topology: Topology, src: int, dst: int, banned: Link
) -> int | None:
    """Minimal hop count from ``src`` to ``dst`` never crossing ``banned``.

    Plain BFS over :meth:`Topology.neighbors` (ignores any closed-form
    ``distance`` override, so it is correct on residual topologies too).
    ``None`` when removing the link disconnects the pair.
    """
    if src == dst:
        return 0
    frontier = [src]
    seen = {src}
    hops = 0
    while frontier:
        hops += 1
        nxt: list[int] = []
        for u in frontier:
            for v in topology.neighbors(u):
                if link_between(u, v) == banned:
                    continue
                if v == dst:
                    return hops
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return None


def forced_links(topology: Topology, src: int, dst: int) -> tuple[Link, ...]:
    """Links that **every** minimal ``src -> dst`` route must use.

    A link is forced exactly when removing it increases the pair's
    distance; candidates are the links of any one minimal path (a forced
    link lies on all of them).  For adjacent endpoints the single link
    is always forced.
    """
    if src == dst:
        return ()
    distance = topology.distance(src, dst)
    pool = topology.minimal_path_pool(src, dst, max_paths=1)
    if not pool:
        return ()
    forced: list[Link] = []
    for link in links_on_path(pool[0]):
        without = _distance_avoiding(topology, src, dst, link)
        if without is None or without > distance:
            forced.append(link)
    return tuple(sorted(forced))


class _HallViolation:
    """Worst violated Hall window for one resource (internal)."""

    def __init__(
        self,
        window: tuple[float, float],
        demand: float,
        capacity: float,
        messages: tuple[str, ...],
        full_frame: bool,
    ) -> None:
        self.window = window
        self.demand = demand
        self.capacity = capacity
        self.messages = messages
        self.full_frame = full_frame


def _worst_overload(
    bounds: TimeBoundSet,
    rows: Sequence[int],
    multiplicity: int,
    weights: Sequence[float] | None = None,
) -> _HallViolation | None:
    """The most violated Hall window for messages pinned to one resource.

    Candidate windows run from a window-start boundary to a window-end
    boundary of the involved messages (the classical release/deadline
    family), plus the full frame.  Capacity is ``multiplicity`` times
    the union length of the involved messages' activity inside the
    window — each unit of the resource serves at most one message at a
    time, and only while some message is available.
    """
    if not rows:
        return None
    boundaries = bounds.intervals.boundaries
    lengths = np.asarray(bounds.intervals.lengths)
    K = bounds.intervals.count
    activity = bounds.activity[list(rows)]
    durations = np.array([bounds.bounds[bounds.order[i]].duration for i in rows])
    active_lengths = activity @ lengths
    any_active = activity.any(axis=0)
    weight = (
        np.asarray(list(weights), dtype=float)
        if weights is not None
        else np.ones(len(rows))
    )

    def boundary_index(value: float) -> int:
        best = min(range(len(boundaries)), key=lambda i: abs(boundaries[i] - value))
        return best if abs(boundaries[best] - value) <= EPS else -1

    starts: set[int] = set()
    ends: set[int] = set()
    for i in rows:
        for seg_start, seg_end in bounds.bounds[bounds.order[i]].windows:
            a = boundary_index(seg_start)
            b = boundary_index(seg_end)
            if a >= 0:
                starts.add(a)
            if b >= 0:
                ends.add(b)

    candidates: list[tuple[np.ndarray, tuple[float, float], bool]] = [
        (np.ones(K, dtype=bool), (0.0, bounds.tau_in), True)
    ]
    for a in sorted(starts):
        for b in sorted(ends):
            if a == b:
                continue
            mask = np.zeros(K, dtype=bool)
            if a < b:
                mask[a:b] = True
            else:  # wrapped run
                mask[a:] = True
                mask[:b] = True
            candidates.append((mask, (boundaries[a], boundaries[b]), False))

    best: _HallViolation | None = None
    best_excess = 0.0
    for mask, window, full in candidates:
        within = activity[:, mask] @ lengths[mask]
        demand_each = np.maximum(0.0, durations - (active_lengths - within))
        demand = float((demand_each * weight).sum())
        capacity = float(lengths[mask & any_active].sum()) * multiplicity
        if not exceeds_capacity(demand, capacity):
            continue
        excess = demand - capacity
        if best is None or excess > best_excess:
            involved = tuple(
                bounds.order[i]
                for i, d in zip(rows, demand_each)
                if d > EPS
            )
            best = _HallViolation(window, demand, capacity, involved, full)
            best_excess = excess
    return best


def diagnose_instance(
    timing: TFGTiming,
    topology: Topology,
    allocation: Mapping[str, int],
    tau_in: float,
    *,
    sync_margin: float = 0.0,
    cache: "ScheduleCache | None" = None,
) -> Diagnosis:
    """Run every static (layer-1) check over one problem instance.

    Returns a :class:`Diagnosis`; ``diagnosis.refuted`` means no path
    assignment at all can meet the requirements, so the LP pipeline may
    be skipped.  Certificates are sound by construction (each is a
    necessary condition) and the fuzz harness enforces this against both
    LP backends (``repro.check.fuzz``).
    """
    started = time.perf_counter()
    key: str | None = None
    if cache is not None:
        from repro.cache.keys import diagnosis_cache_key

        key = diagnosis_cache_key(
            timing, topology, allocation, tau_in, sync_margin
        )
        cached = cache.fetch_diagnosis(key)
        if cached is not None:
            return cached
    checks: list[str] = []
    refutations: list[Refutation] = []

    routed = [
        message
        for message in timing.tfg.messages
        if allocation[message.src] != allocation[message.dst]
    ]

    # -- window / period feasibility (mirrors compute_time_bounds) -------
    checks.append("window")
    window = timing.message_window
    if tau_in < timing.tau_c - EPS:
        refutations.append(
            Refutation(
                kind="period",
                detail=(
                    f"tau_in={tau_in:g} below tau_c={timing.tau_c:g}: the "
                    "slowest task cannot sustain the input rate"
                ),
                demand=timing.tau_c,
                capacity=tau_in,
            )
        )
    if window > tau_in + EPS:
        refutations.append(
            Refutation(
                kind="window",
                detail=(
                    f"message window {window:g} exceeds the period "
                    f"{tau_in:g}; successive instances would overlap"
                ),
                demand=window,
                capacity=tau_in,
            )
        )
    for message in routed:
        duration = timing.xmit_time(message.name) + sync_margin
        if duration > window + EPS:
            refutations.append(
                Refutation(
                    kind="window",
                    detail=(
                        f"message {message.name!r} needs {duration:g} time "
                        f"units but its window is {window:g}"
                    ),
                    messages=(message.name,),
                    demand=duration,
                    capacity=window,
                )
            )
    if refutations:
        # Time bounds cannot even be constructed; later checks need them.
        return _finish(tau_in, refutations, checks, started, cache, key)

    # -- connectivity -----------------------------------------------------
    checks.append("connectivity")
    distances: dict[str, int] = {}
    for message in routed:
        src, dst = allocation[message.src], allocation[message.dst]
        try:
            distances[message.name] = topology.distance(src, dst)
        except TopologyError:
            refutations.append(
                Refutation(
                    kind="disconnected",
                    detail=(
                        f"message {message.name!r}: nodes {src} and {dst} "
                        f"are disconnected in {topology.name}"
                    ),
                    messages=(message.name,),
                )
            )
    connected = [m for m in routed if m.name in distances]

    try:
        bounds = compute_time_bounds(
            timing,
            tau_in,
            [m.name for m in routed],
            extra_duration=sync_margin,
        )
    except SchedulingError as error:  # pragma: no cover - guarded above
        refutations.append(Refutation(kind="window", detail=str(error)))
        return _finish(tau_in, refutations, checks, started, cache, key)

    # -- forced-link overload (Def. 5.1 + Hall windows) -------------------
    checks.append("forced-link")
    forced_map: dict[str, tuple[Link, ...]] = {}
    for message in connected:
        src, dst = allocation[message.src], allocation[message.dst]
        pinned = forced_links(topology, src, dst)
        if pinned:
            forced_map[message.name] = pinned
    for link, load in link_loads(bounds, forced_map).items():
        rows = [bounds.index[name] for name in load.messages]
        violation = _worst_overload(bounds, rows, multiplicity=1)
        if violation is None:
            continue
        kind = "link-overload" if violation.full_frame else "window-density"
        ratio = violation.demand / violation.capacity if violation.capacity else float("inf")
        refutations.append(
            Refutation(
                kind=kind,
                detail=(
                    f"link {link} is forced to carry "
                    f"{len(violation.messages)} message(s) at density "
                    f"{ratio:.3f} > 1"
                ),
                messages=violation.messages,
                links=(link,),
                window=violation.window,
                demand=violation.demand,
                capacity=violation.capacity,
            )
        )

    # -- cut capacity (node stars + canonical bisection) ------------------
    checks.append("cut")
    node_of = {m.name: (allocation[m.src], allocation[m.dst]) for m in connected}
    for node in range(topology.num_nodes):
        crossing = [
            name
            for name, (src, dst) in node_of.items()
            if (src == node) != (dst == node)
        ]
        if len(crossing) < 2:
            continue
        rows = [bounds.index[name] for name in crossing]
        degree = topology.degree(node)
        violation = _worst_overload(bounds, rows, multiplicity=degree)
        if violation is None:
            continue
        star = tuple(
            sorted(link_between(node, v) for v in topology.neighbors(node))
        )
        refutations.append(
            Refutation(
                kind="cut-overload",
                detail=(
                    f"node {node}'s {degree} links cannot carry its "
                    f"{len(violation.messages)} crossing message(s): "
                    f"{violation.demand:.4f} > {violation.capacity:.4f}"
                ),
                messages=violation.messages,
                links=star,
                window=violation.window,
                demand=violation.demand,
                capacity=violation.capacity,
            )
        )
    upper, crossing_links = canonical_bisection(topology)
    bisection = [
        name
        for name, (src, dst) in node_of.items()
        if (src in upper) != (dst in upper)
    ]
    if bisection and crossing_links:
        rows = [bounds.index[name] for name in bisection]
        violation = _worst_overload(
            bounds, rows, multiplicity=len(crossing_links)
        )
        if violation is not None:
            refutations.append(
                Refutation(
                    kind="cut-overload",
                    detail=(
                        f"bisection ({len(crossing_links)} links) saturated "
                        f"by {len(violation.messages)} crossing message(s)"
                    ),
                    messages=violation.messages,
                    links=crossing_links,
                    window=violation.window,
                    demand=violation.demand,
                    capacity=violation.capacity,
                )
            )

    # -- network volume ---------------------------------------------------
    checks.append("network-capacity")
    if connected:
        rows = [bounds.index[m.name] for m in connected]
        lengths = np.asarray(bounds.intervals.lengths)
        any_active = bounds.activity[rows].any(axis=0)
        volume = sum(
            bounds.bounds[m.name].duration * distances[m.name]
            for m in connected
        )
        capacity = float(lengths[any_active].sum()) * topology.num_links
        if exceeds_capacity(volume, capacity):
            refutations.append(
                Refutation(
                    kind="network-capacity",
                    detail=(
                        f"total message volume {volume:.4f} link-time units "
                        f"exceeds network capacity {capacity:.4f}"
                    ),
                    messages=tuple(m.name for m in connected),
                    links=tuple(topology.links),
                    window=(0.0, tau_in),
                    demand=volume,
                    capacity=capacity,
                )
            )

    return _finish(tau_in, refutations, checks, started, cache, key)


def _finish(
    tau_in: float,
    refutations: Iterable[Refutation],
    checks: Iterable[str],
    started: float,
    cache: "ScheduleCache | None",
    key: str | None,
) -> Diagnosis:
    ordered = tuple(
        sorted(
            refutations,
            key=lambda r: (r.kind, r.links, r.messages, r.detail),
        )
    )
    diagnosis = Diagnosis(
        tau_in=tau_in,
        refutations=ordered,
        checks=tuple(checks),
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
    )
    if cache is not None and key is not None:
        cache.store_diagnosis(key, diagnosis)
    return diagnosis
