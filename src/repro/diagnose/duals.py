"""Layer 2: solver-backed certificates for allocation-LP failures.

A static (layer-1) certificate refutes an instance for *every* path
assignment.  When layer 1 finds nothing but the compiler's allocation
LP still fails, this layer explains *why that assignment failed*: it
re-poses constraint (3)-(4) as a pure feasibility probe (capacities
fixed at the real interval lengths, no load-factor variable), extracts
a verified Farkas ray through :func:`repro.solvers.certificates.
infeasibility_certificate`, and reads the ray's non-zero multipliers
back through the LP's row labels — which messages' duration equations
and which (link, interval) capacity rows combine into a contradiction.

The resulting :class:`~repro.diagnose.certificates.Refutation` carries
``scope="assignment"``: another path assignment might avoid the
conflict, so these certificates explain rather than prescreen.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.assignment import PathAssignment
from repro.core.interval_allocation import build_allocation_problem
from repro.core.subsets import maximal_subsets
from repro.core.timebounds import TimeBoundSet
from repro.diagnose.certificates import SCOPE_ASSIGNMENT, Refutation
from repro.solvers import LPBackend, get_backend
from repro.solvers.certificates import FarkasCertificate, infeasibility_certificate
from repro.topology.base import Link

#: Multipliers below this are rounding noise, not part of the core
#: (the aux LP box-normalises all multipliers into [-1, 1]).
MULTIPLIER_TOL = 1e-6


def _translate(
    bounds: TimeBoundSet,
    subset: tuple[str, ...],
    subset_index: int,
    certificate: FarkasCertificate,
    eq_messages: tuple[str, ...],
    ub_rows: tuple[tuple[str, Link | None, int], ...],
    variables: tuple[tuple[str, int], ...],
) -> Refutation:
    """Read a Farkas ray back through the LP's row/column labels."""
    messages = tuple(
        name
        for name, lam in zip(eq_messages, certificate.dual_eq)
        if abs(lam) > MULTIPLIER_TOL
    )
    links: set[Link] = set()
    intervals: set[int] = set()
    capacity = 0.0
    for (tag, link, k), mu in zip(ub_rows, certificate.dual_ub):
        if mu <= MULTIPLIER_TOL:
            continue
        intervals.add(k)
        if tag == "link" and link is not None:
            links.add(link)
        capacity += mu * bounds.intervals.lengths[k]
    for slot, nu in zip(certificate.upper_indices, certificate.dual_upper):
        if nu > MULTIPLIER_TOL and slot < len(variables):
            _, k = variables[slot]
            intervals.add(k)
            capacity += nu * bounds.intervals.lengths[k]
    demand = sum(
        lam * bounds.bounds[name].duration
        for name, lam in zip(eq_messages, certificate.dual_eq)
    )
    if intervals:
        start = min(bounds.intervals.interval(k)[0] for k in intervals)
        end = max(bounds.intervals.interval(k)[1] for k in intervals)
        window: tuple[float, float] | None = (start, end)
    else:
        window = (0.0, bounds.tau_in)
    return Refutation(
        kind="lp-farkas",
        detail=(
            f"allocation LP for maximal subset {subset_index} is "
            f"infeasible: a weighted combination of {len(messages)} "
            f"duration equation(s) and {len(links)} link-capacity "
            f"row(s) is violated by {certificate.violation:.6f}"
        ),
        messages=messages,
        links=tuple(sorted(links)),
        window=window,
        demand=float(demand),
        capacity=float(capacity),
        scope=SCOPE_ASSIGNMENT,
    )


def explain_allocation_failure(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    subset: tuple[str, ...],
    subset_index: int = 0,
    backend: LPBackend | None = None,
) -> Refutation | None:
    """Farkas-certify one maximal subset's allocation infeasibility.

    Returns ``None`` when the feasibility probe is satisfiable (the
    subset is allocatable at real capacities) or when no certificate
    clears the verification tolerance.
    """
    if backend is None:
        backend = get_backend()
    built = build_allocation_problem(
        bounds, assignment, subset, fixed_capacity=True
    )
    certificate = infeasibility_certificate(built.problem, backend)
    if certificate is None:
        return None
    return _translate(
        bounds,
        subset,
        subset_index,
        certificate,
        built.eq_messages,
        built.ub_rows,
        built.variables,
    )


def explain_assignment(
    bounds: TimeBoundSet,
    assignment: PathAssignment,
    backend: LPBackend | None = None,
    subsets: Sequence[tuple[str, ...]] | None = None,
) -> tuple[Refutation, ...]:
    """Farkas certificates for every unallocatable maximal subset.

    The deep-diagnosis driver behind ``repro-sr diagnose --deep``: given
    the concrete assignment the compiler would use, probe each maximal
    subset's feasibility LP and translate every infeasible ray found.
    An empty result means the allocation stage would accept this
    assignment (interval *scheduling* may still fail downstream).
    """
    if backend is None:
        backend = get_backend()
    groups = (
        list(subsets)
        if subsets is not None
        else maximal_subsets(bounds, assignment)
    )
    refutations: list[Refutation] = []
    for index, subset in enumerate(groups):
        refutation = explain_allocation_failure(
            bounds, assignment, tuple(subset), index, backend
        )
        if refutation is not None:
            refutations.append(refutation)
    return tuple(refutations)


__all__ = [
    "MULTIPLIER_TOL",
    "explain_allocation_failure",
    "explain_assignment",
]
