"""A deterministic dense two-phase simplex — the scipy-free reference.

Environments without scipy (the package's only LP dependency) still need
a working scheduled-routing compiler; this backend solves the compiler's
LPs with nothing beyond numpy, which is already a hard dependency of the
whole library.  It is a textbook dense tableau simplex:

- general bounds are reduced to ``x >= 0`` by shifting lows and adding
  explicit upper-bound rows;
- every constraint becomes an equality with a slack/surplus variable,
  right-hand sides are made non-negative by row negation, and rows that
  lack a natural basic slack get an artificial variable;
- **phase 1** minimises the artificial sum (infeasible when it stays
  positive), redundant rows whose artificial cannot be pivoted out are
  dropped;
- **phase 2** minimises the true objective with artificial columns
  barred from entering.

Pivoting uses Dantzig's rule (most negative reduced cost, first index on
ties) and falls back to Bland's anti-cycling rule after a degeneracy
budget, so every run terminates and — all tie-breaks being index-based —
is bit-for-bit deterministic across processes and platforms.

Equality duals come for free: the reduced cost of row ``i``'s identity
column (its artificial or natural slack) at the phase-2 optimum equals
``-y_i``; the column-generation pricer in interval scheduling consumes
exactly these.

The tableau is dense and the rule is Bland-safe rather than fast: this
backend is meant for correctness cross-checks and small fixtures, not
for the 64-node sweeps (use ``highs`` there).
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import (
    LPProblem,
    LPSolution,
    TalliedBackend,
    WarmStart,
    failure_solution,
)

#: Reduced costs above ``-_RCOST_TOL`` count as non-negative (optimal).
_RCOST_TOL = 1e-9

#: Pivot entries at or below this magnitude are treated as zero.
_PIVOT_TOL = 1e-10

#: Phase-1 objective above this value means the LP is infeasible.
_FEAS_TOL = 1e-7


class _Tableau:
    """Canonical-form tableau with an incrementally maintained cost row."""

    def __init__(
        self, rows: np.ndarray, rhs: np.ndarray, basis: list[int]
    ) -> None:
        self.rows = rows
        self.rhs = rhs
        self.basis = basis
        self.iterations = 0

    def reduced_costs(self, costs: np.ndarray) -> np.ndarray:
        r = costs.astype(float).copy()
        for i, j in enumerate(self.basis):
            if costs[j] != 0.0:
                r -= costs[j] * self.rows[i]
        return r

    def pivot(self, i: int, j: int, r: np.ndarray) -> None:
        piv = self.rows[i, j]
        self.rows[i] /= piv
        self.rhs[i] /= piv
        column = self.rows[:, j].copy()
        column[i] = 0.0
        self.rows -= np.outer(column, self.rows[i])
        self.rhs -= column * self.rhs[i]
        r -= r[j] * self.rows[i]
        self.basis[i] = j
        self.iterations += 1

    def minimize(
        self,
        costs: np.ndarray,
        allowed: np.ndarray,
        max_iterations: int,
    ) -> tuple[str, np.ndarray]:
        """Run the simplex; returns ``(status, reduced_costs)``.

        ``status`` is ``"optimal"``, ``"unbounded"`` or ``"iterations"``.
        Dantzig's rule with a Bland fallback after a degeneracy budget.
        """
        r = self.reduced_costs(costs)
        bland_after = self.iterations + max(200, 20 * len(self.basis))
        while True:
            candidates = np.flatnonzero(allowed & (r < -_RCOST_TOL))
            if candidates.size == 0:
                return "optimal", r
            if self.iterations > max_iterations:
                return "iterations", r
            if self.iterations < bland_after:
                j = int(candidates[np.argmin(r[candidates])])
            else:  # Bland: lowest eligible column index
                j = int(candidates[0])
            column = self.rows[:, j]
            eligible = np.flatnonzero(column > _PIVOT_TOL)
            if eligible.size == 0:
                return "unbounded", r
            ratios = self.rhs[eligible] / column[eligible]
            best = np.min(ratios)
            tied = eligible[ratios <= best + 1e-12]
            # Among ties leave the basic variable with the lowest index
            # (Bland's leaving rule — harmless under Dantzig, required
            # for termination under Bland).
            i = int(min(tied, key=lambda row: self.basis[row]))
            self.pivot(i, j, r)


class ReferenceSimplexBackend(TalliedBackend):
    """Deterministic numpy-only LP backend (see module docstring)."""

    name = "reference"

    def __init__(self, max_iterations: int = 100_000) -> None:
        super().__init__()
        self.max_iterations = max_iterations

    def _solve(
        self, problem: LPProblem, warm_start: WarmStart | None = None
    ) -> LPSolution:
        # The dense tableau has no basis to seed: ``warm_start`` handles
        # from other backends are accepted and ignored.
        c = np.asarray(problem.c, dtype=float)
        n = c.size
        lows = np.zeros(n)
        highs: list[float | None] = [None] * n
        if problem.bounds is not None:
            bounds = problem.bounds  # canonical (n, 2) array, ±inf open
            if not np.all(np.isfinite(bounds[:, 0])):
                return failure_solution("lower bounds must be finite")
            lows = bounds[:, 0].astype(float).copy()
            highs = [
                None if np.isinf(high) else float(high)
                for high in bounds[:, 1]
            ]

        # Shifted problem in x' = x - low >= 0.  The sparse constraint
        # matrices are densified here: this backend is a dense tableau
        # anyway, and ``to_dense()`` keeps its numerics bit-identical to
        # the pre-sparse assembly.
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        if problem.a_eq is not None:
            a_eq = problem.a_eq.to_dense()
            b_eq = np.asarray(problem.b_eq, dtype=float) - a_eq @ lows
            eq_rows = list(a_eq)
            eq_rhs = list(b_eq)
        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        if problem.a_ub is not None:
            a_ub = problem.a_ub.to_dense()
            b_ub = np.asarray(problem.b_ub, dtype=float) - a_ub @ lows
            ub_rows = list(a_ub)
            ub_rhs = list(b_ub)
        for j, high in enumerate(highs):
            if high is not None:
                row = np.zeros(n)
                row[j] = 1.0
                ub_rows.append(row)
                ub_rhs.append(high - lows[j])

        num_eq = len(eq_rows)
        num_ub = len(ub_rows)
        m = num_eq + num_ub
        if m == 0:
            return failure_solution("a problem needs at least one constraint")

        # Column layout: [x' (n) | slacks (num_ub) | artificials (<= m)].
        # ``sign[i]`` records row negation so duals can be mapped back.
        sign = np.ones(m)
        art_of_row: dict[int, int] = {}
        slack_of_row: dict[int, int] = {}
        num_art = 0
        for i in range(m):
            rhs = eq_rhs[i] if i < num_eq else ub_rhs[i - num_eq]
            if rhs < 0.0:
                sign[i] = -1.0
            if i < num_eq or sign[i] < 0.0:
                art_of_row[i] = num_art  # eq rows and negated ub rows
                num_art += 1
        total = n + num_ub + num_art
        rows = np.zeros((m, total))
        rhs_v = np.zeros(m)
        basis: list[int] = []
        for i in range(m):
            if i < num_eq:
                rows[i, :n] = sign[i] * eq_rows[i]
                rhs_v[i] = sign[i] * eq_rhs[i]
            else:
                k = i - num_eq
                rows[i, :n] = sign[i] * ub_rows[k]
                rhs_v[i] = sign[i] * ub_rhs[k]
                slack_col = n + k
                rows[i, slack_col] = sign[i]  # slack of a negated row = -1
                slack_of_row[i] = slack_col
            if i in art_of_row:
                art_col = n + num_ub + art_of_row[i]
                rows[i, art_col] = 1.0
                basis.append(art_col)
            else:
                basis.append(slack_of_row[i])

        tableau = _Tableau(rows, rhs_v, basis)
        art_columns = np.zeros(total, dtype=bool)
        art_columns[n + num_ub:] = True

        # Phase 1: drive the artificial sum to zero.
        if num_art:
            phase1 = np.zeros(total)
            phase1[art_columns] = 1.0
            status, _ = tableau.minimize(
                phase1, np.ones(total, dtype=bool), self.max_iterations
            )
            infeasibility = sum(
                tableau.rhs[i]
                for i, j in enumerate(tableau.basis)
                if art_columns[j]
            )
            if status == "iterations":
                return failure_solution(
                    "phase-1 iteration limit reached",
                    iterations=tableau.iterations,
                )
            if infeasibility > _FEAS_TOL:
                return failure_solution(
                    f"infeasible (artificial residual {infeasibility:.3e})",
                    iterations=tableau.iterations,
                )
            _expel_artificials(tableau, art_columns)

        # Phase 2: the true objective; artificials may not re-enter.
        costs = np.zeros(total)
        costs[:n] = c
        status, r = tableau.minimize(
            costs, ~art_columns, self.max_iterations
        )
        if status != "optimal":
            return failure_solution(
                f"phase-2 {status}", iterations=tableau.iterations
            )

        shifted = np.zeros(total)
        for i, j in enumerate(tableau.basis):
            shifted[j] = tableau.rhs[i]
        x = lows + shifted[:n]

        # Dual of row i: -(reduced cost of its identity column), times
        # the row's negation sign.  Dropped redundant rows keep dual 0.
        dual_eq = None
        if num_eq:
            duals = np.zeros(num_eq)
            for i, original in enumerate(tableau.row_origin):
                if original < num_eq:
                    col = n + num_ub + art_of_row[original]
                    duals[original] = -sign[original] * r[col]
            dual_eq = duals

        return LPSolution(
            success=True,
            x=x,
            objective=float(c @ x),
            dual_eq=dual_eq,
            iterations=tableau.iterations,
            message="optimal (reference simplex)",
        )


def _expel_artificials(tableau: _Tableau, art_columns: np.ndarray) -> None:
    """Pivot zero-valued basic artificials out; drop redundant rows.

    After a feasible phase 1 every basic artificial sits at value ~0.  A
    nonzero non-artificial entry in its row lets us pivot it out; a row
    with none is a redundant constraint and is deleted so phase 2 can
    never push its artificial positive again.  ``tableau.row_origin``
    maps surviving rows back to original constraint indices (for duals).
    """
    keep: list[int] = []
    r = np.zeros(tableau.rows.shape[1])  # dummy cost row for pivots
    for i in range(len(tableau.basis)):
        if not art_columns[tableau.basis[i]]:
            keep.append(i)
            continue
        row = tableau.rows[i]
        candidates = np.flatnonzero(
            (~art_columns) & (np.abs(row) > _PIVOT_TOL)
        )
        if candidates.size:
            tableau.pivot(i, int(candidates[0]), r)
            keep.append(i)
        # else: redundant row — dropped below.
    if len(keep) != len(tableau.basis):
        tableau.rows = tableau.rows[keep]
        tableau.rhs = tableau.rhs[keep]
        tableau.basis = [tableau.basis[i] for i in keep]
    tableau.row_origin = keep
