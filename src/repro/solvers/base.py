"""The LP backend contract shared by every solver implementation.

The scheduled-routing compiler solves two families of linear programs —
the message-interval allocation LP (paper constraints (3)-(4)) and the
link-feasible-set packing LP of interval scheduling (Section 5.3).  Both
families are *sparse* (a coefficient per (message, interval) membership,
not per matrix cell) and arrive in *batches* (one packing LP per active
interval of a schedule), so the contract is sparse-first and batch-aware:

- :class:`LPProblemBuilder` assembles constraints in COO triplet form —
  numpy index/value arrays, no per-coefficient Python loops — and
  produces a canonical :class:`LPProblem`;
- :class:`LPProblem` carries its constraint matrices as
  :class:`CSRMatrix` (a numpy-only compressed-sparse-row container with
  a :meth:`CSRMatrix.to_dense` adapter for dense solvers such as the
  pure-Python reference simplex);
- :class:`LPSolution` is the uniform result: primal point and equality
  duals as **read-only numpy arrays**, iteration count, wall time, and
  an opaque :class:`WarmStart` handle a backend may attach;
- :class:`LPBackend` adds two capabilities beyond single
  :meth:`~LPBackend.solve` calls: :meth:`~LPBackend.solve_batch` (a
  backend may stitch independent problems into one block-diagonal solve
  and de-stitch the primal/dual blocks) and warm starting (pass a
  previous solution's ``warm_start`` handle to reuse its basis);
- :class:`SolverTally` accumulates per-backend statistics — including
  batch and warm-start counters — that the compiler stages copy into
  :class:`~repro.trace.profile.CompileProfiler` detail (and hence into
  ``compile``-category trace events).

Problems handed to ``solve()``/``solve_batch()`` must be **canonical**
(sparse matrices, array bounds).  The one-release dense-field
deprecation shim has expired: passing dense matrix fields now raises
``ValueError``.  Assemble through :class:`LPProblemBuilder`, or convert
explicitly with :meth:`LPProblem.from_dense` when dense data is what a
caller naturally holds.

:data:`LP_TOL` is the single numerical feasibility tolerance shared by
both LP stages and every backend; :func:`exceeds_tolerance` is the one
place its comparison semantics live.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

#: Numerical tolerance shared by the allocation and scheduling LP stages
#: (and every backend's feasibility checks).  A quantity "exceeds" a
#: limit only beyond ``LP_TOL`` relative slack — see
#: :func:`exceeds_tolerance`; anything inside the band is solver rounding
#: and is clamped, not rejected.
LP_TOL = 1e-7


def exceeds_tolerance(value: float, limit: float, tol: float = LP_TOL) -> bool:
    """True when ``value`` exceeds ``limit`` beyond the shared tolerance.

    The band is relative for limits above 1 and absolute below
    (``tol * max(1, |limit|)``), matching the historical behaviour of
    both LP stages.  Values inside the band are treated as equal to the
    limit: the allocation stage accepts load factors up to
    ``1 + LP_TOL`` and the scheduling stage rescales packings that
    overshoot the interval by at most ``LP_TOL * interval_length``.
    """
    return value > limit + tol * max(1.0, abs(limit))


class CSRMatrix:
    """A numpy-only compressed-sparse-row matrix.

    Deliberately not :mod:`scipy.sparse`: the data contract of
    :class:`LPProblem` must work in scipy-free environments (the
    reference simplex exists exactly for those), so the container keeps
    plain numpy arrays in standard CSR layout — ``data``/``indices``
    per stored entry, ``indptr`` of length ``rows + 1`` — with ``int32``
    indices (what HiGHS consumes natively).
    """

    __slots__ = ("data", "indices", "indptr", "shape")

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int32)
        self.indptr = np.asarray(indptr, dtype=np.int32)
        self.shape = (int(shape[0]), int(shape[1]))

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: tuple[int, int],
    ) -> "CSRMatrix":
        """Build from COO triplets, fully vectorized.

        Entries are sorted to canonical (row, col) order and duplicate
        coordinates are **summed** (standard COO semantics).
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if not (rows.size == cols.size == values.size):
            raise ValueError("COO triplet arrays must have equal length")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size:
            if int(rows.min()) < 0 or int(rows.max()) >= n_rows:
                raise ValueError("COO row index out of range")
            if int(cols.min()) < 0 or int(cols.max()) >= n_cols:
                raise ValueError("COO column index out of range")
            order = np.lexsort((cols, rows))
            rows, cols, values = rows[order], cols[order], values[order]
            fresh = np.empty(rows.size, dtype=bool)
            fresh[0] = True
            fresh[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            starts = np.flatnonzero(fresh)
            values = np.add.reduceat(values, starts)
            rows, cols = rows[starts], cols[starts]
        counts = np.bincount(rows, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(values, cols, indptr, (n_rows, n_cols))

    @classmethod
    def from_dense(cls, dense: Any) -> "CSRMatrix":
        """Build from a dense 2-D array (zeros are dropped)."""
        array = np.atleast_2d(np.asarray(dense, dtype=np.float64))
        rows, cols = np.nonzero(array)
        return cls.from_coo(rows, cols, array[rows, cols], array.shape)

    def to_dense(self) -> np.ndarray:
        """The matrix as a dense float64 array (the adapter dense
        solvers — e.g. the reference simplex — consume)."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(
            np.arange(self.shape[0]), np.diff(self.indptr.astype(np.int64))
        )
        out[rows, self.indices] = self.data
        return out

    def coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The entries back as ``(rows, cols, values)`` triplets."""
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64),
            np.diff(self.indptr.astype(np.int64)),
        )
        return rows, self.indices.astype(np.int64), self.data

    def __matmul__(self, x: Any) -> np.ndarray:
        vec = np.asarray(x, dtype=np.float64)
        rows, cols, values = self.coo()
        out = np.zeros(self.shape[0], dtype=np.float64)
        np.add.at(out, rows, values * vec[cols])
        return out

    def __repr__(self) -> str:
        return f"<CSRMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz}>"


def as_bounds_array(bounds: Any, num_variables: int) -> np.ndarray:
    """Canonicalize variable bounds to an ``(n, 2)`` float array.

    Accepts ``None`` (all variables in ``[0, +inf)``), a sequence of
    ``(low, high)`` pairs where ``high`` (or ``low``) may be ``None``
    for unbounded, or an already-canonical ``(n, 2)`` array.  Unbounded
    sides become ``±numpy.inf``.
    """
    if bounds is None:
        out = np.zeros((num_variables, 2), dtype=np.float64)
        out[:, 1] = np.inf
        return out
    if isinstance(bounds, np.ndarray) and bounds.ndim == 2:
        return np.asarray(bounds, dtype=np.float64)
    out = np.empty((num_variables, 2), dtype=np.float64)
    for j, (low, high) in enumerate(bounds):
        out[j, 0] = -np.inf if low is None else float(low)
        out[j, 1] = np.inf if high is None else float(high)
    return out


@dataclass(eq=False)
class LPProblem:
    """One standard-form linear program (minimise ``c @ x``).

    Canonical problems — what :class:`LPProblemBuilder` and
    :meth:`from_dense` produce, and what backends consume — carry:

    - ``c``: float64 objective vector;
    - ``a_ub``/``a_eq``: :class:`CSRMatrix` (or ``None`` when the
      system is absent) with float64 right-hand sides ``b_ub``/``b_eq``;
    - ``bounds``: ``(n, 2)`` float64 array of per-variable
      ``[low, high]`` with ``±inf`` for unbounded sides.

    Legacy problems (dense nested lists / 2-D arrays, pair-list bounds)
    are **rejected** by ``solve()`` (the one-release deprecation shim
    has expired); convert them first with :meth:`from_dense` or
    :meth:`canonical`.
    """

    c: Any
    a_ub: Any = None
    b_ub: Any = None
    a_eq: Any = None
    b_eq: Any = None
    bounds: Any = None

    @classmethod
    def from_dense(
        cls,
        c: Any,
        a_ub: Any = None,
        b_ub: Any = None,
        a_eq: Any = None,
        b_eq: Any = None,
        bounds: Any = None,
    ) -> "LPProblem":
        """Canonicalize dense inputs (the explicit, warning-free
        migration path for callers that naturally hold dense data)."""
        c_arr = np.asarray(c, dtype=np.float64)
        return cls(
            c=c_arr,
            a_ub=None if a_ub is None else CSRMatrix.from_dense(a_ub),
            b_ub=None if b_ub is None else np.asarray(b_ub, dtype=np.float64),
            a_eq=None if a_eq is None else CSRMatrix.from_dense(a_eq),
            b_eq=None if b_eq is None else np.asarray(b_eq, dtype=np.float64),
            bounds=as_bounds_array(bounds, c_arr.size),
        )

    @property
    def is_canonical(self) -> bool:
        """True when every field is already in the sparse contract."""
        if not isinstance(self.c, np.ndarray):
            return False
        for matrix in (self.a_ub, self.a_eq):
            if matrix is not None and not isinstance(matrix, CSRMatrix):
                return False
        for rhs in (self.b_ub, self.b_eq):
            if rhs is not None and not isinstance(rhs, np.ndarray):
                return False
        return isinstance(self.bounds, np.ndarray) and self.bounds.ndim == 2

    def canonical(self) -> "LPProblem":
        """This problem in canonical sparse form (self when already
        canonical; otherwise a converted copy)."""
        if self.is_canonical:
            return self
        return LPProblem.from_dense(
            self.c, self.a_ub, self.b_ub, self.a_eq, self.b_eq, self.bounds
        )

    @property
    def num_variables(self) -> int:
        return len(self.c)

    @property
    def num_constraints(self) -> int:
        rows = 0
        if self.b_ub is not None:
            rows += len(self.b_ub)
        if self.b_eq is not None:
            rows += len(self.b_eq)
        return rows


class LPProblemBuilder:
    """Assemble an :class:`LPProblem` from COO triplets, vectorized.

    The builder is append-only: allocate constraint rows with
    :meth:`add_eq_rows` / :meth:`add_ub_rows` (optionally passing the
    block's triplets in the same call), scatter extra coefficients with
    :meth:`add_eq_entries` / :meth:`add_ub_entries`, then :meth:`build`.
    All index/value arguments are numpy arrays (or array-likes); no
    per-coefficient Python loop runs anywhere.

    >>> b = LPProblemBuilder(3)
    >>> b.set_objective([2], [1.0])
    >>> _ = b.add_eq_rows([1.0], rows=[0, 0], cols=[0, 1], values=[1, 1])
    >>> problem = b.build()
    """

    def __init__(self, num_variables: int) -> None:
        self._n = int(num_variables)
        self._c = np.zeros(self._n, dtype=np.float64)
        self._lower = np.zeros(self._n, dtype=np.float64)
        self._upper = np.full(self._n, np.inf, dtype=np.float64)
        self._eq_rows: list[np.ndarray] = []
        self._eq_cols: list[np.ndarray] = []
        self._eq_vals: list[np.ndarray] = []
        self._eq_rhs: list[np.ndarray] = []
        self._num_eq = 0
        self._ub_rows: list[np.ndarray] = []
        self._ub_cols: list[np.ndarray] = []
        self._ub_vals: list[np.ndarray] = []
        self._ub_rhs: list[np.ndarray] = []
        self._num_ub = 0

    @property
    def num_variables(self) -> int:
        return self._n

    @property
    def num_eq_rows(self) -> int:
        return self._num_eq

    @property
    def num_ub_rows(self) -> int:
        return self._num_ub

    def set_objective(self, cols: Any, values: Any) -> None:
        """Scatter objective coefficients (``c[cols] = values``)."""
        self._c[np.asarray(cols, dtype=np.int64)] = np.asarray(
            values, dtype=np.float64
        )

    def set_objective_vector(self, c: Any) -> None:
        """Replace the whole objective vector."""
        c_arr = np.asarray(c, dtype=np.float64)
        if c_arr.size != self._n:
            raise ValueError("objective length mismatch")
        self._c = c_arr.copy()

    def set_lower(self, cols: Any, values: Any) -> None:
        """Set variable lower bounds (scattered; default is 0)."""
        self._lower[np.asarray(cols, dtype=np.int64)] = np.asarray(
            values, dtype=np.float64
        )

    def set_upper(self, cols: Any, values: Any) -> None:
        """Set variable upper bounds (scattered; default is ``+inf``)."""
        self._upper[np.asarray(cols, dtype=np.int64)] = np.asarray(
            values, dtype=np.float64
        )

    def add_eq_rows(
        self,
        rhs: Any,
        rows: Any = None,
        cols: Any = None,
        values: Any = None,
    ) -> int:
        """Allocate a block of equality rows; returns the base row index.

        ``rhs`` sets the block's right-hand sides.  When triplets are
        given, their ``rows`` are **relative to the new block**.
        """
        base = self._num_eq
        rhs_arr = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        self._eq_rhs.append(rhs_arr)
        self._num_eq += rhs_arr.size
        if rows is not None:
            self._append(
                self._eq_rows, self._eq_cols, self._eq_vals,
                np.asarray(rows, dtype=np.int64) + base, cols, values,
            )
        return base

    def add_ub_rows(
        self,
        rhs: Any,
        rows: Any = None,
        cols: Any = None,
        values: Any = None,
    ) -> int:
        """Allocate a block of ``<=`` rows; returns the base row index."""
        base = self._num_ub
        rhs_arr = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        self._ub_rhs.append(rhs_arr)
        self._num_ub += rhs_arr.size
        if rows is not None:
            self._append(
                self._ub_rows, self._ub_cols, self._ub_vals,
                np.asarray(rows, dtype=np.int64) + base, cols, values,
            )
        return base

    def add_eq_entries(self, rows: Any, cols: Any, values: Any) -> None:
        """COO entries into already-allocated equality rows (absolute
        row indices)."""
        self._append(
            self._eq_rows, self._eq_cols, self._eq_vals,
            np.asarray(rows, dtype=np.int64), cols, values,
        )

    def add_ub_entries(self, rows: Any, cols: Any, values: Any) -> None:
        """COO entries into already-allocated ``<=`` rows (absolute
        row indices)."""
        self._append(
            self._ub_rows, self._ub_cols, self._ub_vals,
            np.asarray(rows, dtype=np.int64), cols, values,
        )

    @staticmethod
    def _append(
        rows_list: list[np.ndarray],
        cols_list: list[np.ndarray],
        vals_list: list[np.ndarray],
        rows: np.ndarray,
        cols: Any,
        values: Any,
    ) -> None:
        cols_arr = np.asarray(cols, dtype=np.int64).ravel()
        vals_arr = np.asarray(values, dtype=np.float64).ravel()
        rows = rows.ravel()
        if not (rows.size == cols_arr.size == vals_arr.size):
            raise ValueError("COO triplet arrays must have equal length")
        rows_list.append(rows)
        cols_list.append(cols_arr)
        vals_list.append(vals_arr)

    def build(self) -> LPProblem:
        """The canonical sparse :class:`LPProblem`."""

        def _concat(parts: list[np.ndarray], dtype: type) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate(parts)

        a_eq = a_ub = None
        b_eq = b_ub = None
        if self._num_eq:
            a_eq = CSRMatrix.from_coo(
                _concat(self._eq_rows, np.int64),
                _concat(self._eq_cols, np.int64),
                _concat(self._eq_vals, np.float64),
                (self._num_eq, self._n),
            )
            b_eq = _concat(self._eq_rhs, np.float64)
        if self._num_ub:
            a_ub = CSRMatrix.from_coo(
                _concat(self._ub_rows, np.int64),
                _concat(self._ub_cols, np.int64),
                _concat(self._ub_vals, np.float64),
                (self._num_ub, self._n),
            )
            b_ub = _concat(self._ub_rhs, np.float64)
        return LPProblem(
            c=self._c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=np.column_stack((self._lower, self._upper)),
        )


@dataclass(frozen=True, eq=False)
class WarmStart:
    """An opaque basis handle a backend attaches to its solutions.

    Pass it back to ``solve(problem, warm_start=...)`` on a problem with
    the **same constraint structure** (same variable/row counts — e.g.
    a matrix cell differing only in load) to resume from the previous
    optimal basis instead of solving cold.  The payload is
    backend-private and process-local: never serialize it, never hand a
    handle to a different backend (it is simply ignored).
    """

    backend: str
    signature: tuple[int, int, int]
    payload: Any


def _readonly(values: Any) -> np.ndarray:
    """A read-only float64 view of ``values`` (no copy when possible)."""
    array = np.asarray(values, dtype=np.float64)
    view = array.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True, eq=False)
class LPSolution:
    """Uniform result shape returned by every backend.

    Attributes
    ----------
    success:
        True when an optimal feasible point was found.
    x:
        The primal solution as a **read-only numpy array** (empty on
        failure).
    objective:
        Objective value at ``x``.
    dual_eq:
        Dual values (sensitivities ``df/db``) of the equality
        constraints, in row order, as a read-only numpy array — the
        column-generation pricer's weights.  ``None`` when the backend
        cannot provide them.
    iterations:
        Simplex/IPM iterations the solver reported.
    wall_ms:
        Wall-clock solve time, stamped by :class:`TalliedBackend`.
        Solutions from one batched solve share the batch's wall time
        evenly.
    message:
        Backend diagnostic (failure reason).
    warm_start:
        Opaque basis handle for warm-starting a structurally identical
        problem (``None`` when the backend does not support it).
    """

    success: bool
    x: np.ndarray
    objective: float
    dual_eq: np.ndarray | None
    iterations: int
    wall_ms: float = 0.0
    message: str = ""
    warm_start: WarmStart | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", _readonly(self.x))
        if self.dual_eq is not None:
            object.__setattr__(self, "dual_eq", _readonly(self.dual_eq))


@dataclass
class SolverTally:
    """Accumulated statistics of one backend instance's solves.

    ``solves`` counts *logical* LPs (a batched call contributes one per
    stitched block); ``batches``/``batched_solves`` count
    :meth:`LPBackend.solve_batch` calls and the problems they carried;
    ``warm_started`` counts solves that applied a warm-start basis.
    """

    solves: int = 0
    iterations: int = 0
    wall_ms: float = 0.0
    failures: int = 0
    max_variables: int = 0
    max_constraints: int = 0
    batches: int = 0
    batched_solves: int = 0
    warm_started: int = 0

    def record(self, problem: LPProblem, solution: LPSolution) -> None:
        self.solves += 1
        self.iterations += solution.iterations
        self.wall_ms += solution.wall_ms
        if not solution.success:
            self.failures += 1
        self.max_variables = max(self.max_variables, problem.num_variables)
        self.max_constraints = max(
            self.max_constraints, problem.num_constraints
        )

    def record_batch(self, num_problems: int) -> None:
        self.batches += 1
        self.batched_solves += num_problems

    def record_warm_start(self) -> None:
        self.warm_started += 1

    def snapshot(self) -> "SolverTally":
        """A value copy, used to compute per-stage deltas."""
        return replace(self)

    def since(self, earlier: "SolverTally") -> dict[str, float | int]:
        """Stage-detail dict of the activity since ``earlier``."""
        return {
            "lp_solves": self.solves - earlier.solves,
            "lp_iterations": self.iterations - earlier.iterations,
            "lp_wall_ms": round(self.wall_ms - earlier.wall_ms, 3),
            "lp_batches": self.batches - earlier.batches,
            "lp_batched_solves": self.batched_solves - earlier.batched_solves,
            "lp_warm_started": self.warm_started - earlier.warm_started,
        }


@runtime_checkable
class LPBackend(Protocol):
    """What the compiler stages require of an LP solver."""

    name: str
    tally: SolverTally

    def solve(
        self, problem: LPProblem, warm_start: WarmStart | None = None
    ) -> LPSolution:  # pragma: no cover
        ...

    def solve_batch(
        self,
        problems: Sequence[LPProblem],
        warm_starts: Sequence[WarmStart | None] | None = None,
    ) -> list[LPSolution]:  # pragma: no cover
        ...


class TalliedBackend:
    """Base class giving concrete backends timing and statistics.

    Subclasses implement :meth:`_solve` (and optionally
    :meth:`_solve_batch`; the default solves sequentially);
    :meth:`solve` / :meth:`solve_batch` wrap them with canonical-form
    validation, wall-clock measurement and :class:`SolverTally`
    bookkeeping.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.tally = SolverTally()

    def _admit(self, problem: LPProblem) -> LPProblem:
        if problem.is_canonical:
            return problem
        raise ValueError(
            "LPBackend.solve() requires a canonical LPProblem (sparse "
            "matrices, array bounds); assemble problems with "
            "LPProblemBuilder or convert with LPProblem.from_dense() — "
            "the dense-field deprecation shim has been removed"
        )

    def solve(
        self, problem: LPProblem, warm_start: WarmStart | None = None
    ) -> LPSolution:
        problem = self._admit(problem)
        start = time.perf_counter()
        solution = self._solve(problem, warm_start=warm_start)
        wall_ms = (time.perf_counter() - start) * 1000.0
        solution = replace(solution, wall_ms=wall_ms)
        self.tally.record(problem, solution)
        return solution

    def solve_batch(
        self,
        problems: Sequence[LPProblem],
        warm_starts: Sequence[WarmStart | None] | None = None,
    ) -> list[LPSolution]:
        admitted = [self._admit(p) for p in problems]
        start = time.perf_counter()
        solutions = self._solve_batch(admitted, warm_starts)
        wall_ms = (time.perf_counter() - start) * 1000.0
        share = wall_ms / len(admitted) if admitted else 0.0
        stamped: list[LPSolution] = []
        for problem, solution in zip(admitted, solutions):
            solution = replace(solution, wall_ms=share)
            self.tally.record(problem, solution)
            stamped.append(solution)
        self.tally.record_batch(len(admitted))
        return stamped

    def _solve(
        self, problem: LPProblem, warm_start: WarmStart | None = None
    ) -> LPSolution:
        raise NotImplementedError

    def _solve_batch(
        self,
        problems: Sequence[LPProblem],
        warm_starts: Sequence[WarmStart | None] | None = None,
    ) -> list[LPSolution]:
        """Sequential fallback; backends with a real batched path
        (block-diagonal stitching) override this."""
        starts: Sequence[WarmStart | None] = (
            warm_starts if warm_starts is not None else [None] * len(problems)
        )
        return [
            self._solve(problem, warm_start=ws)
            for problem, ws in zip(problems, starts)
        ]

    def __repr__(self) -> str:
        return f"<LPBackend {self.name}: {self.tally.solves} solves>"


def failure_solution(message: str, iterations: int = 0) -> LPSolution:
    """The uniform failed-solve result (shared by backends)."""
    return LPSolution(
        success=False,
        x=np.empty(0, dtype=np.float64),
        objective=0.0,
        dual_eq=None,
        iterations=iterations,
        message=message,
    )
