"""The LP backend contract shared by every solver implementation.

The scheduled-routing compiler solves two families of linear programs —
the message-interval allocation LP (paper constraints (3)-(4)) and the
link-feasible-set packing LP of interval scheduling (Section 5.3).  Both
historically hard-wired :func:`scipy.optimize.linprog`; this module
abstracts the call behind :class:`LPBackend` so the LP engine is a
compiler knob (``CompilerConfig.lp_backend``) instead of an import:

- :class:`LPProblem` is the standard-form problem the stages build
  (minimise ``c @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x = b_eq``,
  per-variable bounds);
- :class:`LPSolution` is the uniform result: primal point, equality
  duals (the column-generation pricer needs them), iteration count and
  wall time;
- :class:`SolverTally` accumulates per-backend statistics that the
  compiler stages copy into :class:`~repro.trace.profile.CompileProfiler`
  detail (and hence into ``compile``-category trace events).

:data:`LP_TOL` is the single numerical feasibility tolerance shared by
both LP stages and every backend; :func:`exceeds_tolerance` is the one
place its comparison semantics live.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Protocol, runtime_checkable

#: Numerical tolerance shared by the allocation and scheduling LP stages
#: (and every backend's feasibility checks).  A quantity "exceeds" a
#: limit only beyond ``LP_TOL`` relative slack — see
#: :func:`exceeds_tolerance`; anything inside the band is solver rounding
#: and is clamped, not rejected.
LP_TOL = 1e-7


def exceeds_tolerance(value: float, limit: float, tol: float = LP_TOL) -> bool:
    """True when ``value`` exceeds ``limit`` beyond the shared tolerance.

    The band is relative for limits above 1 and absolute below
    (``tol * max(1, |limit|)``), matching the historical behaviour of
    both LP stages.  Values inside the band are treated as equal to the
    limit: the allocation stage accepts load factors up to
    ``1 + LP_TOL`` and the scheduling stage rescales packings that
    overshoot the interval by at most ``LP_TOL * interval_length``.
    """
    return value > limit + tol * max(1.0, abs(limit))


@dataclass(eq=False)
class LPProblem:
    """One standard-form linear program.

    Arrays may be any sequence type ``numpy.asarray`` accepts (the
    stages pass numpy arrays; backends convert as needed).

    Attributes
    ----------
    c:
        Objective coefficients (minimisation).
    a_ub, b_ub:
        Inequality system ``a_ub @ x <= b_ub`` (both ``None`` when
        absent).
    a_eq, b_eq:
        Equality system ``a_eq @ x == b_eq`` (both ``None`` when absent).
    bounds:
        Per-variable ``(low, high)`` pairs; ``high`` may be ``None`` for
        unbounded above.  Lows must be finite.
    """

    c: Any
    a_ub: Any = None
    b_ub: Any = None
    a_eq: Any = None
    b_eq: Any = None
    bounds: Any = None

    @property
    def num_variables(self) -> int:
        return len(self.c)

    @property
    def num_constraints(self) -> int:
        rows = 0
        if self.b_ub is not None:
            rows += len(self.b_ub)
        if self.b_eq is not None:
            rows += len(self.b_eq)
        return rows


@dataclass(frozen=True)
class LPSolution:
    """Uniform result shape returned by every backend.

    Attributes
    ----------
    success:
        True when an optimal feasible point was found.
    x:
        The primal solution (empty on failure).
    objective:
        Objective value at ``x``.
    dual_eq:
        Dual values (sensitivities ``df/db``) of the equality
        constraints, in row order — the column-generation pricer's
        weights.  ``None`` when the backend cannot provide them.
    iterations:
        Simplex/IPM iterations the solver reported.
    wall_ms:
        Wall-clock solve time, stamped by :class:`TalliedBackend`.
    message:
        Backend diagnostic (failure reason).
    """

    success: bool
    x: tuple[float, ...]
    objective: float
    dual_eq: tuple[float, ...] | None
    iterations: int
    wall_ms: float = 0.0
    message: str = ""


@dataclass
class SolverTally:
    """Accumulated statistics of one backend instance's solves."""

    solves: int = 0
    iterations: int = 0
    wall_ms: float = 0.0
    failures: int = 0
    max_variables: int = 0
    max_constraints: int = 0

    def record(self, problem: LPProblem, solution: LPSolution) -> None:
        self.solves += 1
        self.iterations += solution.iterations
        self.wall_ms += solution.wall_ms
        if not solution.success:
            self.failures += 1
        self.max_variables = max(self.max_variables, problem.num_variables)
        self.max_constraints = max(
            self.max_constraints, problem.num_constraints
        )

    def snapshot(self) -> "SolverTally":
        """A value copy, used to compute per-stage deltas."""
        return replace(self)

    def since(self, earlier: "SolverTally") -> dict[str, float | int]:
        """Stage-detail dict of the activity since ``earlier``."""
        return {
            "lp_solves": self.solves - earlier.solves,
            "lp_iterations": self.iterations - earlier.iterations,
            "lp_wall_ms": round(self.wall_ms - earlier.wall_ms, 3),
        }


@runtime_checkable
class LPBackend(Protocol):
    """What the compiler stages require of an LP solver."""

    name: str
    tally: SolverTally

    def solve(self, problem: LPProblem) -> LPSolution:  # pragma: no cover
        ...


class TalliedBackend:
    """Base class giving concrete backends timing and statistics.

    Subclasses implement :meth:`_solve`; :meth:`solve` wraps it with
    wall-clock measurement and :class:`SolverTally` bookkeeping.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.tally = SolverTally()

    def solve(self, problem: LPProblem) -> LPSolution:
        start = time.perf_counter()
        solution = self._solve(problem)
        wall_ms = (time.perf_counter() - start) * 1000.0
        solution = replace(solution, wall_ms=wall_ms)
        self.tally.record(problem, solution)
        return solution

    def _solve(self, problem: LPProblem) -> LPSolution:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<LPBackend {self.name}: {self.tally.solves} solves>"
