"""The ILP backend: exact integer solves and the AssignPaths gap.

:class:`IlpBackend` is the third concrete
:class:`~repro.solvers.base.LPBackend`.  For the compiler's two LP
stages it **delegates to HiGHS** (it subclasses
:class:`~repro.solvers.scipy_backend.ScipyLinprogBackend`), so
compiling with ``lp_backend="ilp"`` produces schedules byte-identical to
``"highs"`` — a deliberate design point: column-generation pricing in
interval scheduling needs exact equality duals, which
``scipy.optimize.milp`` does not expose, so routing the *relaxations*
through an integer solver would break pricing for no gain.  What the
backend adds is :meth:`IlpBackend.solve_integer` — exact mixed-integer
solves over the same canonical :class:`~repro.solvers.base.LPProblem`
contract, via ``scipy.optimize.milp`` (HiGHS branch-and-bound).

On top of that capability, :func:`assignment_gap` formulates **optimal
path assignment** as an ILP and scores the paper's AssignPaths
heuristic against it:

- binary ``x[m, p]`` for every message ``m`` and candidate minimal path
  ``p`` in its pool (the same ``minimal_path_pool`` enumeration the
  heuristic draws from), continuous ``z`` for the peak;
- ``sum_p x[m, p] == 1`` per message;
- ``sum_{m, p : link in p} forced[m, k] * x[m, p] - len_k * z <= 0``
  per (link, interval) — the sharpened *spot* utilisation of
  :mod:`repro.core.utilization` made assignment-dependent;
- minimise ``z``.

The objective is the peak spot ratio (``UtilizationReport.max_spot``),
not the paper's link-average ``U``: the link average divides by the
window *union* of the messages crossing a link, a denominator that
itself depends on the chosen assignment — a nonlinear term no ILP row
can carry.  Peak spot is linear in ``x``, is the quantity the
utilisation gate sharpens, and upper-bounds per-interval congestion, so
the reported gap ``(heuristic - optimal) / optimal`` measures the
heuristic against the exact optimum of a like-for-like objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.solvers.base import (
    LPProblem,
    LPProblemBuilder,
    LPSolution,
    WarmStart,
)
from repro.solvers.scipy_backend import ScipyLinprogBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.assignment import PathAssignment
    from repro.core.timebounds import TimeBoundSet
    from repro.topology.base import Topology

__all__ = ["AssignmentGap", "IlpBackend", "assignment_gap"]


class IlpBackend(ScipyLinprogBackend):
    """HiGHS LPs plus exact MILP solves (``lp_backend="ilp"``).

    LP solves (``solve``/``solve_batch``) are inherited from the HiGHS
    backend unchanged — see the module docstring for why — so this
    backend is safe anywhere ``"highs"`` is; :meth:`solve_integer` is
    the additional capability.  Requires scipy >= 1.9
    (``scipy.optimize.milp``).
    """

    def __init__(
        self,
        warm_start_reuse: bool = False,
        basis_cache: dict[tuple[int, int, int], WarmStart] | None = None,
    ) -> None:
        super().__init__(
            method="highs",
            warm_start_reuse=warm_start_reuse,
            basis_cache=basis_cache,
        )
        self.name = "ilp"

    def solve_integer(
        self,
        problem: LPProblem,
        integrality: np.ndarray,
        time_limit: float | None = None,
    ) -> LPSolution:
        """Solve a canonical problem with integrality restrictions.

        ``integrality`` follows the ``scipy.optimize.milp`` convention
        per variable (0 = continuous, 1 = integer).  Returns an
        :class:`~repro.solvers.base.LPSolution`; ``dual_eq`` is always
        ``None`` (MILPs have no LP duals) and ``iterations`` reports the
        branch-and-bound node count.  The solve is recorded in the
        backend tally like any other solve.
        """
        import time

        from scipy import sparse
        from scipy.optimize import Bounds, LinearConstraint, milp

        problem = problem.canonical()
        constraints = []
        if problem.a_eq is not None:
            a_eq = sparse.csr_matrix(
                (problem.a_eq.data, problem.a_eq.indices, problem.a_eq.indptr),
                shape=problem.a_eq.shape,
            )
            constraints.append(
                LinearConstraint(a_eq, problem.b_eq, problem.b_eq)
            )
        if problem.a_ub is not None:
            a_ub = sparse.csr_matrix(
                (problem.a_ub.data, problem.a_ub.indices, problem.a_ub.indptr),
                shape=problem.a_ub.shape,
            )
            constraints.append(
                LinearConstraint(a_ub, -np.inf, problem.b_ub)
            )
        options: dict[str, float] = {}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        start = time.perf_counter()
        result = milp(
            c=problem.c,
            constraints=constraints,
            integrality=np.asarray(integrality, dtype=np.int64),
            bounds=Bounds(problem.bounds[:, 0], problem.bounds[:, 1]),
            options=options or None,
        )
        wall_ms = (time.perf_counter() - start) * 1e3
        x = (
            np.asarray(result.x, dtype=np.float64)
            if result.x is not None
            else np.empty(0, dtype=np.float64)
        )
        solution = LPSolution(
            success=bool(result.success),
            x=x,
            objective=float(result.fun) if result.fun is not None else 0.0,
            dual_eq=None,
            iterations=int(getattr(result, "mip_node_count", 0) or 0),
            message=str(result.message),
            wall_ms=wall_ms,
        )
        self.tally.record(problem, solution)
        return solution


@dataclass(frozen=True)
class AssignmentGap:
    """Heuristic-vs-optimal peak spot utilisation for one instance."""

    #: Peak spot ratio of the heuristic's assignment.
    heuristic_peak: float
    #: Exact ILP optimum over the same candidate pools.
    optimal_peak: float
    #: ``(heuristic - optimal) / optimal`` (0 when the optimum is ~0).
    gap: float
    #: ``"optimal"``, or the milp failure message when the solve failed.
    status: str
    #: Routed messages in the ILP.
    messages: int
    #: Binary path-choice variables (pool sizes summed).
    variables: int
    #: Branch-and-bound nodes the MILP explored.
    nodes: int

    @property
    def optimal(self) -> bool:
        return self.status == "optimal"


def assignment_gap(
    bounds: "TimeBoundSet",
    topology: "Topology",
    endpoints: Mapping[str, tuple[int, int]],
    assignment: "PathAssignment | Mapping[str, Sequence[int]]",
    max_paths: int = 48,
    time_limit: float | None = 60.0,
    backend: IlpBackend | None = None,
) -> AssignmentGap:
    """Score a heuristic assignment against the exact ILP optimum.

    ``assignment`` may be a :class:`~repro.core.assignment.PathAssignment`
    or the plain ``message name -> node path`` mapping a compiled
    schedule carries (``schedule.assignment``).  ``max_paths`` must
    match the pool cap the heuristic ran with: both sides then optimise
    over the identical candidate set, so the gap is attributable to the
    search, not the pools.  ``time_limit`` bounds the branch-and-bound
    (seconds); on timeout the incumbent (an upper bound on the true
    optimum) is used and ``status`` carries the solver message, so a
    reported gap is conservative.
    """
    from repro.core.assignment import PathAssignment
    from repro.core.utilization import forced_load_matrix
    from repro.topology.routing import links_on_path

    backend = backend if backend is not None else IlpBackend()
    if not isinstance(assignment, PathAssignment):
        assignment = PathAssignment(
            topology,
            endpoints,
            {name: list(assignment[name]) for name in endpoints},
        )
    heuristic_peak = _peak_spot(bounds, assignment)

    forced = forced_load_matrix(bounds)
    lengths = np.asarray(bounds.intervals.lengths, dtype=np.float64)
    num_intervals = lengths.size

    # Variable layout: one binary per (message, candidate path), the
    # continuous peak variable z last.
    pools = {
        name: topology.minimal_path_pool(src, dst, max_paths)
        for name, (src, dst) in endpoints.items()
    }
    var_base: dict[str, int] = {}
    offset = 0
    for name, pool in pools.items():
        var_base[name] = offset
        offset += len(pool)
    z_col = offset
    num_vars = offset + 1

    # (link, interval) spot rows, allocated lazily as candidates touch
    # them; row r reads  sum forced[m, k] * x[m, p ni link] - len_k * z <= 0.
    row_of: dict[tuple[tuple[int, int], int], int] = {}
    rows: list[int] = []
    cols: list[int] = []
    values: list[float] = []
    for name, pool in pools.items():
        i = bounds.index[name]
        active = np.flatnonzero(forced[i, :num_intervals] > 0.0)
        if active.size == 0:
            continue
        for p_index, path in enumerate(pool):
            col = var_base[name] + p_index
            for link in links_on_path(path):
                for k in active:
                    row = row_of.setdefault(
                        (link, int(k)), len(row_of)
                    )
                    rows.append(row)
                    cols.append(col)
                    values.append(float(forced[i, k]))

    builder = LPProblemBuilder(num_vars)
    builder.set_objective([z_col], [1.0])
    builder.set_upper(list(range(z_col)), [1.0] * z_col)
    # One-path-per-message equalities.
    for name, pool in pools.items():
        base = var_base[name]
        builder.add_eq_rows(
            [1.0],
            rows=[0] * len(pool),
            cols=list(range(base, base + len(pool))),
            values=[1.0] * len(pool),
        )
    if row_of:
        z_rows = list(range(len(row_of)))
        z_values = [-float(lengths[k]) for (_, k), r in
                    sorted(row_of.items(), key=lambda item: item[1])]
        builder.add_ub_rows([0.0] * len(row_of))
        builder.add_ub_entries(rows, cols, values)
        builder.add_ub_entries(z_rows, [z_col] * len(row_of), z_values)
    problem = builder.build()

    integrality = np.ones(num_vars, dtype=np.int64)
    integrality[z_col] = 0
    solution = backend.solve_integer(
        problem, integrality, time_limit=time_limit
    )
    if not solution.success or solution.x.size == 0:
        return AssignmentGap(
            heuristic_peak=heuristic_peak,
            optimal_peak=float("nan"),
            gap=float("nan"),
            status=solution.message or "milp failed",
            messages=len(pools),
            variables=z_col,
            nodes=solution.iterations,
        )
    optimal_peak = float(solution.objective)
    status = "optimal" if "Optimal" in solution.message else solution.message
    if optimal_peak > 1e-9:
        gap = (heuristic_peak - optimal_peak) / optimal_peak
    else:
        gap = 0.0
    return AssignmentGap(
        heuristic_peak=heuristic_peak,
        optimal_peak=optimal_peak,
        gap=gap,
        status=status,
        messages=len(pools),
        variables=z_col,
        nodes=solution.iterations,
    )


def _peak_spot(bounds: "TimeBoundSet", assignment: "PathAssignment") -> float:
    """Peak spot ratio of a concrete assignment (the ILP's objective)."""
    from repro.core.utilization import UtilizationState

    state = UtilizationState(bounds, assignment)
    ratios = state.spot_ratios()
    return float(ratios.max()) if ratios.size else 0.0
