"""LP backends delegating to :func:`scipy.optimize.linprog`.

Two methods are exposed: ``highs`` (the default — HiGHS picks simplex or
IPM itself) and ``highs-ds`` (HiGHS dual simplex forced, the dense
fallback for problems where the automatic choice misbehaves).  scipy is
imported lazily inside :meth:`ScipyLinprogBackend._solve`, so merely
importing this module — or the solver registry — never requires scipy;
environments without it use the :mod:`~repro.solvers.reference` backend.
"""

from __future__ import annotations

from repro.solvers.base import LPProblem, LPSolution, TalliedBackend

#: linprog ``method`` values this backend accepts.
SCIPY_METHODS = ("highs", "highs-ds")


class ScipyLinprogBackend(TalliedBackend):
    """A :class:`~repro.solvers.base.LPBackend` backed by scipy's HiGHS."""

    def __init__(self, method: str = "highs") -> None:
        if method not in SCIPY_METHODS:
            raise ValueError(
                f"unknown scipy linprog method {method!r} "
                f"(expected one of {SCIPY_METHODS})"
            )
        super().__init__()
        self.name = method
        self._method = method

    def _solve(self, problem: LPProblem) -> LPSolution:
        from scipy.optimize import linprog

        result = linprog(
            problem.c,
            A_ub=problem.a_ub,
            b_ub=problem.b_ub,
            A_eq=problem.a_eq,
            b_eq=problem.b_eq,
            bounds=problem.bounds,
            method=self._method,
        )
        dual_eq = None
        if (
            result.success
            and problem.a_eq is not None
            and getattr(result, "eqlin", None) is not None
        ):
            dual_eq = tuple(float(v) for v in result.eqlin.marginals)
        x = (
            tuple(float(v) for v in result.x)
            if result.x is not None
            else ()
        )
        return LPSolution(
            success=bool(result.success),
            x=x,
            objective=float(result.fun) if result.fun is not None else 0.0,
            dual_eq=dual_eq,
            iterations=int(getattr(result, "nit", 0) or 0),
            message=str(result.message),
        )
