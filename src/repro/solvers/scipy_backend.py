"""LP backends on scipy's HiGHS: direct engine, batched, warm-startable.

Two methods are exposed: ``highs`` (the default — HiGHS picks simplex or
IPM itself) and ``highs-ds`` (HiGHS dual simplex forced).  Solves go
through :class:`repro.solvers.highs_engine.HighsEngine`, a persistent
in-process HiGHS instance configured to be bit-identical to
``scipy.optimize.linprog`` while skipping its per-call setup cost
(~2 ms/call in the compile hot loop); if the private bindings the engine
needs are unavailable, every call falls back to plain ``linprog``.

Beyond single solves the backend implements the two redesigned-API
capabilities:

- ``solve_batch`` stitches the independent problems into one
  block-diagonal HiGHS solve and de-stitches per-block primals/duals
  (objectives are exact per block by separability); a non-optimal
  stitched solve falls back to sequential solves so failing blocks get
  linprog-identical diagnostics.
- warm starts — solutions carry an opaque
  :class:`~repro.solvers.base.WarmStart` basis handle; pass it back (or
  construct the backend with ``warm_start_reuse=True`` to let it cache
  bases keyed by problem structure) and structurally identical problems
  resume from the previous optimal basis.

scipy is imported lazily, so importing this module — or the solver
registry — never requires scipy; environments without it use the
:mod:`~repro.solvers.reference` backend.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.solvers.base import (
    LPProblem,
    LPSolution,
    TalliedBackend,
    WarmStart,
)

#: linprog ``method`` values this backend accepts.
SCIPY_METHODS = ("highs", "highs-ds")


class ScipyLinprogBackend(TalliedBackend):
    """A :class:`~repro.solvers.base.LPBackend` backed by scipy's HiGHS."""

    def __init__(
        self,
        method: str = "highs",
        warm_start_reuse: bool = False,
        basis_cache: dict[tuple[int, int, int], WarmStart] | None = None,
    ) -> None:
        if method not in SCIPY_METHODS:
            raise ValueError(
                f"unknown scipy linprog method {method!r} "
                f"(expected one of {SCIPY_METHODS})"
            )
        super().__init__()
        self.name = method
        self._method = method
        self._engine: object | None = None
        self._engine_probed = False
        self._warm_reuse = warm_start_reuse
        # An injected basis cache is how warm starts survive across
        # backend instances: ``get_backend(..., warm_scope=...)`` hands
        # every backend of one structural problem family the same dict,
        # so a delta recompile (or the next matrix cell) starts from the
        # previous compile's optimal bases.  Safety is per-solve: a
        # basis is only applied when the problem's structure signature
        # matches the one it was recorded under.
        self._basis_cache: dict[tuple[int, int, int], WarmStart] = (
            basis_cache if basis_cache is not None else {}
        )

    def _get_engine(self) -> "object | None":
        if not self._engine_probed:
            self._engine_probed = True
            from repro.solvers import highs_engine

            if highs_engine.available():
                self._engine = highs_engine.HighsEngine(self._method)
        return self._engine

    def _solve(
        self, problem: LPProblem, warm_start: WarmStart | None = None
    ) -> LPSolution:
        from repro.solvers import highs_engine

        engine = self._get_engine()
        if engine is None:
            return self._solve_linprog(problem)
        assert isinstance(engine, highs_engine.HighsEngine)
        signature = highs_engine._structure_signature(problem)
        applied = warm_start
        if applied is None and self._warm_reuse:
            applied = self._basis_cache.get(signature)
        if applied is not None and applied.signature != signature:
            applied = None
        solution = engine.solve(problem, warm_start=applied)
        if applied is not None and solution.success:
            self.tally.record_warm_start()
        if self._warm_reuse and solution.warm_start is not None:
            self._basis_cache[signature] = solution.warm_start
        return solution

    def _solve_batch(
        self,
        problems: Sequence[LPProblem],
        warm_starts: Sequence[WarmStart | None] | None = None,
    ) -> list[LPSolution]:
        from repro.solvers import highs_engine

        engine = self._get_engine()
        if engine is None or len(problems) <= 1 or warm_starts is not None:
            return super()._solve_batch(problems, warm_starts)
        assert isinstance(engine, highs_engine.HighsEngine)
        stitched = engine.solve_stitched(problems)
        if stitched is None:
            # The combined model failed (some block infeasible or a
            # solver error): solve sequentially so each block carries
            # its own linprog-identical verdict and diagnostics.
            return super()._solve_batch(problems, warm_starts)
        return stitched

    def _solve_linprog(self, problem: LPProblem) -> LPSolution:
        """Fallback through public ``scipy.optimize.linprog``."""
        from scipy.optimize import linprog

        result = linprog(
            problem.c,
            A_ub=None if problem.a_ub is None else problem.a_ub.to_dense(),
            b_ub=problem.b_ub,
            A_eq=None if problem.a_eq is None else problem.a_eq.to_dense(),
            b_eq=problem.b_eq,
            bounds=problem.bounds,
            method=self._method,
        )
        dual_eq = None
        if (
            result.success
            and problem.a_eq is not None
            and getattr(result, "eqlin", None) is not None
        ):
            dual_eq = np.asarray(result.eqlin.marginals, dtype=np.float64)
        x = (
            np.asarray(result.x, dtype=np.float64)
            if result.x is not None
            else np.empty(0, dtype=np.float64)
        )
        return LPSolution(
            success=bool(result.success),
            x=x,
            objective=float(result.fun) if result.fun is not None else 0.0,
            dual_eq=dual_eq,
            iterations=int(getattr(result, "nit", 0) or 0),
            message=str(result.message),
        )
