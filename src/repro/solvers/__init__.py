"""Pluggable LP solver backends for the SR compiler.

The two LP stages of the scheduled-routing compiler (message-interval
allocation and interval scheduling) obtain their solver through
:func:`get_backend` instead of importing scipy directly:

>>> from repro.solvers import get_backend
>>> backend = get_backend("auto")   # highs when scipy exists, else reference
>>> solution = backend.solve(problem)

Backend names
-------------
``auto``
    Resolve at call time: ``highs`` when scipy is importable, otherwise
    the pure-Python ``reference`` simplex.  This is the
    ``CompilerConfig.lp_backend`` default.
``highs``
    :class:`~repro.solvers.scipy_backend.ScipyLinprogBackend` with
    scipy's automatic HiGHS choice — the fast path.
``highs-ds``
    Same backend forced to the HiGHS dual simplex.
``reference``
    :class:`~repro.solvers.reference.ReferenceSimplexBackend` — a
    deterministic numpy-only two-phase simplex for environments without
    scipy (slow, small problems only).

``get_backend`` returns a **fresh instance** each call; a backend's
:class:`~repro.solvers.base.SolverTally` therefore covers exactly one
compilation (the stages snapshot it per profiler stage).
"""

from __future__ import annotations

import importlib.util

from repro.solvers.base import (
    LP_TOL,
    LPBackend,
    LPProblem,
    LPSolution,
    SolverTally,
    TalliedBackend,
    exceeds_tolerance,
)
from repro.solvers.certificates import (
    FarkasCertificate,
    infeasibility_certificate,
)
from repro.solvers.reference import ReferenceSimplexBackend
from repro.solvers.scipy_backend import SCIPY_METHODS, ScipyLinprogBackend

__all__ = [
    "FarkasCertificate",
    "LP_TOL",
    "LPBackend",
    "LPProblem",
    "LPSolution",
    "ReferenceSimplexBackend",
    "SCIPY_METHODS",
    "ScipyLinprogBackend",
    "SolverTally",
    "TalliedBackend",
    "available_backends",
    "default_backend_name",
    "exceeds_tolerance",
    "get_backend",
    "have_scipy",
    "infeasibility_certificate",
]

#: Names accepted by :func:`get_backend`.
BACKEND_NAMES = ("auto", "highs", "highs-ds", "reference")


def have_scipy() -> bool:
    """True when scipy is importable (without importing it)."""
    return importlib.util.find_spec("scipy") is not None


def default_backend_name() -> str:
    """The concrete backend ``auto`` resolves to in this environment."""
    return "highs" if have_scipy() else "reference"


def available_backends() -> tuple[str, ...]:
    """Concrete backend names usable in this environment."""
    if have_scipy():
        return ("highs", "highs-ds", "reference")
    return ("reference",)


def get_backend(name: str = "auto") -> LPBackend:
    """Instantiate the named LP backend (see module docstring)."""
    if name == "auto":
        name = default_backend_name()
    if name in SCIPY_METHODS:
        return ScipyLinprogBackend(method=name)
    if name == "reference":
        return ReferenceSimplexBackend()
    raise ValueError(
        f"unknown LP backend {name!r} (expected one of {BACKEND_NAMES})"
    )
