"""Pluggable LP solver backends for the SR compiler.

The two LP stages of the scheduled-routing compiler (message-interval
allocation and interval scheduling) obtain their solver through
:func:`get_backend` instead of importing scipy directly:

>>> from repro.solvers import get_backend
>>> backend = get_backend("auto")   # highs when scipy exists, else reference
>>> solution = backend.solve(problem)

Problems are assembled sparsely through
:class:`~repro.solvers.base.LPProblemBuilder` (COO triplets, CSR
storage); backends additionally expose ``solve_batch`` (independent
problems stitched into one block-diagonal solve where the backend
supports it) and warm starts (``solution.warm_start`` handles, or
``get_backend(name, warm_start=True)`` for automatic basis reuse across
structurally identical problems; add ``warm_scope=<key>`` to share one
basis pool across backend instances of the same structural problem
family).  Dense matrix fields on ``solve()`` were removed after their
one-release deprecation window; build problems through
:class:`~repro.solvers.base.LPProblemBuilder` or
:meth:`~repro.solvers.base.LPProblem.from_dense`.

Backend names
-------------
``auto``
    Resolve at call time: ``highs`` when scipy is importable, otherwise
    the pure-Python ``reference`` simplex.  This is the
    ``CompilerConfig.lp_backend`` default.
``highs``
    :class:`~repro.solvers.scipy_backend.ScipyLinprogBackend` with
    scipy's automatic HiGHS choice — the fast path.
``highs-ds``
    Same backend forced to the HiGHS dual simplex.
``ilp``
    :class:`~repro.solvers.ilp_backend.IlpBackend` — HiGHS for the LP
    stages (byte-identical schedules) plus exact mixed-integer solves
    (``solve_integer``) used by the AssignPaths optimality-gap
    reference.  Requires scipy ≥ 1.9 (``scipy.optimize.milp``).
``reference``
    :class:`~repro.solvers.reference.ReferenceSimplexBackend` — a
    deterministic numpy-only two-phase simplex for environments without
    scipy (slow, small problems only).

``get_backend`` returns a **fresh instance** each call; a backend's
:class:`~repro.solvers.base.SolverTally` therefore covers exactly one
compilation (the stages snapshot it per profiler stage).
"""

from __future__ import annotations

import importlib.util

from repro.solvers.base import (
    LP_TOL,
    CSRMatrix,
    LPBackend,
    LPProblem,
    LPProblemBuilder,
    LPSolution,
    SolverTally,
    TalliedBackend,
    WarmStart,
    exceeds_tolerance,
)
from repro.solvers.certificates import (
    FarkasCertificate,
    infeasibility_certificate,
)
from repro.solvers.reference import ReferenceSimplexBackend
from repro.solvers.scipy_backend import SCIPY_METHODS, ScipyLinprogBackend

__all__ = [
    "CSRMatrix",
    "FarkasCertificate",
    "LP_TOL",
    "LPBackend",
    "LPProblem",
    "LPProblemBuilder",
    "LPSolution",
    "ReferenceSimplexBackend",
    "SCIPY_METHODS",
    "ScipyLinprogBackend",
    "SolverTally",
    "TalliedBackend",
    "WarmStart",
    "available_backends",
    "clear_warm_scopes",
    "default_backend_name",
    "exceeds_tolerance",
    "get_backend",
    "have_scipy",
    "infeasibility_certificate",
]

#: Names accepted by :func:`get_backend`.
BACKEND_NAMES = ("auto", "highs", "highs-ds", "ilp", "reference")

#: Shared warm-start basis pools, keyed by scope string (see
#: :func:`repro.cache.warm_scope_key`).  ``get_backend`` hands every
#: backend instance created under one scope the same dict, so optimal
#: bases survive across the otherwise per-compilation backend lifetime.
#: Bases are small (two int arrays per problem structure) and scopes are
#: per structural family, so the registry stays bounded in practice.
_WARM_SCOPES: dict[str, dict[tuple[int, int, int], WarmStart]] = {}


def have_scipy() -> bool:
    """True when scipy is importable (without importing it)."""
    return importlib.util.find_spec("scipy") is not None


def default_backend_name() -> str:
    """The concrete backend ``auto`` resolves to in this environment."""
    return "highs" if have_scipy() else "reference"


def available_backends() -> tuple[str, ...]:
    """Concrete backend names usable in this environment."""
    if have_scipy():
        return ("highs", "highs-ds", "ilp", "reference")
    return ("reference",)


def clear_warm_scopes() -> None:
    """Drop every shared warm-start basis pool (tests, memory pressure)."""
    _WARM_SCOPES.clear()


def get_backend(
    name: str = "auto",
    warm_start: bool = False,
    warm_scope: str | None = None,
) -> LPBackend:
    """Instantiate the named LP backend (see module docstring).

    ``warm_start=True`` asks the backend to cache optimal bases keyed by
    problem structure and reuse them for structurally identical solves
    (HiGHS backends only; the reference simplex ignores it).

    ``warm_scope`` (implies nothing without ``warm_start=True``) names a
    shared basis pool: every backend created under the same scope string
    reuses one cache, so bases survive the per-compilation backend
    lifetime — the cross-cell/delta reuse the compiler keys off
    :func:`repro.cache.warm_scope_key`.  Warm-started HiGHS solves are
    byte-identical to cold ones (pinned by property tests), so scoping
    never changes results, only wall time.
    """
    if name == "auto":
        name = default_backend_name()
    basis_cache = None
    if warm_start and warm_scope is not None:
        basis_cache = _WARM_SCOPES.setdefault(warm_scope, {})
    if name in SCIPY_METHODS:
        return ScipyLinprogBackend(
            method=name,
            warm_start_reuse=warm_start,
            basis_cache=basis_cache,
        )
    if name == "ilp":
        from repro.solvers.ilp_backend import IlpBackend

        return IlpBackend(
            warm_start_reuse=warm_start, basis_cache=basis_cache
        )
    if name == "reference":
        return ReferenceSimplexBackend()
    raise ValueError(
        f"unknown LP backend {name!r} (expected one of {BACKEND_NAMES})"
    )
