"""Pluggable LP solver backends for the SR compiler.

The two LP stages of the scheduled-routing compiler (message-interval
allocation and interval scheduling) obtain their solver through
:func:`get_backend` instead of importing scipy directly:

>>> from repro.solvers import get_backend
>>> backend = get_backend("auto")   # highs when scipy exists, else reference
>>> solution = backend.solve(problem)

Problems are assembled sparsely through
:class:`~repro.solvers.base.LPProblemBuilder` (COO triplets, CSR
storage); backends additionally expose ``solve_batch`` (independent
problems stitched into one block-diagonal solve where the backend
supports it) and warm starts (``solution.warm_start`` handles, or
``get_backend(name, warm_start=True)`` for automatic basis reuse across
structurally identical problems).  Passing dense matrix fields to
``solve()`` still works behind a one-release ``DeprecationWarning``
shim.

Backend names
-------------
``auto``
    Resolve at call time: ``highs`` when scipy is importable, otherwise
    the pure-Python ``reference`` simplex.  This is the
    ``CompilerConfig.lp_backend`` default.
``highs``
    :class:`~repro.solvers.scipy_backend.ScipyLinprogBackend` with
    scipy's automatic HiGHS choice — the fast path.
``highs-ds``
    Same backend forced to the HiGHS dual simplex.
``reference``
    :class:`~repro.solvers.reference.ReferenceSimplexBackend` — a
    deterministic numpy-only two-phase simplex for environments without
    scipy (slow, small problems only).

``get_backend`` returns a **fresh instance** each call; a backend's
:class:`~repro.solvers.base.SolverTally` therefore covers exactly one
compilation (the stages snapshot it per profiler stage).
"""

from __future__ import annotations

import importlib.util

from repro.solvers.base import (
    LP_TOL,
    CSRMatrix,
    LPBackend,
    LPProblem,
    LPProblemBuilder,
    LPSolution,
    SolverTally,
    TalliedBackend,
    WarmStart,
    exceeds_tolerance,
)
from repro.solvers.certificates import (
    FarkasCertificate,
    infeasibility_certificate,
)
from repro.solvers.reference import ReferenceSimplexBackend
from repro.solvers.scipy_backend import SCIPY_METHODS, ScipyLinprogBackend

__all__ = [
    "CSRMatrix",
    "FarkasCertificate",
    "LP_TOL",
    "LPBackend",
    "LPProblem",
    "LPProblemBuilder",
    "LPSolution",
    "ReferenceSimplexBackend",
    "SCIPY_METHODS",
    "ScipyLinprogBackend",
    "SolverTally",
    "TalliedBackend",
    "WarmStart",
    "available_backends",
    "default_backend_name",
    "exceeds_tolerance",
    "get_backend",
    "have_scipy",
    "infeasibility_certificate",
]

#: Names accepted by :func:`get_backend`.
BACKEND_NAMES = ("auto", "highs", "highs-ds", "reference")


def have_scipy() -> bool:
    """True when scipy is importable (without importing it)."""
    return importlib.util.find_spec("scipy") is not None


def default_backend_name() -> str:
    """The concrete backend ``auto`` resolves to in this environment."""
    return "highs" if have_scipy() else "reference"


def available_backends() -> tuple[str, ...]:
    """Concrete backend names usable in this environment."""
    if have_scipy():
        return ("highs", "highs-ds", "reference")
    return ("reference",)


def get_backend(name: str = "auto", warm_start: bool = False) -> LPBackend:
    """Instantiate the named LP backend (see module docstring).

    ``warm_start=True`` asks the backend to cache optimal bases keyed by
    problem structure and reuse them for structurally identical solves
    (HiGHS backends only; the reference simplex ignores it).
    """
    if name == "auto":
        name = default_backend_name()
    if name in SCIPY_METHODS:
        return ScipyLinprogBackend(method=name, warm_start_reuse=warm_start)
    if name == "reference":
        return ReferenceSimplexBackend()
    raise ValueError(
        f"unknown LP backend {name!r} (expected one of {BACKEND_NAMES})"
    )
