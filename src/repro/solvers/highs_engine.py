"""A persistent in-process driver for scipy's bundled HiGHS solver.

``scipy.optimize.linprog`` constructs a fresh ``Highs`` object, options
set and CSC copy of the model on *every* call — measured at ~2.25 ms per
call inside the compile pipeline, of which the actual simplex solve is
~0.4 ms.  The compiler's hot loop makes hundreds of LP calls per
schedule, so this module keeps **one** ``Highs`` instance alive per
backend and passes models to it directly, replicating linprog's exact
option set and model layout so solutions (primal, duals, iteration
counts) are bit-identical to what ``linprog(method="highs")`` returns.

On top of the single-solve path it adds the two capabilities the
redesigned :mod:`repro.solvers` API exposes:

- :meth:`HighsEngine.solve_stitched` — several independent LPs stitched
  into one block-diagonal model, solved in a single HiGHS call and
  de-stitched into per-block :class:`~repro.solvers.base.LPSolution`
  values.  By separability each block's objective value is exactly the
  block's own optimum (the block may sit at a different optimal vertex
  than a standalone solve would pick — callers that need a specific
  vertex solve sequentially).
- warm starts — an optimal solve returns its simplex basis as an opaque
  :class:`~repro.solvers.base.WarmStart`; passing it back for a
  structurally identical problem seeds ``Highs.setBasis`` so the solver
  resumes from that basis (typically 0 iterations when only the RHS or
  bounds moved slightly).

Everything here degrades gracefully: :func:`available` is False when
scipy (or its private ``_highspy`` layout) is missing, and
:class:`~repro.solvers.scipy_backend.ScipyLinprogBackend` falls back to
plain ``linprog`` calls.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.solvers.base import (
    CSRMatrix,
    LPProblem,
    LPSolution,
    WarmStart,
    failure_solution,
)

_API: dict[str, Any] | None = None
_UNAVAILABLE = False


def _api() -> dict[str, Any] | None:
    """Lazily import scipy's private HiGHS bindings (None if absent)."""
    global _API, _UNAVAILABLE
    if _API is not None:
        return _API
    if _UNAVAILABLE:
        return None
    try:
        from scipy.optimize._highspy import _core as hc
        from scipy.optimize._linprog_highs import (
            _highs_to_scipy_status_message,
        )

        _API = {
            "hc": hc,
            "simplex_constants": hc.simplex_constants,
            "status_message": _highs_to_scipy_status_message,
            "inf": float(hc.kHighsInf),
        }
    except Exception:  # pragma: no cover - exercised in no-scipy CI job
        _UNAVAILABLE = True
        return None
    return _API


def available() -> bool:
    """True when the direct HiGHS bindings can be imported."""
    return _api() is not None


def _structure_signature(problem: LPProblem) -> tuple[int, int, int]:
    """(columns, ub rows, eq rows) — what a warm basis must match."""
    m_ub = 0 if problem.b_ub is None else len(problem.b_ub)
    m_eq = 0 if problem.b_eq is None else len(problem.b_eq)
    return (problem.num_variables, m_ub, m_eq)


def _block_coo(
    problem: LPProblem, row_offset: int, col_offset: int, m_ub_local: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """COO triplets of one problem's stacked [A_ub; A_eq] block, with
    the ub rows first (linprog's row order) and global offsets applied."""
    parts_r: list[np.ndarray] = []
    parts_c: list[np.ndarray] = []
    parts_v: list[np.ndarray] = []
    if problem.a_ub is not None:
        r, c, v = problem.a_ub.coo()
        parts_r.append(r + row_offset)
        parts_c.append(c + col_offset)
        parts_v.append(v)
    if problem.a_eq is not None:
        r, c, v = problem.a_eq.coo()
        parts_r.append(r + row_offset + m_ub_local)
        parts_c.append(c + col_offset)
        parts_v.append(v)
    if not parts_r:
        empty_i = np.empty(0, dtype=np.int64)
        return empty_i, empty_i, np.empty(0, dtype=np.float64)
    return (
        np.concatenate(parts_r),
        np.concatenate(parts_c),
        np.concatenate(parts_v),
    )


class HighsEngine:
    """One persistent ``Highs`` instance with linprog-equivalent options.

    ``method`` is either ``"highs"`` (let HiGHS choose the solver, what
    ``linprog(method="highs")`` does) or ``"highs-ds"`` (force dual
    simplex).  Not thread-safe — each backend instance owns its engine.
    """

    def __init__(self, method: str) -> None:
        api = _api()
        if api is None:
            raise RuntimeError("scipy HiGHS bindings are not available")
        hc = api["hc"]
        self._hc = hc
        self._inf = api["inf"]
        self._status_message = api["status_message"]
        self._highs = hc._Highs()
        # Replicate linprog's effective option set exactly (bools that
        # HiGHS models as strings, the dual-simplex strategy default,
        # silenced logging); `highs-ds` additionally pins the solver.
        options = hc.HighsOptions()
        options.presolve = "on"
        options.highs_debug_level = hc.HighsDebugLevel.kHighsDebugLevelNone
        options.log_to_console = False
        options.output_flag = False
        options.simplex_strategy = (
            api["simplex_constants"].SimplexStrategy.kSimplexStrategyDual
        )
        if method == "highs-ds":
            options.solver = "simplex"
        self._highs.passOptions(options)

    # -- model assembly ------------------------------------------------

    def _pass_model(
        self,
        c: np.ndarray,
        bounds: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        lhs: np.ndarray,
        rhs: np.ndarray,
    ) -> None:
        hc = self._hc
        num_col = int(c.size)
        num_row = int(rhs.size)
        # CSC layout (sorted by column, then row), int32 indices — the
        # same canonical structure scipy's csc_array hands linprog.
        order = np.lexsort((rows, cols))
        csc_rows = rows[order].astype(np.int32)
        csc_vals = values[order]
        counts = np.bincount(cols, minlength=num_col)
        indptr = np.zeros(num_col + 1, dtype=np.int32)
        indptr[1:] = np.cumsum(counts)
        lb = np.where(np.isinf(bounds[:, 0]), -self._inf, bounds[:, 0])
        ub = np.where(np.isinf(bounds[:, 1]), self._inf, bounds[:, 1])
        lhs = np.where(np.isneginf(lhs), -self._inf, lhs)
        rhs = np.where(np.isposinf(rhs), self._inf, rhs)
        lp = hc.HighsLp()
        lp.num_col_ = num_col
        lp.num_row_ = num_row
        lp.a_matrix_.num_col_ = num_col
        lp.a_matrix_.num_row_ = num_row
        lp.a_matrix_.format_ = hc.MatrixFormat.kColwise
        lp.col_cost_ = c
        lp.col_lower_ = lb
        lp.col_upper_ = ub
        lp.row_lower_ = lhs
        lp.row_upper_ = rhs
        lp.a_matrix_.start_ = indptr
        lp.a_matrix_.index_ = csc_rows
        lp.a_matrix_.value_ = csc_vals
        self._highs.clearModel()
        self._highs.clearSolver()
        self._highs.passModel(lp)

    def _run(self) -> tuple[bool, Any, str, int]:
        highs = self._highs
        highs.run()
        model_status = highs.getModelStatus()
        ok = model_status == self._hc.HighsModelStatus.kOptimal
        info = highs.getInfo()
        # Compose the raw message the way scipy's wrapper does (plain
        # status string on success, status+primal detail otherwise) so
        # the scipy-level translation yields linprog's exact text.
        if ok:
            raw = highs.modelStatusToString(model_status)
        else:
            raw = (
                "model_status is "
                f"{highs.modelStatusToString(model_status)}; "
                "primal_status is "
                f"{highs.solutionStatusToString(info.primal_solution_status)}"
            )
        message = str(self._status_message(model_status, raw)[1])
        iterations = max(
            int(info.simplex_iteration_count), int(info.ipm_iteration_count)
        )
        return ok, info, message, max(iterations, 0)

    # -- single solve --------------------------------------------------

    def solve(
        self,
        problem: LPProblem,
        warm_start: WarmStart | None = None,
        capture_basis: bool = True,
    ) -> LPSolution:
        """Solve one canonical problem; bit-identical to linprog."""
        signature = _structure_signature(problem)
        n, m_ub, m_eq = signature
        rows, cols, values = _block_coo(problem, 0, 0, m_ub)
        lhs = np.concatenate(
            (
                np.full(m_ub, -np.inf),
                np.empty(0) if problem.b_eq is None else problem.b_eq,
            )
        )
        rhs = np.concatenate(
            (
                np.empty(0) if problem.b_ub is None else problem.b_ub,
                np.empty(0) if problem.b_eq is None else problem.b_eq,
            )
        )
        self._pass_model(
            np.asarray(problem.c, dtype=np.float64),
            problem.bounds,
            rows,
            cols,
            values,
            lhs,
            rhs,
        )
        applied_warm = False
        if (
            warm_start is not None
            and warm_start.signature == signature
            and warm_start.payload is not None
        ):
            self._highs.setBasis(warm_start.payload)
            applied_warm = True
        ok, info, message, iterations = self._run()
        if not ok:
            if applied_warm:
                # A stale basis can stall the solver; retry cold before
                # reporting failure so warm starts never change verdicts.
                self._highs.clearSolver()
                ok, info, message, iterations = self._run()
            if not ok:
                return failure_solution(message, iterations)
        solution = self._highs.getSolution()
        x = np.array(solution.col_value, dtype=np.float64)
        dual_rows = np.array(solution.row_dual, dtype=np.float64)
        handle: WarmStart | None = None
        if capture_basis:
            basis = self._highs.getBasis()
            if basis.valid:
                handle = WarmStart(
                    backend="highs", signature=signature, payload=basis
                )
        return LPSolution(
            success=True,
            x=x,
            objective=float(info.objective_function_value),
            dual_eq=dual_rows[m_ub:] if m_eq else np.empty(0),
            iterations=iterations,
            message=message,
            warm_start=handle,
        )

    # -- stitched batch solve ------------------------------------------

    def solve_stitched(
        self, problems: Sequence[LPProblem]
    ) -> list[LPSolution] | None:
        """Solve independent problems as one block-diagonal model.

        Returns per-block solutions (primal slice, equality duals,
        per-block objective recomputed as ``c_i @ x_i``), or ``None``
        when the combined model is not optimal — the caller then falls
        back to sequential solves so the failing block is identified
        with linprog-identical diagnostics.
        """
        col_offsets: list[int] = []
        row_offsets: list[int] = []
        signatures = [_structure_signature(p) for p in problems]
        col_base = row_base = 0
        for n, m_ub, m_eq in signatures:
            col_offsets.append(col_base)
            row_offsets.append(row_base)
            col_base += n
            row_base += m_ub + m_eq
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        lhs_parts: list[np.ndarray] = []
        rhs_parts: list[np.ndarray] = []
        for problem, (n, m_ub, m_eq), c_off, r_off in zip(
            problems, signatures, col_offsets, row_offsets
        ):
            r, c, v = _block_coo(problem, r_off, c_off, m_ub)
            rows_parts.append(r)
            cols_parts.append(c)
            vals_parts.append(v)
            if m_ub:
                lhs_parts.append(np.full(m_ub, -np.inf))
                rhs_parts.append(np.asarray(problem.b_ub, dtype=np.float64))
            if m_eq:
                b_eq = np.asarray(problem.b_eq, dtype=np.float64)
                lhs_parts.append(b_eq)
                rhs_parts.append(b_eq)
        c_all = np.concatenate(
            [np.asarray(p.c, dtype=np.float64) for p in problems]
        )
        bounds_all = np.concatenate([p.bounds for p in problems])
        self._pass_model(
            c_all,
            bounds_all,
            np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64),
            np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64),
            np.concatenate(vals_parts) if vals_parts else np.empty(0),
            np.concatenate(lhs_parts) if lhs_parts else np.empty(0),
            np.concatenate(rhs_parts) if rhs_parts else np.empty(0),
        )
        ok, info, message, iterations = self._run()
        if not ok:
            return None
        solution = self._highs.getSolution()
        x_all = np.array(solution.col_value, dtype=np.float64)
        dual_all = np.array(solution.row_dual, dtype=np.float64)
        out: list[LPSolution] = []
        for problem, (n, m_ub, m_eq), c_off, r_off in zip(
            problems, signatures, col_offsets, row_offsets
        ):
            x = x_all[c_off : c_off + n]
            duals = dual_all[r_off + m_ub : r_off + m_ub + m_eq]
            out.append(
                LPSolution(
                    success=True,
                    x=x,
                    objective=float(
                        np.asarray(problem.c, dtype=np.float64) @ x
                    ),
                    dual_eq=duals if m_eq else np.empty(0),
                    # Iterations are a property of the combined solve;
                    # attribute them to the first block so tallies sum
                    # to the true count.
                    iterations=iterations if not out else 0,
                    message=message,
                )
            )
        return out
