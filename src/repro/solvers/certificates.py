"""Farkas infeasibility certificates for standard-form LPs.

By Farkas' lemma (variant for mixed systems), the system

    A_eq x = b,   A_ub x <= h,   l <= x <= u

is infeasible **iff** there exist multipliers ``lambda`` (free, one per
equality row), ``mu >= 0`` (one per inequality row) and ``nu >= 0`` (one
per finite upper bound) with, after shifting ``x`` by ``l``,

    A_eq' lambda - A_ub' mu - nu <= 0   (componentwise, transposed)
    lambda . b' - mu . h' - nu . u' > 0

— a non-negative combination of the constraints that proves a
contradiction.  The certificate *names* the constraints that conflict:
rows with non-zero multipliers are the infeasible core, which is exactly
what :mod:`repro.diagnose` translates into human-readable refutations.

Neither HiGHS-via-scipy nor the reference simplex exposes an
infeasibility ray directly, so the extraction is backend-agnostic: the
multipliers are themselves the solution of an *auxiliary* LP (maximise
the violation subject to the sign conditions, box-normalised so the
problem is bounded), solved with whichever backend the caller uses for
the primal.  The returned certificate is verified numerically before it
is accepted — a certificate is a proof object, never a solver's word.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.base import LP_TOL, LPBackend, LPProblem, LPProblemBuilder

__all__ = ["FarkasCertificate", "infeasibility_certificate"]


def _shifted_arrays(
    problem: LPProblem,
) -> tuple[
    np.ndarray | None,
    np.ndarray | None,
    np.ndarray | None,
    np.ndarray | None,
    np.ndarray,
    np.ndarray,
]:
    """Problem data with variable lows shifted to zero.

    Returns ``(a_eq, b_eq, a_ub, b_ub, upper_indices, uppers)`` where
    the right-hand sides absorb the lower bounds and ``uppers`` are the
    shifted finite upper bounds of the variables in ``upper_indices``.
    """
    problem = problem.canonical()
    n = problem.num_variables
    bounds = problem.bounds
    lows = bounds[:, 0].astype(float)
    finite_upper = np.isfinite(bounds[:, 1])
    upper_idx = np.flatnonzero(finite_upper)
    uppers = bounds[upper_idx, 1] - lows[upper_idx]
    a_eq = problem.a_eq.to_dense() if problem.a_eq is not None else None
    b_eq = (
        np.asarray(problem.b_eq, dtype=float) - a_eq @ lows
        if a_eq is not None
        else None
    )
    a_ub = problem.a_ub.to_dense() if problem.a_ub is not None else None
    b_ub = (
        np.asarray(problem.b_ub, dtype=float) - a_ub @ lows
        if a_ub is not None
        else None
    )
    return a_eq, b_eq, a_ub, b_ub, upper_idx.astype(int), uppers


@dataclass(frozen=True)
class FarkasCertificate:
    """A verified proof that an :class:`LPProblem` has no feasible point.

    Attributes
    ----------
    dual_eq:
        Multiplier per equality row (free sign).
    dual_ub:
        Multiplier per inequality row (non-negative).
    dual_upper:
        Multiplier per *finite variable upper bound*, aligned with
        ``upper_indices`` (non-negative).
    upper_indices:
        Variable indices whose upper bounds carry multipliers.
    violation:
        The certified gap ``lambda.b - mu.h - nu.u > 0`` (in the
        lower-bound-shifted frame); any feasible point would force this
        to be ``<= 0``.
    """

    dual_eq: tuple[float, ...]
    dual_ub: tuple[float, ...]
    dual_upper: tuple[float, ...]
    upper_indices: tuple[int, ...]
    violation: float

    def verify(self, problem: LPProblem, tol: float = 1e-6) -> bool:
        """Re-check the Farkas conditions against the problem data."""
        a_eq, b_eq, a_ub, b_ub, upper_idx, uppers = _shifted_arrays(problem)
        n = problem.num_variables
        combo = np.zeros(n)
        gap = 0.0
        if a_eq is not None:
            lam = np.asarray(self.dual_eq)
            combo += a_eq.T @ lam
            gap += float(lam @ b_eq)
        if a_ub is not None:
            mu = np.asarray(self.dual_ub)
            if (mu < -tol).any():
                return False
            combo -= a_ub.T @ mu
            gap -= float(mu @ b_ub)
        nu = np.asarray(self.dual_upper)
        if nu.size:
            if (nu < -tol).any() or nu.size != uppers.size:
                return False
            if tuple(int(j) for j in upper_idx) != self.upper_indices:
                return False
            combo[upper_idx] -= nu
            gap -= float(nu @ uppers)
        return bool(combo.max(initial=0.0) <= tol and gap > tol)


def infeasibility_certificate(
    problem: LPProblem,
    backend: LPBackend,
    tol: float = LP_TOL,
) -> FarkasCertificate | None:
    """Extract and verify a Farkas certificate for an infeasible LP.

    Returns ``None`` when no certificate clears the tolerance — either
    the problem is feasible, or it is too marginally infeasible to
    prove at this precision (callers must treat ``None`` as "no
    verdict", never as "feasible").
    """
    problem = problem.canonical()
    a_eq, b_eq, a_ub, b_ub, upper_idx, uppers = _shifted_arrays(problem)
    n = problem.num_variables
    m_eq = 0 if b_eq is None else len(b_eq)
    m_ub = 0 if b_ub is None else len(b_ub)
    m_up = len(upper_idx)
    total = m_eq + m_ub + m_up
    if total == 0:
        return None

    # Aux LP over (lambda, mu, nu): maximise lambda.b - mu.h - nu.u
    # subject to A_eq^T lambda - A_ub^T mu - nu <= 0, with the box
    # normalisation |lambda| <= 1, 0 <= mu, nu <= 1 keeping it bounded.
    c = np.zeros(total)
    if m_eq:
        c[:m_eq] = -b_eq  # minimise the negated objective
    if m_ub:
        c[m_eq : m_eq + m_ub] = b_ub
    if m_up:
        c[m_eq + m_ub :] = uppers

    # The aux constraint matrix is the transposed primal data, assembled
    # as triplets: a COO entry (i, j, v) of A_eq becomes (j, i, v) here,
    # one of A_ub becomes (j, m_eq + i, -v).
    builder = LPProblemBuilder(total)
    builder.set_objective_vector(c)
    if m_eq:
        builder.set_lower(np.arange(m_eq), np.full(m_eq, -1.0))
    builder.set_upper(np.arange(total), np.ones(total))
    builder.add_ub_rows(np.zeros(n))
    if problem.a_eq is not None:
        r, cc, v = problem.a_eq.coo()
        builder.add_ub_entries(cc, r, v)
    if problem.a_ub is not None:
        r, cc, v = problem.a_ub.coo()
        builder.add_ub_entries(cc, m_eq + r, -v)
    if m_up:
        builder.add_ub_entries(
            upper_idx,
            m_eq + m_ub + np.arange(m_up),
            np.full(m_up, -1.0),
        )
    solution = backend.solve(builder.build())
    if not solution.success:
        return None
    violation = -float(solution.objective)
    if violation <= tol:
        return None
    x = np.asarray(solution.x)
    certificate = FarkasCertificate(
        dual_eq=tuple(float(v) for v in x[:m_eq]),
        dual_ub=tuple(float(v) for v in x[m_eq : m_eq + m_ub]),
        dual_upper=tuple(float(v) for v in x[m_eq + m_ub :]),
        upper_indices=tuple(int(j) for j in upper_idx),
        violation=violation,
    )
    if not certificate.verify(problem):
        return None
    return certificate
