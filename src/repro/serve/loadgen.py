"""Seeded load generator and latency benchmark for the farm.

Drives a real (socket-level) farm with a deterministic mixed workload
of four request classes:

``cold``
    Distinct feasible instances no cache has seen — each pays one full
    scheduled-routing compilation.
``duplicate``
    Exact repeats of the cold instances — the single-flight/dedup and
    cache fast paths must answer these in milliseconds.
``refuted``
    Statically hopeless instances (high-load DVB-16 on the 6-cube at
    B=64) — admission control must turn these away without ever
    occupying a worker.
``malformed``
    Broken payloads (unknown topology, out-of-range load, bogus config
    keys) — the farm must answer 400, never 5xx.

The run is two-phased: the cold instances are compiled first (so the
caches are warm and attributable), then a seeded shuffle of the
remaining mix is replayed by ``threads`` concurrent clients.  The
report pins per-class p50/p99 latency, throughput, cache hit rate and
admission-reject rate — the numbers ``BENCH_serve.json`` and the CI
smoke gate quote.

Run standalone against a self-hosted farm::

    python -m repro.serve.loadgen --total 10000 --workers 2 \\
        --out BENCH_serve.json --min-hit-rate 0.9 --max-5xx 0
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.serve.client import ServeClient

__all__ = [
    "build_mix",
    "cold_payloads",
    "malformed_payloads",
    "refuted_payloads",
    "run_load",
]

COLD = "cold"
DUPLICATE = "duplicate"
REFUTED = "refuted"
MALFORMED = "malformed"


def cold_payloads(count: int = 6) -> list[dict[str, Any]]:
    """``count`` distinct, feasible, fast-to-compile instances.

    Small DVB workloads at B=128 bytes/us and low load: every one
    compiles in well under a second yet runs the full LP pipeline, so
    cold latency is honest compiler work.
    """
    instances = []
    for models in (3, 4, 5, 6):
        for load in (0.2, 0.25, 0.3):
            instances.append(
                {
                    "kind": "compile",
                    "topology": "hypercube6",
                    "bandwidth": 128.0,
                    "models": models,
                    "load": load,
                    "seed": 0,
                }
            )
    if count > len(instances):
        raise ValueError(
            f"at most {len(instances)} distinct cold instances available"
        )
    return instances[:count]


def refuted_payloads(count: int = 4) -> list[dict[str, Any]]:
    """Instances the static diagnoser refutes outright.

    DVB-16 at B=64 and full load saturates forced links on the 6-cube
    (window/link-overload certificates); varying the seed makes each a
    distinct request identity while sharing one cached diagnosis —
    which is exactly the admission-cache path under test.
    """
    return [
        {
            "kind": "compile",
            "topology": "hypercube6",
            "bandwidth": 64.0,
            "models": 16,
            "load": 1.0,
            "seed": seed,
        }
        for seed in range(count)
    ]


def malformed_payloads() -> list[dict[str, Any]]:
    """Payload shapes the farm must 400 (and never 5xx)."""
    return [
        {"topology": "notamachine", "load": 0.5},
        {"topology": "hypercube6"},  # missing load
        {"topology": "hypercube6", "load": 2.0},
        {"topology": "hypercube6", "load": 0.5, "kind": "destroy"},
        {"topology": "hypercube6", "load": 0.5, "config": {"bogus": 1}},
        {"topology": "hypercube6", "load": 0.5, "models": -3},
    ]


def build_mix(
    total: int,
    seed: int,
    cold: list[dict[str, Any]],
    refuted_share: float = 0.10,
    malformed_share: float = 0.02,
) -> list[tuple[str, dict[str, Any]]]:
    """The seeded mixed-phase request list (everything after cold).

    Deterministic in ``seed``: same seed, same total → byte-identical
    request sequence, which is what makes warm-replay comparisons and
    CI smoke-gate numbers reproducible.
    """
    rng = random.Random(seed)
    remaining = total - len(cold)
    if remaining < 0:
        raise ValueError(f"total {total} below cold-set size {len(cold)}")
    n_refuted = int(remaining * refuted_share)
    n_malformed = int(remaining * malformed_share)
    n_duplicate = remaining - n_refuted - n_malformed
    refuted = refuted_payloads()
    malformed = malformed_payloads()
    mix: list[tuple[str, dict[str, Any]]] = []
    mix.extend(
        (DUPLICATE, rng.choice(cold)) for _ in range(n_duplicate)
    )
    mix.extend((REFUTED, rng.choice(refuted)) for _ in range(n_refuted))
    mix.extend(
        (MALFORMED, malformed[i % len(malformed)])
        for i in range(n_malformed)
    )
    rng.shuffle(mix)
    return mix


@dataclass
class _Record:
    cls: str
    status: int
    ms: float
    state: str


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _one_request(client: ServeClient, cls: str,
                 payload: dict[str, Any]) -> _Record:
    start = time.perf_counter()
    status, body = client.submit(payload, wait=True)
    elapsed = (time.perf_counter() - start) * 1000.0
    return _Record(cls, status, elapsed, str(body.get("state", "")))


def _drive(host: str, port: int,
           work: list[tuple[str, dict[str, Any]]],
           threads: int,
           progress: Callable[[str], None] | None = None) -> list[_Record]:
    """Replay ``work`` in order across ``threads`` keep-alive clients."""
    records: list[_Record] = [None] * len(work)  # type: ignore[list-item]
    cursor = {"next": 0}
    lock = threading.Lock()

    def runner() -> None:
        with ServeClient(host, port) as client:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(work):
                        return
                    cursor["next"] = index + 1
                cls, payload = work[index]
                records[index] = _one_request(client, cls, payload)
                if progress and index and index % 2000 == 0:
                    progress(f"  ... {index}/{len(work)} requests")

    pool = [
        threading.Thread(target=runner, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, threads))
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return records


def _class_summary(records: list[_Record], cls: str) -> dict[str, Any]:
    latencies = [r.ms for r in records if r.cls == cls]
    return {
        "count": len(latencies),
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "mean_ms": round(
            sum(latencies) / len(latencies) if latencies else 0.0, 3
        ),
        "max_ms": round(max(latencies, default=0.0), 3),
    }


def _histogram(records: list[_Record]) -> list[dict[str, Any]]:
    """Log-spaced latency buckets (CI artifact)."""
    edges = [0.5 * (2 ** i) for i in range(16)]  # 0.5ms .. ~16s
    buckets = [0] * (len(edges) + 1)
    for record in records:
        for i, edge in enumerate(edges):
            if record.ms <= edge:
                buckets[i] += 1
                break
        else:
            buckets[-1] += 1
    rows = []
    lower = 0.0
    for edge, count in zip(edges, buckets):
        rows.append({"le_ms": edge, "gt_ms": lower, "count": count})
        lower = edge
    rows.append({"le_ms": None, "gt_ms": lower, "count": buckets[-1]})
    return rows


def run_load(
    host: str,
    port: int,
    total: int = 10_000,
    seed: int = 0,
    threads: int = 8,
    cold_count: int = 6,
    replays: int = 1,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the full two-phase benchmark; returns the report dict.

    ``replays > 1`` repeats the mixed phase (same seeded sequence) —
    the warm-replay mode the CI smoke job uses to assert the cache
    serves a re-run almost entirely.  ``total`` counts one replay's
    requests; the report's ``total_requests`` covers all phases.
    """
    say = progress or (lambda _line: None)
    cold = cold_payloads(cold_count)

    say(f"phase 1: compiling {len(cold)} cold instance(s)")
    cold_records = _drive(
        host, port, [(COLD, payload) for payload in cold], threads=2
    )
    for record in cold_records:
        if record.status != 200 or record.state != "done":
            raise RuntimeError(
                f"cold instance did not compile: HTTP {record.status}, "
                f"state {record.state!r}"
            )

    mix = build_mix(total, seed, cold)
    mixed_records: list[_Record] = []
    mixed_seconds = 0.0
    for replay in range(max(1, replays)):
        say(
            f"phase 2 (replay {replay + 1}/{replays}): "
            f"{len(mix)} mixed requests on {threads} thread(s)"
        )
        phase_start = time.perf_counter()
        mixed_records.extend(
            _drive(host, port, mix, threads, progress=progress)
        )
        mixed_seconds += time.perf_counter() - phase_start

    records = cold_records + mixed_records
    with ServeClient(host, port) as client:
        server_stats = client.stats()

    n_5xx = sum(1 for r in records if r.status >= 500)
    n_4xx = sum(1 for r in records if 400 <= r.status < 500)
    rejected = sum(1 for r in records if r.state == "rejected")
    accepted = len(records) - sum(1 for r in records if r.cls == MALFORMED)
    service = server_stats.get("service", {})
    submitted = max(1, service.get("submitted", accepted))
    hits = service.get("fast_hits", 0) + service.get("coalesced", 0)

    classes = {
        cls: _class_summary(records, cls)
        for cls in (COLD, DUPLICATE, REFUTED, MALFORMED)
    }
    cold_p99 = classes[COLD]["p99_ms"] or 1.0
    report = {
        "workload": {
            "total_requests": len(records),
            "mixed_requests": len(mixed_records),
            "seed": seed,
            "threads": threads,
            "replays": max(1, replays),
            "cold_instances": len(cold),
            "mix_counts": {
                cls: sum(1 for r in records if r.cls == cls)
                for cls in (COLD, DUPLICATE, REFUTED, MALFORMED)
            },
        },
        "latency_ms": classes,
        "throughput_rps": round(
            len(mixed_records) / mixed_seconds if mixed_seconds else 0.0, 1
        ),
        "mixed_phase_seconds": round(mixed_seconds, 3),
        "cache_hit_rate": round(hits / submitted, 4),
        "admission_reject_rate": round(rejected / max(1, accepted), 4),
        "duplicate_p99_over_cold_p99": round(
            classes[DUPLICATE]["p99_ms"] / cold_p99, 4
        ),
        "http_4xx": n_4xx,
        "http_5xx": n_5xx,
        "histogram": _histogram(records),
        "server": server_stats,
    }
    return report


def check_gates(report: dict[str, Any], min_hit_rate: float | None,
                max_5xx: int | None,
                max_dup_cold_ratio: float | None) -> list[str]:
    """CI gate evaluation; returns human-readable violations."""
    violations = []
    if min_hit_rate is not None and report["cache_hit_rate"] < min_hit_rate:
        violations.append(
            f"cache hit rate {report['cache_hit_rate']:.4f} "
            f"< required {min_hit_rate}"
        )
    if max_5xx is not None and report["http_5xx"] > max_5xx:
        violations.append(
            f"{report['http_5xx']} 5xx responses (allowed {max_5xx})"
        )
    ratio = report["duplicate_p99_over_cold_p99"]
    if max_dup_cold_ratio is not None and ratio > max_dup_cold_ratio:
        violations.append(
            f"duplicate p99 is {ratio:.3f}x cold p99 "
            f"(must be <= {max_dup_cold_ratio})"
        )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark a repro.serve farm with a seeded mixed load"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="existing farm to target; 0 boots a private one",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the self-hosted farm")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory for the self-hosted farm")
    parser.add_argument("--total", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--cold", type=int, default=6)
    parser.add_argument("--replays", type=int, default=1)
    parser.add_argument("--out", default=None, help="write the JSON report")
    parser.add_argument("--histogram-out", default=None,
                        help="write only the latency histogram (CI artifact)")
    parser.add_argument("--min-hit-rate", type=float, default=None)
    parser.add_argument("--max-5xx", type=int, default=None)
    parser.add_argument("--max-dup-cold-ratio", type=float, default=None)
    args = parser.parse_args(argv)

    server = None
    host, port = args.host, args.port
    try:
        if port == 0:
            from repro.serve.runner import ServerThread
            from repro.serve.service import ServeConfig

            print(f"booting private farm (workers={args.workers})")
            server = ServerThread(
                ServeConfig(workers=args.workers, cache_dir=args.cache_dir)
            ).start()
            host, port = "127.0.0.1", server.port
        report = run_load(
            host,
            port,
            total=args.total,
            seed=args.seed,
            threads=args.threads,
            cold_count=args.cold,
            replays=args.replays,
            progress=print,
        )
    finally:
        if server is not None:
            server.stop()

    print(json.dumps(
        {k: v for k, v in report.items() if k not in ("histogram", "server")},
        indent=2, sort_keys=True,
    ))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.out}")
    if args.histogram_out:
        with open(args.histogram_out, "w", encoding="utf-8") as handle:
            json.dump(report["histogram"], handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"histogram written to {args.histogram_out}")

    violations = check_gates(
        report, args.min_hit_rate, args.max_5xx, args.max_dup_cold_ratio
    )
    for violation in violations:
        print(f"GATE VIOLATION: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
