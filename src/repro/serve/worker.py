"""Worker-process side of the compile farm.

:func:`execute_request` is the single entry point a
:class:`~repro.pool.GracefulPool` worker runs.  It is deliberately a
module-level function over plain-JSON payloads: task dicts in, result
dicts out, so nothing but builtins crosses the process boundary (no
pickled schedules, no live topology objects).

Each worker process keeps **one** :class:`~repro.cache.ScheduleCache`
per cache directory for its whole life (:func:`_cache_for`): the memory
tier warms up across tasks, while the shared disk tier makes results
visible to the service front-end and to sibling workers.  Per-task
cache-counter deltas (:meth:`~repro.cache.CacheStats.since`) ride back
on every result so the service can aggregate totals that sum correctly.

Stage-level progress is spooled, not returned: when the task names a
``spool`` path, a :class:`~repro.trace.profile.CompileProfiler` with an
``on_enter`` callback appends one JSON line per compiler stage as it
starts, and the service tails that file to stream live progress to
clients while the compilation is still running.
"""

from __future__ import annotations

import json
from typing import IO, Any, Mapping

from repro.cache import ScheduleCache
from repro.core.compiler import compile_schedule
from repro.core.pipeline import verdict_code
from repro.errors import SchedulingError
from repro.experiments.setup import ExperimentSetup, standard_setup
from repro.mapping.allocation import (
    bfs_allocation,
    random_allocation,
    sequential_allocation,
)
from repro.serve.jobs import JobRequest
from repro.tfg import dvb_tfg
from repro.topology import make_topology
from repro.trace.profile import CompileProfiler

__all__ = ["build_setup", "execute_request"]

#: One long-lived cache per (process, cache directory).
_CACHES: dict[str, ScheduleCache] = {}


def _cache_for(cache_dir: str | None) -> ScheduleCache | None:
    if cache_dir is None:
        return None
    cache = _CACHES.get(cache_dir)
    if cache is None:
        cache = _CACHES[cache_dir] = ScheduleCache(cache_dir)
    return cache


def _allocator(request: JobRequest) -> Any:
    """The placement function a request names (mirrors the CLI)."""
    if request.allocator == "sequential":
        return sequential_allocation
    if request.allocator == "bfs":
        return bfs_allocation
    if request.allocator == "random":
        return lambda tfg, topo: random_allocation(tfg, topo, request.seed)
    from repro.mapping.annealing import annealed_allocation

    return lambda tfg, topo: annealed_allocation(tfg, topo, seed=request.seed)


def build_setup(request: JobRequest) -> tuple[ExperimentSetup, float]:
    """Materialize the problem instance a request names.

    Deterministic: the same request always yields the same (timing,
    topology, allocation, tau_in), which is what lets the service
    compute cache keys in the front-end while workers rebuild the
    identical instance on their side.
    """
    setup = standard_setup(
        dvb_tfg(request.models),
        make_topology(request.topology),
        request.bandwidth,
        allocator=_allocator(request),
    )
    return setup, setup.tau_in_for_load(request.load)


class _Spool:
    """Append-only JSON-lines progress writer (one line per event).

    Lines are flushed immediately so the service can tail the file
    while the compilation runs.  Write failures are swallowed: progress
    is best-effort and must never abort the stage it observes (the
    profiler-callback contract).
    """

    def __init__(self, path: str | None) -> None:
        self._handle: IO[str] | None = None
        if path is not None:
            try:
                self._handle = open(path, "a", encoding="utf-8")
            except OSError:
                self._handle = None

    def emit(self, event: str, **args: Any) -> None:
        if self._handle is None:
            return
        try:
            payload: dict[str, Any] = {"event": event}
            payload.update(args)
            self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
            self._handle.flush()
        except (OSError, TypeError, ValueError):  # pragma: no cover
            self._handle = None

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None


def _compile_result(
    request: JobRequest,
    setup: ExperimentSetup,
    tau_in: float,
    cache: ScheduleCache | None,
    spool: _Spool,
) -> dict[str, Any]:
    """Run a ``compile`` (or the compile half of a ``check``) task."""
    profiler = CompileProfiler(
        on_enter=lambda name, detail: spool.emit(
            "stage", stage=name, **detail
        ),
        on_stage=lambda sp: spool.emit(
            "stage-done", stage=sp.stage, wall_ms=round(sp.wall_ms, 3)
        ),
    )
    try:
        routing = compile_schedule(
            setup.timing,
            setup.topology,
            setup.allocation,
            tau_in,
            request.compiler_config(),
            profiler=profiler,
            cache=cache,
        )
    except SchedulingError as error:
        return {
            "feasible": False,
            "verdict": verdict_code(error),
            "error_type": type(error).__name__,
            "detail": str(error),
            "tau_in": tau_in,
        }
    result: dict[str, Any] = {
        "feasible": True,
        "verdict": "OK",
        "tau_in": tau_in,
        "utilization": routing.utilization.peak,
        "subsets": len(routing.subsets),
        "commands": routing.schedule.num_commands,
        "nodes": len(routing.schedule.node_schedules),
        "attempts": routing.attempts,
        "cache_hit": bool(routing.extra.get("cache", {}).get("hit", False)),
    }
    if routing.extra.get("solver_stats") is not None:
        result["solver_stats"] = dict(routing.extra["solver_stats"])
    profile = routing.extra.get("compile_profile")
    if profile is not None and profile.stages:
        result["profile"] = profile.to_dict()
    if request.kind == "check":
        from repro.check import analyze_schedule

        report = analyze_schedule(
            routing.schedule,
            setup.topology,
            timing=setup.timing,
            allocation=setup.allocation,
            sync_margin=request.compiler_config().sync_margin,
        )
        result["check"] = report.to_dict()
        if not report.ok:
            result["verdict"] = "CHK"
    return result


def _diagnose_result(
    request: JobRequest,
    setup: ExperimentSetup,
    tau_in: float,
    cache: ScheduleCache | None,
    spool: _Spool,
) -> dict[str, Any]:
    from repro.diagnose import diagnose_instance

    spool.emit("stage", stage="diagnose")
    diagnosis = diagnose_instance(
        setup.timing,
        setup.topology,
        setup.allocation,
        tau_in,
        sync_margin=request.compiler_config().sync_margin,
        cache=cache,
    )
    return {
        "feasible": not diagnosis.refuted,
        "verdict": "REF" if diagnosis.refuted else "OK",
        "tau_in": tau_in,
        "diagnosis": diagnosis.to_dict(),
    }


def execute_request(task: Mapping[str, Any]) -> dict[str, Any]:
    """Execute one farm task; the pool's target function.

    ``task`` carries the request's canonical form plus the shared cache
    directory and an optional progress-spool path.  The returned dict is
    JSON-able end to end and always includes ``cache_stats`` — this
    task's cache-counter *deltas* for the service to aggregate.
    """
    request = JobRequest.from_canonical(task["request"])
    cache = _cache_for(task.get("cache_dir"))
    before = cache.stats.snapshot() if cache is not None else None
    spool = _Spool(task.get("spool"))
    try:
        setup, tau_in = build_setup(request)
        if request.kind == "diagnose":
            result = _diagnose_result(request, setup, tau_in, cache, spool)
        else:
            result = _compile_result(request, setup, tau_in, cache, spool)
    finally:
        spool.close()
    if cache is not None and before is not None:
        result["cache_stats"] = cache.stats.since(before)
    return result
