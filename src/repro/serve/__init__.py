"""``repro.serve`` — the async compile-farm service layer.

The paper's compiler answers one instance at a time; this package turns
it into a long-running service answering *streams* of compile /
diagnose / check requests the way a production scheduling farm would:

- :mod:`~repro.serve.jobs` — request validation, job lifecycle, store;
- :mod:`~repro.serve.service` — :class:`CompileService`: single-flight
  dedup, diagnoser admission control, dispatch to a
  :class:`~repro.pool.GracefulPool` of workers over the shared sharded
  on-disk :class:`~repro.cache.ScheduleCache`;
- :mod:`~repro.serve.worker` — the process-side task executor (JSON in,
  JSON out, per-task cache-stat deltas);
- :mod:`~repro.serve.http` — stdlib-asyncio HTTP/1.1 endpoints,
  including the chunked stage-progress stream;
- :mod:`~repro.serve.runner` — the ``repro-sr serve`` daemon loop and a
  background :class:`ServerThread` for tests/benchmarks;
- :mod:`~repro.serve.client` — blocking client (``repro-sr submit``);
- :mod:`~repro.serve.loadgen` — the seeded mixed-load benchmark behind
  ``BENCH_serve.json`` and the CI smoke gate.

See ``docs/serve.md`` for the architecture walk-through.
"""

from repro.serve.client import ServeClient
from repro.serve.jobs import BadRequest, Job, JobRequest, JobStore
from repro.serve.runner import ServerThread, serve_forever
from repro.serve.service import CompileService, ServeConfig, ServiceStats

__all__ = [
    "BadRequest",
    "CompileService",
    "Job",
    "JobRequest",
    "JobStore",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "ServiceStats",
    "serve_forever",
]
