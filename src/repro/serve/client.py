"""Blocking HTTP client for the farm (stdlib ``http.client``).

One :class:`ServeClient` wraps one keep-alive connection; it is **not**
thread-safe — the load generator gives each worker thread its own
client, which is also what exercises the server's connection
concurrency.  A dropped connection is re-opened and the request retried
once (idempotent by design: submissions dedup server-side through
single-flight).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to one farm instance at ``host:port``."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing --------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self, method: str, path: str, payload: Any | None = None
    ) -> tuple[int, dict[str, Any]]:
        """One request/response; returns ``(status, parsed body)``."""
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            parsed = {"raw": raw.decode("utf-8", "replace")}
        return response.status, parsed

    # -- endpoints -------------------------------------------------------

    def submit(
        self,
        payload: Any,
        wait: bool = False,
        timeout: float | None = None,
    ) -> tuple[int, dict[str, Any]]:
        path = "/v1/jobs"
        if wait:
            path += "?wait=1"
            if timeout is not None:
                path += f"&timeout={timeout:g}"
        return self.request("POST", path, payload)

    def job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def stats(self) -> dict[str, Any]:
        status, payload = self.request("GET", "/v1/stats")
        if status != 200:
            raise RuntimeError(f"stats endpoint returned {status}")
        return payload

    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/v1/healthz")[1]

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream a job's progress events as they are produced.

        Consumes the chunked ``/events`` response line by line;
        ``http.client`` de-chunks transparently.  The dedicated
        connection is closed by the server when the job ends.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                detail = response.read().decode("utf-8", "replace")
                raise RuntimeError(
                    f"event stream returned {response.status}: {detail}"
                )
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line)
        finally:
            conn.close()
