"""Running a farm: the daemon entry point and an embeddable thread.

:func:`serve_forever` is what ``repro-sr serve`` calls — it owns the
event loop, installs SIGTERM/SIGINT handlers that trigger the graceful
drain (in-flight compilations finish, cache statistics are persisted),
and only returns once the farm is fully shut down.

:class:`ServerThread` hosts the same loop on a daemon thread so tests
and the load benchmark can boot a real farm in-process, talk to it over
real sockets, and tear it down deterministically.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
from typing import Any

from repro.serve.http import start_http_server
from repro.serve.service import CompileService, ServeConfig
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["ServerThread", "serve_forever"]


async def _serve(service: CompileService, stop: asyncio.Event,
                 ready: "threading.Event | None" = None,
                 announce: bool = False) -> int:
    """Boot the farm, publish the bound port, park until ``stop``."""
    service.start()
    server = await start_http_server(service)
    port = server.sockets[0].getsockname()[1]
    service.bound_port = port  # type: ignore[attr-defined]
    if announce:
        print(
            f"repro-serve listening on {service.config.host}:{port} "
            f"(workers={service.config.workers}, "
            f"cache={service.cache_dir})",
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.shutdown()
        if announce:
            print("repro-serve drained and stopped", flush=True)
    return 0


def serve_forever(config: ServeConfig, tracer: Tracer = NULL_TRACER) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns an exit code.

    Signals flip one asyncio event; the teardown path then drains the
    worker pool exactly like the experiment matrix does (shared
    :class:`~repro.pool.GracefulPool` semantics) before the process
    exits.
    """
    service = CompileService(config, tracer=tracer)

    async def main() -> int:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        return await _serve(service, stop, announce=True)

    return asyncio.run(main())


class ServerThread:
    """A live farm on a background thread (tests, benchmarks).

    Usage::

        with ServerThread(ServeConfig(workers=2)) as server:
            client = ServeClient("127.0.0.1", server.port)
            ...

    ``start`` blocks until the socket is bound, so :attr:`port` is
    always valid inside the ``with`` body; ``stop`` performs the full
    graceful drain before returning.
    """

    def __init__(self, config: ServeConfig | None = None,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.service = CompileService(config or ServeConfig(), tracer=tracer)
        self.port: int = 0
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await _serve(self.service, self._stop, ready=self._ready)

        asyncio.run(main())

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread failed to come up")
        self.port = getattr(self.service, "bound_port", 0)
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
