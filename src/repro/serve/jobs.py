"""Job model of the compile farm: requests, lifecycle, and the store.

A :class:`JobRequest` names one problem instance the same way the CLI
does — (workload models, topology, bandwidth, load, allocator, seed)
plus compiler-config overrides — so the wire format stays a small JSON
object and workers rebuild the instance deterministically on their side.
Validation happens here (:meth:`JobRequest.from_payload` raises
:class:`BadRequest` on malformed input), keeping the HTTP layer dumb.

A :class:`Job` walks the lifecycle::

    queued -> admitted -> running -> done
           \\-> rejected             \\-> failed

``rejected`` is the admission fast path (the static diagnoser refuted
the instance — no worker ever saw it); ``done`` covers both feasible
and *proven-infeasible* compilations (an infeasibility verdict is a
successful answer); ``failed`` is reserved for internal errors.  Every
transition appends a structured event consumed by the streaming
``/v1/jobs/<id>/events`` endpoint.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.compiler import CompilerConfig
from repro.errors import ReproError
from repro.topology import topology_names
from repro.topology.registry import STANDARD_TOPOLOGIES, TOPOLOGY_ALIASES

__all__ = [
    "BadRequest",
    "Job",
    "JobRequest",
    "JobStore",
    "JOB_ADMITTED",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_REJECTED",
    "JOB_RUNNING",
    "TERMINAL_STATES",
]

JOB_QUEUED = "queued"
JOB_ADMITTED = "admitted"
JOB_REJECTED = "rejected"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: States a job never leaves.
TERMINAL_STATES = frozenset({JOB_REJECTED, JOB_DONE, JOB_FAILED})

#: Request kinds the farm accepts.
KINDS = ("compile", "diagnose", "check")

#: Task-placement strategies a request may name (mirrors the CLI).
ALLOCATORS = ("sequential", "bfs", "random", "annealed")

#: CompilerConfig fields a request may override, with coercers.
_CONFIG_FIELDS: dict[str, Any] = {
    "seed": int,
    "use_assign_paths": bool,
    "max_paths": int,
    "max_restarts": int,
    "retries": int,
    "feedback_rounds": int,
    "sync_margin": float,
    "lp_backend": str,
    "prescreen": bool,
}


class BadRequest(ReproError):
    """A malformed or unsupported job payload (HTTP 400)."""


def _require(
    payload: Mapping[str, Any],
    key: str,
    kind: type,
    default: Any | None = None,
) -> Any:
    value = payload.get(key, default)
    if value is None:
        raise BadRequest(f"missing required field {key!r}")
    try:
        return kind(value)
    except (TypeError, ValueError):
        raise BadRequest(
            f"field {key!r} must be {kind.__name__}, got {value!r}"
        ) from None


@dataclass(frozen=True)
class JobRequest:
    """One validated compile/diagnose/check request.

    ``models``/``topology``/``bandwidth``/``load``/``allocator``/``seed``
    pin the problem instance exactly as the CLI flags of the same names
    do; ``config`` holds :class:`~repro.core.compiler.CompilerConfig`
    overrides (unknown keys are rejected, not ignored — a typo must not
    silently change the cache key).
    """

    kind: str
    topology: str
    bandwidth: float
    models: int
    load: float
    allocator: str = "sequential"
    seed: int = 0
    config: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def from_payload(cls, payload: Any) -> "JobRequest":
        """Validate an untrusted JSON payload into a request."""
        if not isinstance(payload, Mapping):
            raise BadRequest("request body must be a JSON object")
        kind = str(payload.get("kind", "compile"))
        if kind not in KINDS:
            raise BadRequest(
                f"unknown kind {kind!r}; expected one of {', '.join(KINDS)}"
            )
        topology = str(payload.get("topology", ""))
        if TOPOLOGY_ALIASES.get(topology, topology) not in STANDARD_TOPOLOGIES:
            raise BadRequest(
                f"unknown topology {topology!r}; expected one of "
                f"{', '.join(topology_names())}"
            )
        bandwidth = _require(payload, "bandwidth", float, 64.0)
        if bandwidth <= 0:
            raise BadRequest(f"bandwidth must be > 0, got {bandwidth}")
        models = _require(payload, "models", int, 8)
        if models < 1:
            raise BadRequest(f"models must be >= 1, got {models}")
        load = _require(payload, "load", float)
        if not 0 < load <= 1:
            raise BadRequest(f"load must be in (0, 1], got {load}")
        allocator = str(payload.get("allocator", "sequential"))
        if allocator not in ALLOCATORS:
            raise BadRequest(
                f"unknown allocator {allocator!r}; expected one of "
                f"{', '.join(ALLOCATORS)}"
            )
        seed = _require(payload, "seed", int, 0)
        raw_config = payload.get("config", {})
        if not isinstance(raw_config, Mapping):
            raise BadRequest("config must be a JSON object")
        config: list[tuple[str, Any]] = []
        for key in sorted(raw_config):
            coerce = _CONFIG_FIELDS.get(key)
            if coerce is None:
                raise BadRequest(f"unknown config field {key!r}")
            try:
                config.append((key, coerce(raw_config[key])))
            except (TypeError, ValueError):
                raise BadRequest(
                    f"config field {key!r} has invalid value "
                    f"{raw_config[key]!r}"
                ) from None
        return cls(
            kind=kind,
            topology=TOPOLOGY_ALIASES.get(topology, topology),
            bandwidth=bandwidth,
            models=models,
            load=load,
            allocator=allocator,
            seed=seed,
            config=tuple(config),
        )

    @classmethod
    def from_canonical(cls, payload: Mapping[str, Any]) -> "JobRequest":
        """Rebuild a request from :meth:`canonical` output (worker side).

        The canonical form is already validated; this constructor only
        restores the shapes JSON flattened (the config pair list).
        """
        return cls(
            kind=str(payload["kind"]),
            topology=str(payload["topology"]),
            bandwidth=float(payload["bandwidth"]),
            models=int(payload["models"]),
            load=float(payload["load"]),
            allocator=str(payload["allocator"]),
            seed=int(payload["seed"]),
            config=tuple(
                (str(k), v) for k, v in payload.get("config", ())
            ),
        )

    def compiler_config(self) -> CompilerConfig:
        """The effective compiler config (request seed + overrides)."""
        fields: dict[str, Any] = {"seed": self.seed}
        fields.update(dict(self.config))
        return CompilerConfig(**fields)

    def canonical(self) -> dict[str, Any]:
        """Deterministic JSON-able form (worker payloads, dedup keys)."""
        return {
            "kind": self.kind,
            "topology": self.topology,
            "bandwidth": self.bandwidth,
            "models": self.models,
            "load": self.load,
            "allocator": self.allocator,
            "seed": self.seed,
            "config": [[k, v] for k, v in self.config],
        }

    def instance_signature(self) -> str:
        """Stable identity of the *instance* this request names.

        Two requests with the same signature compile the same problem
        under the same config — the single-flight map coalesces on this
        (per kind: a ``check`` does strictly more work than a
        ``compile``, so they never share a flight).
        """
        return json.dumps(self.canonical(), sort_keys=True)


@dataclass
class Job:
    """One accepted request working through the farm."""

    id: str
    request: JobRequest
    key: str  #: content-addressed schedule-cache key of the instance
    state: str = JOB_QUEUED
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    #: Duplicate submissions that attached to this flight.
    coalesced: int = 0
    #: Lifecycle + stage progress events, in order.
    events: list[dict[str, Any]] = field(default_factory=list)
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_event(self, name: str, **args: Any) -> dict[str, Any]:
        """Append one structured progress event."""
        event = {
            "seq": len(self.events),
            "t": round(time.time() - self.submitted_at, 6),
            "event": name,
        }
        if args:
            event.update(args)
        self.events.append(event)
        return event

    def transition(self, state: str, **args: Any) -> None:
        """Move to ``state`` and record the transition event."""
        self.state = state
        if state in TERMINAL_STATES:
            self.finished_at = time.time()
        self.add_event(state, **args)
        if self.terminal:
            self._done.set()

    async def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; False on timeout."""
        try:
            await asyncio.wait_for(self._done.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def snapshot(self) -> dict[str, Any]:
        """The JSON view served by ``/v1/jobs/<id>``."""
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.request.kind,
            "key": self.key,
            "state": self.state,
            "request": self.request.canonical(),
            "submitted_at": self.submitted_at,
            "coalesced": self.coalesced,
        }
        if self.finished_at is not None:
            payload["finished_at"] = self.finished_at
            payload["elapsed_ms"] = round(
                (self.finished_at - self.submitted_at) * 1000.0, 3
            )
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobStore:
    """Jobs by id, with a bounded history of finished ones.

    The store never drops a non-terminal job; terminal jobs age out
    oldest-first once ``history_limit`` is exceeded (their results live
    on in the schedule cache — the store is for polling, not archival).
    """

    def __init__(self, history_limit: int = 512) -> None:
        self.history_limit = history_limit
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)

    def new_id(self) -> str:
        return f"job-{next(self._ids)}"

    def add(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._evict()

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def active(self) -> list[Job]:
        """Jobs not yet terminal, oldest first."""
        return [job for job in self._jobs.values() if not job.terminal]

    def _evict(self) -> None:
        excess = len(self._jobs) - self.history_limit
        if excess <= 0:
            return
        for job_id in [
            jid for jid, job in self._jobs.items() if job.terminal
        ][:excess]:
            del self._jobs[job_id]
