"""Minimal asyncio HTTP/1.1 codec over :class:`CompileService`.

Stdlib only — ``asyncio.start_server`` plus hand-rolled request
parsing; no web framework.  The surface is deliberately small:

====== =========================== ==========================================
Method Path                        Meaning
====== =========================== ==========================================
POST   ``/v1/jobs``                Submit a job; ``?wait=1`` blocks until
                                   terminal (``&timeout=S`` caps the wait).
GET    ``/v1/jobs/<id>``           Poll one job's snapshot.
GET    ``/v1/jobs/<id>/events``    Chunked stream of progress events, one
                                   JSON line per chunk, closing when the
                                   job reaches a terminal state.
GET    ``/v1/stats``               Service / cache counters.
GET    ``/v1/healthz``             Liveness (also reports draining).
====== =========================== ==========================================

Status mapping: 400 malformed payload, 404 unknown job/path, 405 wrong
method, 503 submitting while draining, 500 handler crash.  Connections
are keep-alive by default (the load generator reuses one connection per
worker thread); an event stream always closes its connection when done,
as chunked encoding is the response's framing.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.serve.jobs import BadRequest, Job
from repro.serve.service import CompileService

__all__ = ["start_http_server"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest accepted request body; a job payload is a few hundred bytes.
_MAX_BODY = 1 << 20


class _HttpError(Exception):
    """Terminates one request with a status + JSON error body."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


def _head(status: int, length: int | None, keep_alive: bool,
          chunked: bool = False) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
    ]
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {length or 0}")
    lines.append(
        f"Connection: {'keep-alive' if keep_alive else 'close'}"
    )
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def _json_response(writer: asyncio.StreamWriter, status: int,
                   payload: Any, keep_alive: bool) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    writer.write(_head(status, len(body), keep_alive) + body)


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request; ``None`` on clean EOF (client closed)."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise _HttpError(400, f"body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def _stream_events(service: CompileService, job: Job,
                         writer: asyncio.StreamWriter) -> None:
    """Chunk out ``job.events`` live until the job is terminal."""
    writer.write(_head(200, None, keep_alive=False, chunked=True))
    sent = 0
    while True:
        while sent < len(job.events):
            line = (
                json.dumps(job.events[sent], sort_keys=True) + "\n"
            ).encode("utf-8")
            writer.write(f"{len(line):x}\r\n".encode("ascii"))
            writer.write(line + b"\r\n")
            sent += 1
        await writer.drain()
        if job.terminal and sent >= len(job.events):
            break
        await job.wait(0.05)
    writer.write(b"0\r\n\r\n")
    await writer.drain()


async def _handle_post_jobs(service: CompileService, query: str,
                            body: bytes, keep_alive: bool,
                            writer: asyncio.StreamWriter) -> None:
    if service.draining:
        raise _HttpError(503, "service is draining; job rejected")
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (ValueError, UnicodeDecodeError):
        service.stats.malformed += 1
        raise _HttpError(400, "request body is not valid JSON") from None
    try:
        job = service.submit(payload)
    except BadRequest as error:
        service.stats.malformed += 1
        raise _HttpError(400, str(error)) from None
    params = parse_qs(query)
    if params.get("wait", ["0"])[-1] in ("1", "true", "yes"):
        timeout = min(
            float(params.get("timeout", [service.config.wait_timeout])[-1]),
            service.config.wait_timeout,
        )
        finished = await job.wait(timeout)
        _json_response(
            writer, 200 if finished else 202, job.snapshot(), keep_alive
        )
        return
    _json_response(
        writer,
        202,
        {"id": job.id, "state": job.state, "key": job.key},
        keep_alive,
    )


async def _dispatch(service: CompileService, method: str, target: str,
                    body: bytes, keep_alive: bool,
                    writer: asyncio.StreamWriter) -> bool:
    """Route one request; returns False when the connection must close."""
    url = urlsplit(target)
    path = url.path.rstrip("/") or "/"

    if path == "/v1/jobs":
        if method != "POST":
            raise _HttpError(405, "use POST /v1/jobs")
        await _handle_post_jobs(service, url.query, body, keep_alive, writer)
        return keep_alive

    if path.startswith("/v1/jobs/"):
        if method != "GET":
            raise _HttpError(405, "job views are GET-only")
        rest = path[len("/v1/jobs/"):]
        job_id, _, tail = rest.partition("/")
        job = service.store.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if tail == "events":
            await _stream_events(service, job, writer)
            return False
        if tail:
            raise _HttpError(404, f"unknown job view {tail!r}")
        _json_response(writer, 200, job.snapshot(), keep_alive)
        return keep_alive

    if path == "/v1/stats":
        if method != "GET":
            raise _HttpError(405, "stats are GET-only")
        _json_response(writer, 200, service.stats_snapshot(), keep_alive)
        return keep_alive

    if path == "/v1/healthz":
        if method != "GET":
            raise _HttpError(405, "healthz is GET-only")
        _json_response(
            writer, 200,
            {"ok": True, "draining": service.draining},
            keep_alive,
        )
        return keep_alive

    raise _HttpError(404, f"no route for {path}")


async def _handle_connection(service: CompileService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                break
            except asyncio.CancelledError:
                # Event loop going down mid-keep-alive: close quietly.
                break
            if request is None:
                break
            method, target, headers, body = request
            keep_alive = headers.get("connection", "").lower() != "close"
            try:
                keep_alive = await _dispatch(
                    service, method, target, body, keep_alive, writer
                )
            except _HttpError as error:
                _json_response(
                    writer,
                    error.status,
                    {"error": error.detail},
                    keep_alive,
                )
            except ConnectionError:
                break
            except Exception as error:  # noqa: BLE001 - 500 firewall
                _json_response(
                    writer,
                    500,
                    {"error": f"{type(error).__name__}: {error}"},
                    False,
                )
                keep_alive = False
            await writer.drain()
            if not keep_alive:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # CancelledError: the loop is shutting down around us; the
            # transport is already being torn down, nothing left to wait.
            pass


async def start_http_server(service: CompileService) -> asyncio.Server:
    """Bind and start serving; the caller owns the returned server."""

    async def handler(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host=service.config.host, port=service.config.port
    )
