"""The compile-farm service: admission, single-flight, dispatch.

:class:`CompileService` is the asyncio-side brain of ``repro.serve``;
the HTTP layer (:mod:`repro.serve.http`) is a thin codec over it.  A
submitted request flows through four gates, cheapest first:

1. **Validation** — :meth:`~repro.serve.jobs.JobRequest.from_payload`
   rejects malformed payloads before anything is allocated.
2. **Single-flight dedup** — requests whose canonical form matches a
   job already in flight *attach to that job* instead of spawning a
   second compilation; requests matching an already-finished job are
   answered from the service's result memo without touching a worker.
3. **Admission control** — the static diagnoser
   (:func:`repro.diagnose.diagnose_instance`) runs in the front-end;
   a sound refutation certificate turns the job away (state
   ``rejected``) in milliseconds, so provably hopeless instances never
   occupy a worker.  Diagnoses are cached in the shared cache's
   disjoint diagnosis key space — never as negative schedule entries.
4. **Dispatch** — surviving jobs run
   :func:`repro.serve.worker.execute_request` on a
   :class:`~repro.pool.GracefulPool` of processes sharing the sharded
   on-disk cache (``workers=0`` executes inline on a thread — the
   single-process mode tests and smoke runs use).

Stage-level progress spooled by the worker's
:class:`~repro.trace.profile.CompileProfiler` callbacks is tailed into
``Job.events`` while the compilation runs, which is what the chunked
``/v1/jobs/<id>/events`` stream and the polling ``/v1/jobs/<id>`` view
both read.

Every gate emits a ``serve``-category trace instant (``enqueue`` /
``admit`` / ``reject`` / ``dispatch`` / ``complete`` / ``coalesce`` /
``fail``) carrying the in-flight queue depth, so a
:class:`~repro.trace.tracer.TraceRecorder` attached to the service
yields a load timeline alongside the compiler's own events.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import shutil
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.diagnose import Diagnosis

from repro.cache import (
    CacheStats,
    ScheduleCache,
    persist_cache_stats,
    schedule_cache_key,
)
from repro.pool import GracefulPool
from repro.serve import worker
from repro.serve.jobs import (
    JOB_ADMITTED,
    JOB_DONE,
    JOB_FAILED,
    JOB_REJECTED,
    JOB_RUNNING,
    Job,
    JobRequest,
    JobStore,
)
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = ["CompileService", "ServeConfig", "ServiceStats"]


@dataclass(frozen=True)
class ServeConfig:
    """Deployment knobs of one farm instance.

    ``workers=0`` executes requests inline on a thread of the serving
    process (no child processes) — the mode unit tests and the CI smoke
    job use; any positive count runs a :class:`~repro.pool.GracefulPool`
    of that many processes.  ``cache_dir=None`` creates an ephemeral
    shared cache directory for the service's lifetime (removed on
    shutdown); point it at a persistent path to keep warm results
    across restarts.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 0
    cache_dir: str | Path | None = None
    admission: bool = True
    history_limit: int = 4096
    #: Hard cap on ``?wait=1`` blocking, seconds.
    wait_timeout: float = 600.0


@dataclass
class ServiceStats:
    """Request counters of one service instance.

    ``coalesced`` counts duplicates that attached to an in-flight job;
    ``fast_hits`` counts duplicates answered from the finished-result
    memo without dispatch.  ``worker_cache`` aggregates the per-task
    cache-counter deltas every worker result ships back, so a stats
    snapshot can show farm-wide cache behaviour even though each worker
    process owns its own memory tier.
    """

    submitted: int = 0
    malformed: int = 0
    coalesced: int = 0
    fast_hits: int = 0
    rejected: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    worker_cache: CacheStats = field(default_factory=CacheStats)

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "malformed": self.malformed,
            "coalesced": self.coalesced,
            "fast_hits": self.fast_hits,
            "rejected": self.rejected,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
        }


class CompileService:
    """One compile farm: job store, caches, worker pool, statistics.

    Lifecycle: construct, :meth:`start` (from the event-loop thread),
    :meth:`submit` per request, :meth:`shutdown` once.  All public
    methods except the documented thread-safe helpers must be called
    on the event-loop thread.
    """

    def __init__(self, config: ServeConfig | None = None,
                 tracer: Tracer = NULL_TRACER):
        self.config = config or ServeConfig()
        self.tracer = tracer
        self.store = JobStore(history_limit=self.config.history_limit)
        self.stats = ServiceStats()
        self.pool: GracefulPool | None = None
        self.cache: ScheduleCache | None = None
        self.cache_dir: Path | None = None
        self._ephemeral_cache = False
        self._spool_dir: Path | None = None
        self._inflight: dict[str, Job] = {}
        self._results: OrderedDict[str, dict[str, Any]] = OrderedDict()
        #: (setup, tau_in, schedule key) per instance identity; built
        #: once in the event loop, then read-only from admission threads.
        self._instances: dict[JobRequest, tuple[Any, float, str]] = {}
        self._admit_lock = Lock()
        self._tasks: set[asyncio.Task] = set()
        self._draining = False
        self._started = time.time()
        #: Indirection for tests: the callable dispatched per job.
        self._execute: Callable[[Mapping[str, Any]], dict[str, Any]] = (
            worker.execute_request
        )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Create the shared cache, spool area, and worker pool."""
        if self.config.cache_dir is not None:
            self.cache_dir = Path(self.config.cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        else:
            self.cache_dir = Path(tempfile.mkdtemp(prefix="repro-serve-cache-"))
            self._ephemeral_cache = True
        self.cache = ScheduleCache(self.cache_dir)
        self._spool_dir = Path(tempfile.mkdtemp(prefix="repro-serve-spool-"))
        if self.config.workers > 0:
            self.pool = GracefulPool(
                max_workers=self.config.workers,
                on_shutdown=[self._persist_stats],
            )

    @property
    def draining(self) -> bool:
        """True once shutdown started (POSTs get 503 from here on)."""
        if self._draining:
            return True
        return self.pool is not None and self.pool.draining

    async def shutdown(self) -> None:
        """Drain in-flight jobs, persist cache stats, release resources.

        The same graceful path the matrix uses: running compilations
        finish (their cache writes land), queued ones are cancelled,
        and ``<cache_dir>/cache-stats.json`` records the totals.
        """
        self._draining = True
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self.pool is not None:
            await asyncio.to_thread(self.pool.shutdown, True)
        else:
            self._persist_stats()
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
        if self._ephemeral_cache and self.cache_dir is not None:
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    def _persist_stats(self) -> None:
        """GracefulPool shutdown hook: flush merged cache counters."""
        if self.cache_dir is None or self.cache is None:
            return
        combined = CacheStats()
        combined.merge(self.cache.stats)
        combined.merge(self.stats.worker_cache)
        persist_cache_stats(self.cache_dir, combined)

    # -- submission ------------------------------------------------------

    def submit(self, payload: Any) -> Job:
        """Validate and enqueue one request; returns its (shared) job.

        Raises :class:`~repro.serve.jobs.BadRequest` on malformed input.
        Duplicates of an in-flight or finished request return the
        existing job object — callers observe single-flight semantics
        through the shared job id.
        """
        request = JobRequest.from_payload(payload)
        self.stats.submitted += 1
        signature = request.instance_signature()

        flight = self._inflight.get(signature)
        if flight is not None:
            flight.coalesced += 1
            self.stats.coalesced += 1
            self._trace("coalesce", flight)
            return flight

        job = Job(
            id=self.store.new_id(),
            request=request,
            key=self._instance(request)[2],
        )
        self.store.add(job)
        job.add_event("enqueue", queue_depth=len(self._inflight))
        self._trace("enqueue", job)

        done = self._results.get(signature)
        if done is not None and not self._memo_valid(done):
            # The backing cache entry vanished (cleared, pruned, or the
            # cache directory swapped) — a memo answer would resurrect a
            # result the cache no longer vouches for.  Drop the stale
            # memo and recompile.
            self._results.pop(signature, None)
            done = None
        if done is not None:
            self.stats.fast_hits += 1
            job.result = done.get("result")
            job.error = done.get("error")
            job.transition(done["state"], fast_path=True)
            self._trace("complete", job, fast_path=True)
            return job

        self._inflight[signature] = job
        task = asyncio.get_running_loop().create_task(
            self._run_job(job, signature)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    def _instance(self, request: JobRequest) -> tuple[Any, float, str]:
        """Memoized (setup, tau_in, schedule key) for a request.

        Keyed on the request with ``kind`` normalized away: compile,
        check and diagnose requests for the same point share one built
        instance and one content key.
        """
        identity = dataclasses.replace(request, kind="compile")
        entry = self._instances.get(identity)
        if entry is None:
            setup, tau_in = worker.build_setup(request)
            key = schedule_cache_key(
                setup.timing,
                setup.topology,
                setup.allocation,
                tau_in,
                request.compiler_config(),
            )
            entry = self._instances[identity] = (setup, tau_in, key)
        return entry

    # -- job execution ---------------------------------------------------

    async def _run_job(self, job: Job, signature: str) -> None:
        try:
            await self._admit_and_dispatch(job)
        except Exception as error:  # noqa: BLE001 - job-scoped firewall
            job.error = {"type": type(error).__name__, "detail": str(error)}
            self.stats.failed += 1
            job.transition(JOB_FAILED, error=type(error).__name__)
            self._trace("fail", job)
        finally:
            self._inflight.pop(signature, None)
            self._remember(signature, job)

    async def _admit_and_dispatch(self, job: Job) -> None:
        request = job.request
        if self.config.admission and request.kind != "diagnose":
            diagnosis = await asyncio.to_thread(self._admit, request)
            if diagnosis.refuted:
                job.result = {
                    "feasible": False,
                    "verdict": "REF",
                    "tau_in": self._instance(request)[1],
                    "diagnosis": diagnosis.to_dict(),
                }
                self.stats.rejected += 1
                job.transition(
                    JOB_REJECTED,
                    verdict="REF",
                    certificates=len(diagnosis.instance_refutations),
                )
                self._trace("reject", job)
                return
            job.transition(JOB_ADMITTED)
        else:
            job.transition(JOB_ADMITTED, admission="skipped")
        self._trace("admit", job)

        assert self._spool_dir is not None and self.cache_dir is not None
        spool = self._spool_dir / f"{job.id}.events.jsonl"
        payload = {
            "request": request.canonical(),
            "cache_dir": str(self.cache_dir),
            "spool": str(spool),
        }
        self.stats.dispatched += 1
        job.transition(JOB_RUNNING)
        self._trace("dispatch", job)
        tail = asyncio.get_running_loop().create_task(
            self._tail_spool(job, spool)
        )
        try:
            if self.pool is not None:
                future = self.pool.submit(self._execute, payload)
                result = await asyncio.wrap_future(future)
            else:
                result = await asyncio.to_thread(self._execute, payload)
        finally:
            tail.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await tail
            spool.unlink(missing_ok=True)
        delta = result.pop("cache_stats", None)
        if delta:
            self.stats.worker_cache.merge(delta)
        job.result = result
        self.stats.completed += 1
        job.transition(JOB_DONE, verdict=result.get("verdict"))
        self._trace("complete", job)

    def _admit(self, request: JobRequest) -> "Diagnosis":
        """Admission fast path (thread-side): statically diagnose.

        Serialized by a lock — diagnoses are millisecond-cheap, and the
        front cache's counters stay exact without per-field atomics.
        Results land in the shared cache's *diagnosis* key space (never
        as negative schedule entries, which would poison compile
        lookups under different configs).
        """
        from repro.diagnose import diagnose_instance

        setup, tau_in, _key = self._instance(request)
        with self._admit_lock:
            return diagnose_instance(
                setup.timing,
                setup.topology,
                setup.allocation,
                tau_in,
                sync_margin=request.compiler_config().sync_margin,
                cache=self.cache,
            )

    def _remember(self, signature: str, job: Job) -> None:
        """Memo a terminal outcome for the duplicate fast path.

        Each entry records the cache key backing the outcome
        (``backing``), so :meth:`_memo_valid` can later check that the
        shared cache still holds that entry before answering from the
        memo — invalidating the cache invalidates the memo with it.
        """
        if not job.terminal:
            return
        self._results[signature] = {
            "state": job.state,
            "result": job.result,
            "error": job.error,
            "backing": self._backing_key(job),
        }
        while len(self._results) > self.config.history_limit:
            self._results.popitem(last=False)

    def _backing_key(self, job: Job) -> str | None:
        """The shared-cache key whose entry vouches for this outcome.

        Completed compile/check jobs are backed by the schedule entry
        under ``job.key``; completed diagnose jobs and admission
        rejections are backed by the diagnosis entry in the disjoint
        diagnosis key space.  Exception failures have no backing entry
        (``None``) — they are memoized on their own terms, as are
        outcomes whose entry never landed in the cache (a worker stub
        or a cache-less execution path cannot go stale).
        """
        from repro.cache import diagnosis_cache_key

        request = job.request
        key: str | None = None
        if job.state == JOB_DONE and request.kind in ("compile", "check"):
            key = job.key
        elif job.state == JOB_REJECTED or (
            job.state == JOB_DONE and request.kind == "diagnose"
        ):
            setup, tau_in, _key = self._instance(request)
            key = diagnosis_cache_key(
                setup.timing,
                setup.topology,
                setup.allocation,
                tau_in,
                request.compiler_config().sync_margin,
            )
        if key is None or self.cache is None or not self.cache.contains(key):
            return None
        return key

    def _memo_valid(self, done: Mapping[str, Any]) -> bool:
        """Whether a memo entry's backing cache entry still exists."""
        backing = done.get("backing")
        if backing is None:
            return True
        return self.cache is not None and self.cache.contains(backing)

    # -- progress streaming ----------------------------------------------

    async def _tail_spool(self, job: Job, path: Path) -> None:
        """Mirror worker progress lines into ``job.events`` live.

        Cancelled when the worker result arrives; the cancellation
        handler pumps once more so no trailing stage event is lost.
        """
        offset = 0
        try:
            while True:
                offset = self._pump_spool(job, path, offset)
                await asyncio.sleep(0.02)
        except asyncio.CancelledError:
            self._pump_spool(job, path, offset)
            raise

    @staticmethod
    def _pump_spool(job: Job, path: Path, offset: int) -> int:
        """Consume complete spool lines past ``offset``; new offset."""
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read()
        except OSError:
            return offset
        end = data.rfind(b"\n")
        if end < 0:
            return offset
        for line in data[:end].split(b"\n"):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                name = str(event.pop("event", "progress"))
                job.add_event(name, **event)
        return offset + end + 1

    # -- observability ---------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        """The ``/v1/stats`` payload."""
        cache = CacheStats()
        if self.cache is not None:
            cache.merge(self.cache.stats)
        cache.merge(self.stats.worker_cache)
        payload: dict[str, Any] = {
            "uptime_s": round(time.time() - self._started, 3),
            "workers": self.config.workers,
            "draining": self.draining,
            "queue_depth": len(self._inflight),
            "jobs_tracked": len(self.store),
            "service": self.stats.as_dict(),
            "cache": cache.as_dict(),
        }
        if self.cache_dir is not None:
            payload["cache_dir"] = str(self.cache_dir)
        if self.cache is not None:
            payload["cache_migrated_entries"] = self.cache.migrated_entries
        return payload

    def _trace(self, name: str, job: Job, **args: Any) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.instant(
            "serve",
            name,
            time.time() - self._started,
            track=f"serve:{job.request.kind}",
            job=job.id,
            key=job.key[:12],
            queue_depth=len(self._inflight),
            **args,
        )
