"""Generator-based cooperative processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import SimulationError
from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Process(Event):
    """A process executes a generator, suspending at each yielded event.

    A process is itself an :class:`~repro.sim.events.Event`: it fires with
    the generator's return value when the generator finishes, so processes
    can wait on each other (``yield env.process(child(env))``).

    Failures propagate: when a yielded event fails, the exception is thrown
    into the generator at the yield point; an unhandled exception fails the
    process event, and — if nothing is waiting on the process — aborts the
    simulation rather than passing silently.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off the process at the current instant, after already-queued
        # same-time events (FIFO determinism).
        bootstrap = Event(env)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is None:
            raise SimulationError("cannot interrupt a process that is not suspended")
        waited, self._waiting_on = self._waiting_on, None
        # Detach from the event we were waiting on so its later firing
        # does not resume us twice.
        if waited.callbacks is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._step(Interrupt(cause), as_exception=True)

    # -- driving the generator ------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, as_exception=False)
        else:
            self._step(event.value, as_exception=True)

    def _step(self, value: Any, as_exception: bool) -> None:
        try:
            if as_exception:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt fails the process.
            self.fail(exc)
            return
        except Exception as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process yielded a non-event: {target!r}")
            )
            return
        if target.env is not self.env:
            self._generator.throw(
                SimulationError("process yielded an event from another environment")
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)
