"""One-shot events for the discrete-event kernel.

An :class:`Event` has a three-state lifecycle: *pending* (created, not yet
triggered), *triggered* (scheduled on the environment's agenda with a value
or an exception), and *processed* (its callbacks have run).  Processes wait
on events by yielding them; the kernel resumes the process when the event
is processed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import InvalidDelayError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.environment import Environment

_UNSET = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Events are triggered exactly once, either with :meth:`succeed` (a value)
    or :meth:`fail` (an exception).  Triggering schedules the event on the
    environment agenda at the current simulation time; callbacks run when
    the environment processes it.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _UNSET
        self._ok: bool | None = None

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value/exception."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance when it failed)."""
        if self._value is _UNSET:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event is already processed the callback runs immediately,
        which keeps ``yield``-ing on an old event well defined.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if not delay >= 0:  # rejects negatives and NaN in one test
            raise InvalidDelayError(
                f"Timeout delay must be a non-negative duration, got "
                f"{delay!r}: events cannot fire in the past"
            )
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._unfired = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._unfired -= 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # Only events that have actually fired (been processed by the
        # agenda) — a Timeout is "triggered" from construction but has not
        # occurred until its instant arrives.
        return {e: e.value for e in self.events if e.processed and e.ok}


class AllOf(_Condition):
    """Fires when *all* child events have fired; value maps event->value."""

    def _satisfied(self) -> bool:
        return self._unfired == 0


class AnyOf(_Condition):
    """Fires when *any* child event has fired; value maps event->value."""

    def _satisfied(self) -> bool:
        return self._unfired < len(self.events)
