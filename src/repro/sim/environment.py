"""The discrete-event environment: clock, agenda, and event loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.trace.tracer import NULL_TRACER, Tracer


class Environment:
    """Simulation clock and agenda.

    Events scheduled for the same instant are processed in scheduling
    order (FIFO), which makes runs fully deterministic — important both for
    reproducible benchmarks and for modelling FCFS link arbitration in the
    wormhole simulator, where "first come" must mean the same thing on
    every run.  The FIFO tie-break counter is **per environment**, so two
    environments never share ordering state and replays are reproducible
    regardless of what else ran in the process.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (default 0.0).
    tracer:
        Structured event sink (:mod:`repro.trace`).  Defaults to the
        null tracer; when enabled, the kernel emits ``sim``-category
        instants for event scheduling and agenda steps, and resources
        built on this environment emit their own categories.
    """

    def __init__(self, initial_time: float = 0.0, tracer: Tracer | None = None):
        self._now = float(initial_time)
        self._agenda: list[tuple[float, int, Event]] = []
        self._next_id = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Hot-path guard: one attribute read instead of a method call per
        # kernel event when tracing is off (the common case).
        self._tracing = self.tracer.enabled

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """A fresh pending event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new cooperative process driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event firing once any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- agenda ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Place a triggered event on the agenda ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        heapq.heappush(self._agenda, (self._now + delay, self._next_id, event))
        self._next_id += 1
        if self._tracing:
            self.tracer.instant(
                "sim",
                "schedule",
                self._now,
                track="kernel",
                due=self._now + delay,
                event=type(event).__name__,
            )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._agenda[0][0] if self._agenda else float("inf")

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._agenda:
            raise SimulationError("step() on an empty agenda")
        when, _, event = heapq.heappop(self._agenda)
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("agenda went backwards in time")
        self._now = when
        if self._tracing:
            self.tracer.instant(
                "sim",
                "step",
                when,
                track="kernel",
                event=type(event).__name__,
            )
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        # An event nobody waited on that failed would silently swallow its
        # exception; surface it instead (mirrors simpy's behaviour).
        if not callbacks and event._ok is False:
            raise event.value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the event loop.

        ``until`` may be ``None`` (run until the agenda drains), a time
        (run up to and including that instant), or an :class:`Event`
        (run until it is processed; returns its value).
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._agenda:
                    raise SimulationError(
                        "agenda drained before the awaited event fired"
                    )
                self.step()
            if not stop.ok:
                raise stop.value
            return stop.value

        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise SimulationError(
                f"run(until={horizon}) is in the past (now={self._now})"
            )
        while self._agenda and self._agenda[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self._now = horizon
        return None
