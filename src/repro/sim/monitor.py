"""Timestamped series recording for simulations."""

from __future__ import annotations

from typing import Any, Iterator


class Monitor:
    """Append-only record of ``(time, value)`` observations.

    Simulators use monitors to record per-invocation completion times and
    link occupancy; the metrics layer turns them into the throughput and
    latency series the paper's figures plot.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._times: list[float] = []
        self._values: list[Any] = []

    def record(self, time: float, value: Any) -> None:
        """Append one observation.  Times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"monitor {self.name!r}: time went backwards "
                f"({time} < {self._times[-1]})"
            )
        self._times.append(time)
        self._values.append(value)

    @property
    def times(self) -> list[float]:
        """Observation timestamps (copy)."""
        return list(self._times)

    @property
    def values(self) -> list[Any]:
        """Observation values (copy)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, Any]]:
        return iter(zip(self._times, self._values))

    def last(self) -> tuple[float, Any]:
        """The most recent observation."""
        if not self._times:
            raise IndexError(f"monitor {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def intervals(self) -> list[float]:
        """Differences between successive observation times.

        For a monitor recording output-task completions, this is exactly
        the output-generation-interval series whose constancy defines
        freedom from output inconsistency (paper Eq. 1).
        """
        return [b - a for a, b in zip(self._times, self._times[1:])]
