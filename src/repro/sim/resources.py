"""FCFS resources and FIFO stores for the kernel.

:class:`Resource` models anything with finite simultaneous capacity and a
first-come-first-served wait queue — in this library, a network link under
wormhole routing ("its flow-control hardware resolves contention using a
first-come-first-served policy", paper Section 3) or an application
processor executing one task at a time.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Request(Event):
    """A pending claim on a :class:`Resource`.

    The request event fires when the resource grants the claim.  Use as::

        req = link.request(owner=msg)
        yield req
        ...                      # holding the resource
        link.release(req)
    """

    def __init__(self, resource: "Resource", owner: Any = None):
        super().__init__(resource.env)
        self.resource = resource
        self.owner = owner
        self.request_time = resource.env.now
        self.grant_time: float | None = None


class Resource:
    """A capacity-limited resource with an FCFS wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._holders: list[Request] = []
        self._queue: deque[Request] = deque()
        self._failed = False
        # Cached tracing guard (the environment's tracer is fixed at
        # construction); keeps the request/grant/release hot path at one
        # boolean test when tracing is off.
        self._tracing = env.tracer.enabled

    @property
    def count(self) -> int:
        """Number of granted, unreleased requests."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting to be granted."""
        return len(self._queue)

    @property
    def holders(self) -> tuple[Request, ...]:
        """Snapshot of the currently granted requests."""
        return tuple(self._holders)

    @property
    def failed(self) -> bool:
        """True while an injected fault holds the resource down."""
        return self._failed

    def fail(self) -> None:
        """Take the resource down (fault injection hook).

        New and queued requests stop being granted until :meth:`restore`.
        Holders at the instant of failure keep their grant — the model is
        detection at the next acquisition attempt (packet boundary), not
        corruption of an in-flight transfer; simulators wanting stricter
        semantics interrupt the holder's process themselves.
        """
        self._failed = True

    def restore(self) -> None:
        """Bring a failed resource back and grant any eligible waiters."""
        self._failed = False
        while self._queue and self.count < self.capacity:
            self._grant(self._queue.popleft())

    def request(self, owner: Any = None) -> Request:
        """Claim one unit of capacity; the returned event fires on grant."""
        req = Request(self, owner=owner)
        if self.count < self.capacity and not self._queue and not self._failed:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Release a previously granted request and grant the next waiter."""
        try:
            self._holders.remove(request)
        except ValueError:
            raise SimulationError(
                f"release of a request not holding {self.name or 'resource'}"
            ) from None
        if self._tracing:
            # One occupancy span per completed hold: grant -> release.
            self.env.tracer.span(
                "link",
                "occupy",
                request.grant_time,
                self.env.now,
                track=self.name or repr(self),
                owner=request.owner,
            )
        while self._queue and self.count < self.capacity and not self._failed:
            self._grant(self._queue.popleft())

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (not yet granted) request."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise SimulationError("cancel of a request that is not queued") from None

    def _grant(self, req: Request) -> None:
        self._holders.append(req)
        req.grant_time = self.env.now
        if self._tracing and req.grant_time > req.request_time:
            # The FCFS wait the paper's Section 3 argument is about.
            self.env.tracer.span(
                "link",
                "blocked",
                req.request_time,
                req.grant_time,
                track=self.name or repr(self),
                owner=req.owner,
            )
        req.succeed(req)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"Resource@{id(self):#x}"
        state = " DOWN" if self._failed else ""
        return f"<{label} {self.count}/{self.capacity} queued={self.queue_length}{state}>"


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    Used for message mailboxes: producers ``put`` items, consumers ``yield
    store.get()`` and resume when an item is available.
    """

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
