"""A small simpy-style discrete-event simulation kernel.

The wormhole-routing baseline and the scheduled-routing executor both run
on this kernel.  It provides:

- :class:`~repro.sim.environment.Environment` — the event loop with a
  binary-heap agenda and deterministic FIFO ordering of simultaneous
  events,
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf` —
  one-shot events processes can wait on,
- :class:`~repro.sim.process.Process` — generator-based cooperative
  processes (``yield env.timeout(3)``),
- :class:`~repro.sim.resources.Resource` — an FCFS-queued resource (a
  network link, a processor),
- :class:`~repro.sim.resources.Store` — an unbounded FIFO message queue,
- :class:`~repro.sim.monitor.Monitor` — timestamped series recording.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.monitor import Monitor
from repro.sim.process import Process
from repro.sim.resources import Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Monitor",
    "Process",
    "Request",
    "Resource",
    "Store",
    "Timeout",
]
