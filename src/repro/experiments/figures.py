"""Drivers for the paper's figure families.

- :func:`utilization_comparison` — Figs. 5 and 6: peak utilisation ``U``
  under LSD->MSD routing vs the AssignPaths heuristic, across normalized
  loads.
- :func:`pipeline_comparison` — Figs. 7-10: normalized throughput and
  latency of wormhole routing (with output-inconsistency spikes) and of
  scheduled routing (constant when a feasible schedule exists), across
  normalized loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assign_paths import assign_paths, lsd_assignment
from repro.core.compiler import CompilerConfig, compile_schedule
from repro.core.executor import ScheduledRoutingExecutor
from repro.core.timebounds import compute_time_bounds
from repro.core.utilization import utilization_report
from repro.core.compiler import routed_and_local_messages
from repro.errors import SchedulingError, SimulationError
from repro.experiments.setup import ExperimentSetup
from repro.metrics.series import SpikeStats
from repro.wormhole.simulator import WormholeSimulator


@dataclass(frozen=True)
class UtilizationPoint:
    """One Fig. 5/6 row: peak ``U`` of both assignments at one load."""

    load: float
    tau_in: float
    u_lsd: float
    u_heuristic: float


def _routed_endpoints(setup: ExperimentSetup) -> tuple[list[str], dict]:
    routed, _ = routed_and_local_messages(setup.timing, setup.allocation)
    endpoints = {
        name: (
            setup.allocation[setup.tfg.message(name).src],
            setup.allocation[setup.tfg.message(name).dst],
        )
        for name in routed
    }
    return routed, endpoints


def utilization_comparison(
    setup: ExperimentSetup,
    loads: list[float],
    seed: int = 0,
    max_paths: int = 48,
    max_restarts: int = 4,
) -> list[UtilizationPoint]:
    """Peak utilisation of LSD->MSD vs AssignPaths at each load."""
    routed, endpoints = _routed_endpoints(setup)
    points: list[UtilizationPoint] = []
    for load in loads:
        tau_in = setup.tau_in_for_load(load)
        bounds = compute_time_bounds(setup.timing, tau_in, routed)
        baseline = utilization_report(
            bounds, lsd_assignment(setup.topology, endpoints)
        )
        heuristic = assign_paths(
            bounds,
            setup.topology,
            endpoints,
            seed=seed,
            max_paths=max_paths,
            max_restarts=max_restarts,
        )
        points.append(
            UtilizationPoint(
                load=load,
                tau_in=tau_in,
                u_lsd=baseline.peak,
                u_heuristic=heuristic.report.peak,
            )
        )
    return points


@dataclass(frozen=True)
class PipelinePoint:
    """One Fig. 7-10 row: WR and SR behaviour at one load.

    ``wr_throughput``/``wr_latency`` are ``None`` when the wormhole run
    deadlocked (possible on tori).  ``sr_fail_stage`` is ``None`` on
    success, otherwise the compiler stage that proved infeasibility —
    exactly the annotations the paper's figures carry ("U > 1.0 when
    load > 0.3636", "message-interval allocation fails").
    """

    load: float
    tau_in: float
    wr_throughput: SpikeStats | None
    wr_latency: SpikeStats | None
    wr_oi: bool | None
    wr_deadlock: bool
    sr_feasible: bool
    sr_fail_stage: str | None
    sr_peak_utilization: float | None
    sr_throughput: float | None
    sr_latency: float | None
    wr_recoveries: int = 0

    @property
    def sr_status(self) -> str:
        """Compact status string for reports."""
        if self.sr_feasible:
            return "feasible"
        return f"infeasible ({self.sr_fail_stage})"


def pipeline_comparison(
    setup: ExperimentSetup,
    loads: list[float],
    invocations: int = 40,
    warmup: int = 8,
    compiler_config: CompilerConfig | None = None,
    virtual_channels: int = 1,
    verify_sr: bool = True,
    wr_max_recoveries: int | None = None,
) -> list[PipelinePoint]:
    """Measure WR (simulated) and SR (compiled, optionally replayed) at
    each load — the full Figs. 7-10 protocol.

    ``wr_max_recoveries`` forwards to the wormhole simulator's deadlock-
    recovery budget; runs that exhaust it are reported as deadlocked.
    """
    config = compiler_config or CompilerConfig()
    points: list[PipelinePoint] = []
    for load in loads:
        tau_in = setup.tau_in_for_load(load)

        wr_thr = wr_lat = None
        wr_oi = None
        wr_deadlock = False
        wr_recoveries = 0
        simulator = WormholeSimulator(
            setup.timing,
            setup.topology,
            setup.allocation,
            virtual_channels=virtual_channels,
        )
        try:
            result = simulator.run(
                tau_in, invocations=invocations, warmup=warmup,
                max_recoveries=wr_max_recoveries,
            )
            wr_thr = result.throughput_stats()
            wr_lat = result.latency_stats()
            wr_oi = result.has_oi()
            wr_recoveries = result.extra.get("recoveries", 0)
        except SimulationError:
            wr_deadlock = True

        sr_feasible = False
        sr_stage = None
        sr_peak = None
        sr_thr = sr_lat = None
        try:
            routing = compile_schedule(
                setup.timing, setup.topology, setup.allocation, tau_in, config
            )
            sr_feasible = True
            sr_peak = routing.utilization.peak
            if verify_sr:
                executor = ScheduledRoutingExecutor(
                    routing, setup.timing, setup.topology, setup.allocation
                )
                sr_result = executor.run(invocations=invocations, warmup=warmup)
                sr_thr = sr_result.throughput_stats().mean
                sr_lat = sr_result.latency_stats().mean
            else:
                sr_thr = 1.0
                sr_lat = (
                    setup.timing.asap_latency()
                    / setup.timing.critical_path().length
                )
        except SchedulingError as error:
            sr_stage = error.stage

        points.append(
            PipelinePoint(
                load=load,
                tau_in=tau_in,
                wr_throughput=wr_thr,
                wr_latency=wr_lat,
                wr_oi=wr_oi,
                wr_deadlock=wr_deadlock,
                sr_feasible=sr_feasible,
                sr_fail_stage=sr_stage,
                sr_peak_utilization=sr_peak,
                sr_throughput=sr_thr,
                sr_latency=sr_lat,
                wr_recoveries=wr_recoveries,
            )
        )
    return points
