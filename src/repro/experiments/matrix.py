"""The feasibility matrix: every machine x bandwidth x load verdict.

Condenses the paper's Figs. 7-10 into one table: for each (topology,
bandwidth) pair, which of the twelve load points scheduled routing can
serve and which compiler stage rejected the rest.  The design-sweep
example and the TAB-MATRIX bench both print it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import CompilerConfig, compile_schedule
from repro.errors import SchedulingError
from repro.experiments.setup import standard_setup
from repro.tfg.graph import TaskFlowGraph
from repro.topology.base import Topology

#: Verdict code when the point compiled.
OK = "OK"

#: Abbreviations for compiler failure stages.
STAGE_CODES = {
    "utilization": "U>1",
    "interval-allocation": "ALO",
    "interval-scheduling": "SCH",
    "scheduling": "ERR",
}


@dataclass(frozen=True)
class MatrixRow:
    """Verdicts for one (topology, bandwidth) configuration."""

    topology: str
    bandwidth: float
    verdicts: tuple[str, ...]
    loads: tuple[float, ...]

    @property
    def feasible_count(self) -> int:
        return sum(1 for v in self.verdicts if v == OK)

    @property
    def highest_feasible_load(self) -> float | None:
        feasible = [
            load for load, v in zip(self.loads, self.verdicts) if v == OK
        ]
        return max(feasible) if feasible else None


def feasibility_matrix(
    tfg: TaskFlowGraph,
    topologies: list[Topology],
    bandwidths: list[float],
    loads: list[float],
    config: CompilerConfig | None = None,
    allocation=None,
) -> list[MatrixRow]:
    """Compile the workload at every (topology, bandwidth, load) point.

    ``allocation`` may be a callable ``(tfg, topology) -> Allocation`` to
    override the default sequential placement.
    """
    config = config or CompilerConfig()
    rows: list[MatrixRow] = []
    for bandwidth in bandwidths:
        for topology in topologies:
            kwargs = {}
            if allocation is not None:
                kwargs["allocation"] = allocation(tfg, topology)
            setup = standard_setup(tfg, topology, bandwidth, **kwargs)
            verdicts = []
            for load in loads:
                try:
                    compile_schedule(
                        setup.timing, setup.topology, setup.allocation,
                        setup.tau_in_for_load(load), config,
                    )
                    verdicts.append(OK)
                except SchedulingError as error:
                    verdicts.append(STAGE_CODES.get(error.stage, "ERR"))
            rows.append(
                MatrixRow(
                    topology=topology.name,
                    bandwidth=bandwidth,
                    verdicts=tuple(verdicts),
                    loads=tuple(loads),
                )
            )
    return rows


def format_matrix(rows: list[MatrixRow]) -> str:
    """Render the matrix as a fixed-width table."""
    from repro.report import format_table

    if not rows:
        return "(empty matrix)"
    headers = ["machine", "B"] + [f"{load:.2f}" for load in rows[0].loads]
    table = [
        [row.topology, f"{row.bandwidth:g}"] + list(row.verdicts)
        for row in rows
    ]
    return format_table(headers, table, title="SR feasibility matrix")
