"""The feasibility matrix: every machine x bandwidth x load verdict.

Condenses the paper's Figs. 7-10 into one table: for each (topology,
bandwidth) pair, which of the twelve load points scheduled routing can
serve and which compiler stage rejected the rest.  The design-sweep
example and the TAB-MATRIX bench both print it.

:func:`run_feasibility_matrix` is the full-featured entry point: it can
fan compilation out over worker processes (``jobs=N``; every matrix
point is an independent compilation) and reuse a content-addressed
:class:`~repro.cache.ScheduleCache` so repeated sweeps — including the
infeasible points, via negative entries — skip the LP work entirely.
:func:`feasibility_matrix` keeps the historical serial signature.
"""

from __future__ import annotations

import time
from concurrent.futures import as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping

from repro.cache import CacheStats, ScheduleCache, persist_cache_stats
from repro.core.compiler import CompilerConfig, compile_schedule
from repro.core.pipeline import (
    CHECK_FLAGGED,
    OK,
    STAGE_VERDICT_CODES,
    STATICALLY_REFUTED,
    verdict_code,
)
from repro.errors import SchedulingError
from repro.experiments.setup import standard_setup
from repro.pool import GracefulPool
from repro.tfg.graph import TaskFlowGraph
from repro.topology.base import Topology

#: Back-compat alias — the verdict codes live with the stage pipeline.
STAGE_CODES = STAGE_VERDICT_CODES


@dataclass(frozen=True)
class MatrixRow:
    """Verdicts for one (topology, bandwidth) configuration."""

    topology: str
    bandwidth: float
    verdicts: tuple[str, ...]
    loads: tuple[float, ...]

    @property
    def feasible_count(self) -> int:
        return sum(1 for v in self.verdicts if v == OK)

    @property
    def highest_feasible_load(self) -> float | None:
        feasible = [
            load for load, v in zip(self.loads, self.verdicts) if v == OK
        ]
        return max(feasible) if feasible else None


@dataclass(frozen=True)
class MatrixResult:
    """A computed feasibility matrix plus how it was computed.

    ``cache_stats`` aggregates hit/miss/store counters over every
    compilation (``None`` when no cache was used); on a warm rerun
    ``hit_rate`` approaches 1.0.
    """

    rows: tuple[MatrixRow, ...]
    elapsed_s: float
    jobs: int
    cache_stats: dict[str, float | int] | None = None
    prescreen: bool = False
    #: True when a SIGTERM/SIGINT drained the worker pool mid-sweep:
    #: in-flight cells finished, queued ones carry the "-" verdict.
    interrupted: bool = False

    @property
    def hit_rate(self) -> float:
        if not self.cache_stats:
            return 0.0
        lookups = self.cache_stats["hits"] + self.cache_stats["misses"]
        return self.cache_stats["hits"] / lookups if lookups else 0.0

    @property
    def statically_refuted(self) -> int:
        """Points the prescreen refuted before any LP work ran."""
        return sum(
            1
            for row in self.rows
            for v in row.verdicts
            if v == STATICALLY_REFUTED
        )

    @property
    def lp_refuted(self) -> int:
        """Infeasible points that needed the compiler's LP stages."""
        skip = (OK, CHECK_FLAGGED, STATICALLY_REFUTED)
        return sum(
            1
            for row in self.rows
            for v in row.verdicts
            if v not in skip
        )


def _compile_point(
    tfg: TaskFlowGraph,
    topology: Topology,
    bandwidth: float,
    load: float,
    config: CompilerConfig,
    placed: Mapping[str, int] | None,
    cache: ScheduleCache | None,
    analyze: bool = False,
) -> str:
    """Compile one matrix point and return its verdict code.

    With ``analyze=True`` every feasible schedule additionally runs
    through the independent conformance analyzer (:mod:`repro.check`);
    a flagged schedule turns the verdict from ``OK`` into ``CHK``.
    """
    kwargs = {} if placed is None else {"allocation": placed}
    setup = standard_setup(tfg, topology, bandwidth, **kwargs)
    try:
        routing = compile_schedule(
            setup.timing,
            setup.topology,
            setup.allocation,
            setup.tau_in_for_load(load),
            config,
            cache=cache,
        )
    except SchedulingError as error:
        return verdict_code(error)
    if analyze:
        from repro.check.analyzer import analyze_schedule

        report = analyze_schedule(
            routing.schedule,
            setup.topology,
            timing=setup.timing,
            allocation=setup.allocation,
        )
        if not report.ok:
            return CHECK_FLAGGED
    return OK


def _matrix_cell(payload: tuple) -> tuple[int, str, dict | None]:
    """Worker-process entry: one (topology, bandwidth, load) point.

    Module-level so :class:`ProcessPoolExecutor` can pickle it.  Each
    call opens its own cache handle on the shared directory (the disk
    tier is multi-process safe; the memory tier is per-process) and
    ships its counters back for aggregation.
    """
    (index, tfg, topology, bandwidth, load, config, placed, cache_dir,
     analyze) = payload
    cache = ScheduleCache(cache_dir) if cache_dir is not None else None
    verdict = _compile_point(
        tfg, topology, bandwidth, load, config, placed, cache, analyze
    )
    stats = cache.stats.as_dict() if cache is not None else None
    return index, verdict, stats


def run_feasibility_matrix(
    tfg: TaskFlowGraph,
    topologies: list[Topology],
    bandwidths: list[float],
    loads: list[float],
    config: CompilerConfig | None = None,
    allocation=None,
    jobs: int = 1,
    cache: ScheduleCache | str | Path | None = None,
    analyze: bool = False,
    prescreen: bool = False,
) -> MatrixResult:
    """Compile the workload at every (topology, bandwidth, load) point.

    Parameters
    ----------
    allocation:
        Optional callable ``(tfg, topology) -> Allocation`` overriding
        the default sequential placement (evaluated once per topology,
        in the parent process).
    analyze:
        Run every feasible schedule through the independent conformance
        analyzer (:mod:`repro.check`); flagged points report the
        ``CHK`` verdict instead of ``OK``.
    prescreen:
        Run the static instance diagnoser (:mod:`repro.diagnose`)
        before each compilation; statically refuted points report the
        ``REF`` verdict without any path-assignment or LP work.
        Feasible points are never affected (the prescreen is sound), so
        the matrix's ``OK``/``CHK`` cells are identical with and
        without it.
    jobs:
        Number of worker processes.  ``1`` (default) compiles serially
        in-process; ``N > 1`` fans the points out over a
        :class:`~concurrent.futures.ProcessPoolExecutor` — every matrix
        point is an independent compilation, so this scales to the
        point count.
    cache:
        ``None`` (no caching), a directory path (shared on-disk cache —
        the only form workers can share, required when ``jobs > 1``),
        or an in-process :class:`~repro.cache.ScheduleCache` instance
        (serial runs only).
    """
    config = config or CompilerConfig()
    if prescreen:
        config = replace(config, prescreen=True)
    began = time.perf_counter()

    placements: dict[str, Mapping[str, int] | None] = {}
    for topology in topologies:
        placements[topology.name] = (
            dict(allocation(tfg, topology)) if allocation is not None else None
        )

    points = [
        (topology, bandwidth, load)
        for bandwidth in bandwidths
        for topology in topologies
        for load in loads
    ]

    interrupted = False
    if jobs > 1:
        if isinstance(cache, ScheduleCache):
            raise ValueError(
                "parallel matrix workers cannot share an in-process "
                "ScheduleCache; pass a cache directory instead"
            )
        cache_dir = str(cache) if cache is not None else None
        payloads = [
            (
                i, tfg, topology, bandwidth, load, config,
                placements[topology.name], cache_dir, analyze,
            )
            for i, (topology, bandwidth, load) in enumerate(points)
        ]
        verdicts: list[str] = ["-"] * len(points)
        # A CacheStats accumulator (not a plain counter dict) so the
        # per-stage artifact counters each worker ships back merge
        # alongside the scalar hit/miss totals.
        totals: CacheStats | None = (
            CacheStats() if cache_dir is not None else None
        )
        hooks = (
            [lambda: persist_cache_stats(cache_dir, totals)]
            if cache_dir is not None
            else []
        )
        with GracefulPool(max_workers=jobs, on_shutdown=hooks) as pool:
            pool.install_signal_handlers()
            futures = [pool.submit(_matrix_cell, p) for p in payloads]
            for future in as_completed(futures):
                if future.cancelled():  # drained by SIGTERM/SIGINT
                    continue
                index, verdict, stats = future.result()
                verdicts[index] = verdict
                if totals is not None and stats is not None:
                    totals.merge(stats)
            interrupted = pool.draining
        cache_stats = totals.as_dict() if totals is not None else None
    else:
        cache_dir = (
            str(cache) if isinstance(cache, (str, Path)) else None
        )
        if isinstance(cache, (str, Path)):
            cache = ScheduleCache(cache)
        verdicts = [
            _compile_point(
                tfg, topology, bandwidth, load, config,
                placements[topology.name], cache, analyze,
            )
            for topology, bandwidth, load in points
        ]
        cache_stats = cache.stats.as_dict() if cache is not None else None
        if cache_dir is not None:
            persist_cache_stats(cache_dir, cache_stats)

    rows: list[MatrixRow] = []
    stride = len(loads)
    offset = 0
    for bandwidth in bandwidths:
        for topology in topologies:
            rows.append(
                MatrixRow(
                    topology=topology.name,
                    bandwidth=bandwidth,
                    verdicts=tuple(verdicts[offset:offset + stride]),
                    loads=tuple(loads),
                )
            )
            offset += stride
    return MatrixResult(
        rows=tuple(rows),
        elapsed_s=time.perf_counter() - began,
        jobs=jobs,
        cache_stats=cache_stats,
        prescreen=config.prescreen,
        interrupted=interrupted,
    )


def feasibility_matrix(
    tfg: TaskFlowGraph,
    topologies: list[Topology],
    bandwidths: list[float],
    loads: list[float],
    config: CompilerConfig | None = None,
    allocation=None,
) -> list[MatrixRow]:
    """Compile the workload at every (topology, bandwidth, load) point.

    ``allocation`` may be a callable ``(tfg, topology) -> Allocation`` to
    override the default sequential placement.  The historical serial
    API; see :func:`run_feasibility_matrix` for jobs/cache control.
    """
    result = run_feasibility_matrix(
        tfg, topologies, bandwidths, loads, config=config,
        allocation=allocation,
    )
    return list(result.rows)


def format_matrix(rows: list[MatrixRow]) -> str:
    """Render the matrix as a fixed-width table."""
    from repro.report import format_table

    if not rows:
        return "(empty matrix)"
    headers = ["machine", "B"] + [f"{load:.2f}" for load in rows[0].loads]
    table = [
        [row.topology, f"{row.bandwidth:g}"] + list(row.verdicts)
        for row in rows
    ]
    return format_table(headers, table, title="SR feasibility matrix")


def format_matrix_result(result: MatrixResult) -> str:
    """Render a :class:`MatrixResult` with its run/cache statistics."""
    lines = [format_matrix(list(result.rows))]
    run = f"computed in {result.elapsed_s:.2f}s with jobs={result.jobs}"
    if result.cache_stats is not None:
        s = result.cache_stats
        run += (
            f"; cache: {s['hits']} hits / {s['misses']} misses "
            f"(hit rate {result.hit_rate:.1%})"
        )
    lines.append(run)
    if result.interrupted:
        lines.append(
            "interrupted: the worker pool was drained by a signal; "
            "cells marked '-' were never compiled"
        )
    if result.prescreen:
        lines.append(
            f"prescreen: {result.statically_refuted} point(s) refuted "
            f"statically (REF), {result.lp_refuted} by the compiler's "
            "LP stages"
        )
    return "\n".join(lines)
