"""Experiment drivers regenerating the paper's figures.

Each figure is a function returning structured rows; the benchmark
harness calls these and prints them (see ``benchmarks/``), and the
examples reuse them for smaller demonstrations.  The experiment index
lives in DESIGN.md; paper-vs-measured outcomes are recorded in
EXPERIMENTS.md.
"""

from repro.experiments.setup import ExperimentSetup, standard_setup
from repro.experiments.figures import (
    PipelinePoint,
    UtilizationPoint,
    pipeline_comparison,
    utilization_comparison,
)
from repro.experiments.matrix import (
    MatrixRow,
    feasibility_matrix,
    format_matrix,
)

__all__ = [
    "ExperimentSetup",
    "MatrixRow",
    "PipelinePoint",
    "UtilizationPoint",
    "feasibility_matrix",
    "format_matrix",
    "pipeline_comparison",
    "standard_setup",
    "utilization_comparison",
]
