"""Experiment drivers regenerating the paper's figures.

Each figure is a function returning structured rows; the benchmark
harness calls these and prints them (see ``benchmarks/``), and the
examples reuse them for smaller demonstrations.  The experiment index
lives in DESIGN.md; paper-vs-measured outcomes are recorded in
EXPERIMENTS.md.
"""

from repro.experiments.setup import ExperimentSetup, standard_setup
from repro.experiments.figures import (
    PipelinePoint,
    UtilizationPoint,
    pipeline_comparison,
    utilization_comparison,
)
from repro.experiments.matrix import (
    MatrixResult,
    MatrixRow,
    feasibility_matrix,
    format_matrix,
    format_matrix_result,
    run_feasibility_matrix,
)

__all__ = [
    "ExperimentSetup",
    "MatrixResult",
    "MatrixRow",
    "PipelinePoint",
    "UtilizationPoint",
    "feasibility_matrix",
    "format_matrix",
    "format_matrix_result",
    "pipeline_comparison",
    "run_feasibility_matrix",
    "standard_setup",
    "utilization_comparison",
]
