"""Standard experimental setup matching the paper's Section 6.

The paper fixes application-processor speeds so that ``tau_m / tau_c = 1``
at B = 64 bytes/us; the *same machine* run at B = 128 bytes/us then has
``tau_m / tau_c = 0.5`` (halved message times, unchanged task times).  All
tasks take the same time.  Twelve input periods are swept between
``tau_c`` and ``5 * tau_c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.mapping.allocation import Allocation, sequential_allocation
from repro.tfg.analysis import TFGTiming, speeds_for_ratio
from repro.tfg.graph import TaskFlowGraph
from repro.topology.base import Topology

#: The reference bandwidth at which speeds are calibrated (bytes/us).
REFERENCE_BANDWIDTH = 64.0

Allocator = Callable[[TaskFlowGraph, Topology], Allocation]


@dataclass(frozen=True)
class ExperimentSetup:
    """A fully pinned experiment: workload, machine, placement."""

    tfg: TaskFlowGraph
    topology: Topology
    timing: TFGTiming
    allocation: dict[str, int]

    @property
    def tau_c(self) -> float:
        return self.timing.tau_c

    def tau_in_for_load(self, load: float) -> float:
        """Input period realizing a normalized load ``tau_c / tau_in``."""
        if not 0 < load <= 1:
            raise ValueError(f"normalized load must be in (0, 1], got {load}")
        return self.timing.tau_c / load


def standard_setup(
    tfg: TaskFlowGraph,
    topology: Topology,
    bandwidth: float,
    allocator: Allocator = sequential_allocation,
    allocation: Mapping[str, int] | None = None,
) -> ExperimentSetup:
    """Build the paper-standard setup on a topology at a bandwidth.

    Speeds are calibrated at :data:`REFERENCE_BANDWIDTH` so that every task
    takes exactly ``tau_m(B=64)`` time; running the experiment at
    ``bandwidth=128`` then yields the paper's ``tau_m/tau_c = 0.5`` case
    with identical task times.
    """
    speeds = speeds_for_ratio(tfg, REFERENCE_BANDWIDTH, ratio=1.0)
    timing = TFGTiming(tfg, bandwidth, speeds)
    placed = dict(allocation) if allocation is not None else allocator(tfg, topology)
    return ExperimentSetup(
        tfg=tfg,
        topology=topology,
        timing=timing,
        allocation=placed,
    )
