"""The unified run API: :class:`RunConfig` in, :class:`RunResult` out.

Every way of executing a pipelined TFG — the wormhole simulators, the
scheduled-routing executor, and the faults comparator that drives both —
historically grew its own keyword soup and its own result shape.  This
module is the single contract:

- :class:`RunConfig` is the keyword-only bundle of run parameters
  (invocations, warm-up, seed, fault trace, tracer, ...) accepted
  uniformly by :meth:`ScheduledRoutingExecutor.run`,
  :meth:`WormholeSimulator.run` (and subclasses), the faults
  comparator, and the CLI;
- :class:`RunResult` is the one measured-behaviour shape
  (completions, intervals, latencies, jitter, ``has_oi``, optional
  ``trace``) that metrics, report, and viz code consume.

The deprecated ``PipelineRunResult`` alias and the
``FaultRecoveryReport.sr_post_repair`` property were removed after one
deprecation cycle; see ``docs/api.md`` for the migration table.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.metrics.series import (
    SpikeStats,
    has_output_inconsistency,
    normalized_latency_stats,
    normalized_throughput_stats,
    output_intervals,
)
from repro.trace.tracer import NULL_TRACER, Tracer, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.models import FaultTrace


#: :class:`RunConfig` fields that change the *measured behaviour* of a
#: run (what the paper's figures would show).  Together with
#: :data:`RUN_OBSERVER_FIELDS` this is a complete partition of the
#: dataclass; the ``cache-key`` lint rule cross-checks it statically so
#: a new run knob cannot ship without declaring which side it is on —
#: replay comparisons trust exactly the result-affecting fields.
RUN_RESULT_FIELDS = (
    "invocations",
    "warmup",
    "seed",
    "fault_trace",
    "max_recoveries",
    "allocator",
)

#: :class:`RunConfig` fields that observe a run without changing it.
RUN_OBSERVER_FIELDS = ("tracer",)


@dataclass(frozen=True, kw_only=True)
class RunConfig:
    """Keyword-only bundle of run parameters, shared by every run path.

    Attributes
    ----------
    invocations:
        Number of periodic invocations to execute.
    warmup:
        Leading invocations excluded from statistics while the pipeline
        fills.  Every runner requires ``invocations - warmup >= 4``.
    seed:
        Deterministic seed consumed by the layers above the runner
        (fault-trace generation, random/annealed allocation, compiler
        retries); the runners themselves are deterministic.
    fault_trace:
        Injected machine degradation (link outages, clock drift);
        ``None`` runs the healthy machine.
    tracer:
        Structured event sink (:mod:`repro.trace`).  The default
        :data:`~repro.trace.tracer.NULL_TRACER` records nothing and
        costs one boolean check per potential event.
    max_recoveries:
        Wormhole-only deadlock-recovery budget (``None`` = the
        simulator's default); ignored by the SR executor.
    allocator:
        Task-placement strategy name (``"sequential"``, ``"bfs"``,
        ``"random"``, ``"annealed"``) for layers that build the setup
        themselves (the CLI); runners receiving an explicit allocation
        ignore it.
    """

    invocations: int = 40
    warmup: int = 8
    seed: int = 0
    fault_trace: "FaultTrace | None" = None
    tracer: Tracer = NULL_TRACER
    max_recoveries: int | None = None
    allocator: str | None = None

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)


def resolve_run_config(config: RunConfig | None, **legacy: Any) -> RunConfig:
    """Merge a ``config`` object with legacy per-call keyword arguments.

    Runners keep their pre-:class:`RunConfig` keyword signatures as thin
    shims: any legacy argument explicitly passed (not ``None``) overrides
    the corresponding :class:`RunConfig` field, so old call sites behave
    exactly as before while new ones pass a single ``config``.
    """
    resolved = config if config is not None else RunConfig()
    changes = {key: value for key, value in legacy.items() if value is not None}
    return resolved.replace(**changes) if changes else resolved


@dataclass(frozen=True)
class RunResult:
    """Measured behaviour of one pipelined run (WR and SR alike).

    Attributes
    ----------
    tau_in:
        Input arrival period used for the run.
    completion_times:
        Absolute completion instant of each invocation (all invocations,
        including warm-up).
    warmup:
        Number of leading invocations excluded from the statistics while
        the pipeline fills.
    critical_path_length:
        The TFG's Lambda, the normalized-latency denominator.
    technique:
        ``"wormhole"`` or ``"scheduled"`` — which routing produced the run.
    extra:
        Free-form per-technique diagnostics (recoveries, link busy
        times, fault events...).
    trace:
        The run's :class:`~repro.trace.tracer.TraceRecorder` when the
        run was traced, else ``None``.
    """

    tau_in: float
    completion_times: tuple[float, ...]
    warmup: int
    critical_path_length: float
    technique: str = "wormhole"
    extra: dict = field(default_factory=dict, compare=False)
    trace: TraceRecorder | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if len(self.completion_times) - self.warmup < 3:
            raise ValueError(
                "need at least 3 post-warmup invocations to measure intervals "
                f"(got {len(self.completion_times)} with warmup={self.warmup})"
            )

    # -- measured series -----------------------------------------------------

    @property
    def completions(self) -> tuple[float, ...]:
        """All completion instants (alias of :attr:`completion_times`)."""
        return self.completion_times

    @property
    def measured_completions(self) -> tuple[float, ...]:
        """Completion times after the warm-up window."""
        return self.completion_times[self.warmup:]

    @property
    def intervals(self) -> list[float]:
        """Output-generation intervals (the paper's delta_out series)."""
        return output_intervals(self.measured_completions)

    @property
    def latencies(self) -> list[float]:
        """Per-invocation latency: completion minus that invocation's
        input-arrival instant ``j * tau_in``."""
        return [
            t - (self.warmup + j) * self.tau_in
            for j, t in enumerate(self.measured_completions)
        ]

    # -- paper-normalized statistics ---------------------------------------

    def throughput_stats(self) -> SpikeStats:
        """Normalized throughput spike (tau_in / tau_out)."""
        return normalized_throughput_stats(self.intervals, self.tau_in)

    def latency_stats(self) -> SpikeStats:
        """Normalized latency spike (lambda / Lambda)."""
        return normalized_latency_stats(self.latencies, self.critical_path_length)

    def has_oi(self, rel_tol: float = 1e-6) -> bool:
        """Output inconsistency: output intervals not all equal to tau_in."""
        return has_output_inconsistency(self.intervals, self.tau_in, rel_tol)

    def jitter(self):
        """Magnitude of the output-timing irregularity (post warm-up).

        Returns a :class:`~repro.metrics.jitter.JitterReport`; a run free
        of output inconsistency has zero peak-to-peak jitter.
        """
        from repro.metrics.jitter import jitter_report

        return jitter_report(self.measured_completions, self.tau_in)

    def __repr__(self) -> str:
        thr = self.throughput_stats()
        return (
            f"<{type(self).__name__} {self.technique} tau_in={self.tau_in:.3f} "
            f"throughput=[{thr.minimum:.3f},{thr.mean:.3f},{thr.maximum:.3f}] "
            f"oi={self.has_oi()}>"
        )
