"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
Compile-time scheduling failures carry enough structured detail to explain
*why* a schedule could not be produced (which stage failed and for what
resource), because that diagnosis is itself a result the paper cares about:
scheduled routing "enables prediction of system performance at compile-time
by deciding if the network meets the communication requirements".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TopologyError(ReproError):
    """Invalid topology construction or addressing (bad radix, node id...)."""


class RoutingError(ReproError):
    """A route could not be produced or validated on a topology."""


class TFGError(ReproError):
    """Invalid task-flow graph (cycle, dangling message, bad sizes)."""


class AllocationError(ReproError):
    """A task->node allocation is invalid for the given TFG/topology."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class InvalidDelayError(SimulationError, ValueError):
    """A negative (or non-finite) delay was passed where the kernel needs
    a forward-in-time duration (``Timeout``, ``Environment.schedule``).

    Subclasses both :class:`SimulationError` (the library contract) and
    :class:`ValueError` (the historical type), so existing ``except
    ValueError`` callers keep working."""


class SchedulingError(ReproError):
    """Base class for compile-time scheduled-routing failures.

    Attributes
    ----------
    stage:
        Name of the compiler stage that failed (``"utilization"``,
        ``"path-assignment"``, ``"interval-allocation"``,
        ``"interval-scheduling"``).
    """

    stage = "scheduling"


class StaticallyRefutedError(SchedulingError):
    """The static instance diagnoser proved no schedule can exist.

    Raised by the prescreen stage before any LP work: a
    necessary-condition certificate (forced-link overload, window
    violation, cut saturation...) from :mod:`repro.diagnose` refutes
    the instance outright.  Carries the certificates so the caller can
    *explain* the infeasibility, not just report it.

    Attributes
    ----------
    refutations:
        Tuple of ``Refutation`` payload dicts (kept as plain dicts so
        the error round-trips through the schedule cache without
        importing :mod:`repro.diagnose`).
    """

    stage = "prescreen"

    def __init__(self, refutations: tuple[dict, ...] | list[dict], detail: str = ""):
        self.refutations = tuple(dict(r) for r in refutations)
        kinds = sorted({str(r.get("kind", "?")) for r in self.refutations})
        summary = detail or (
            self.refutations[0].get("detail", "") if self.refutations else ""
        )
        suffix = f": {summary}" if summary else ""
        super().__init__(
            f"statically refuted by {len(self.refutations)} certificate(s) "
            f"[{', '.join(kinds)}]{suffix}"
        )


class UtilizationExceededError(SchedulingError):
    """Peak utilisation U > 1: the TFG's communication requirements exceed
    link capacity at the requested input period, so no feasible schedule
    exists (paper Section 5.1)."""

    stage = "utilization"

    def __init__(self, peak: float, witness: str = ""):
        self.peak = peak
        self.witness = witness
        detail = f" (peak at {witness})" if witness else ""
        super().__init__(
            f"peak utilisation {peak:.4f} > 1: communication requirements "
            f"exceed link capacity{detail}"
        )


class IntervalAllocationError(SchedulingError):
    """The message-interval allocation LP (paper constraints (3)-(4)) is
    infeasible for some maximal subset of messages."""

    stage = "interval-allocation"

    def __init__(self, subset_index: int, detail: str = ""):
        self.subset_index = subset_index
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"message-interval allocation infeasible for maximal subset "
            f"{subset_index}{suffix}"
        )


class IntervalSchedulingError(SchedulingError):
    """An interval's messages cannot be packed into the interval length
    using link-feasible sets (paper Section 5.3)."""

    stage = "interval-scheduling"

    def __init__(self, interval_index: int, required: float, available: float):
        self.interval_index = interval_index
        self.required = required
        self.available = available
        super().__init__(
            f"interval {interval_index} unschedulable: link-feasible packing "
            f"needs {required:.4f} time units but interval length is "
            f"{available:.4f}"
        )


class ScheduleValidationError(ReproError):
    """A computed switching schedule violated an invariant when replayed
    (link contention, missed deadline, wrong delivery)."""


class FaultInjectionError(ReproError):
    """Base class for runtime aborts caused by an *injected fault*.

    Distinct from :class:`ScheduleValidationError` on purpose: a healthy
    schedule that trips over an injected link failure or clock drift is
    not an invalid schedule — it is a valid schedule meeting a broken
    machine.  Callers (the repair engine, the survivability benchmarks)
    catch this hierarchy to start the detection -> repair pipeline.

    Attributes
    ----------
    detection_time:
        Absolute simulation instant at which the fault was observed
        (``None`` when the abort happened outside the event loop).
    """

    def __init__(self, message: str, detection_time: float | None = None):
        super().__init__(message)
        self.detection_time = detection_time


class LinkFailedError(FaultInjectionError):
    """A transmission claimed a link that an injected fault had taken
    down.  Carries the failed link and the message that detected it —
    the inputs the repair engine needs."""

    def __init__(self, link, message_name: str, detection_time: float):
        self.link = link
        self.message_name = message_name
        super().__init__(
            f"link {link} failed: detected by message {message_name!r} "
            f"at t={detection_time:.6f}",
            detection_time,
        )


class FaultedDeadlineError(FaultInjectionError):
    """A delivery missed its destination-task deadline because of an
    injected fault (clock drift eating the margin, or an outage window
    swallowing the transmission slot)."""

    def __init__(self, message_name: str, due: float, actual: float,
                 cause: str = "clock drift"):
        self.message_name = message_name
        self.due = due
        self.actual = actual
        super().__init__(
            f"message {message_name!r} delivery at {actual:.6f} misses "
            f"deadline {due:.6f} under {cause}",
            actual,
        )


class RepairInfeasibleError(FaultInjectionError):
    """The schedule-repair engine could not produce a valid schedule on
    the residual topology — neither local path repair nor a full
    recompilation succeeded (or the failure disconnected a message's
    endpoints)."""

    def __init__(self, detail: str):
        super().__init__(f"schedule repair infeasible: {detail}")
