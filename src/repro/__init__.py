"""repro — scheduled routing for task-level pipelining.

A from-scratch reproduction of Shukla & Agrawal, *Scheduling Pipelined
Communication in Distributed Memory Multiprocessors for Real-time
Applications* (ISCA 1991): wormhole routing's output inconsistency under
task-level pipelining, and the scheduled-routing compiler that eliminates
it with compile-time node switching schedules.

Quickstart
----------
>>> from repro import (
...     binary_hypercube, dvb_tfg, standard_setup, compile_schedule,
... )
>>> setup = standard_setup(dvb_tfg(8), binary_hypercube(6), bandwidth=128.0)
>>> routing = compile_schedule(
...     setup.timing, setup.topology, setup.allocation,
...     tau_in=setup.tau_in_for_load(0.5),
... )
>>> routing.utilization.feasible
True

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
figure-by-figure reproduction harness.
"""

from repro.cache import CacheStats, ScheduleCache, schedule_cache_key
from repro.check import (
    ConformanceReport,
    Finding,
    FuzzReport,
    analyze_schedule,
    mutate_schedule,
    run_fuzz,
)
from repro.core import (
    CommunicationSchedule,
    CompilerConfig,
    ScheduledRouting,
    ScheduledRoutingExecutor,
    assign_paths,
    compile_schedule,
    lsd_assignment,
)
from repro.core.timebounds import compute_time_bounds
from repro.diagnose import (
    Diagnosis,
    Refutation,
    WrReport,
    analyze_wormhole,
    diagnose_instance,
    explain_assignment,
    verify_refutation,
)
from repro.errors import (
    IntervalAllocationError,
    IntervalSchedulingError,
    ReproError,
    ScheduleValidationError,
    SchedulingError,
    SimulationError,
    StaticallyRefutedError,
    UtilizationExceededError,
)
from repro.experiments import (
    ExperimentSetup,
    pipeline_comparison,
    standard_setup,
    utilization_comparison,
)
from repro.core.bounds import FeasibilityBounds, feasibility_bounds
from repro.core.io import load_schedule, save_schedule
from repro.core.verify import VerificationReport, verify_schedule
from repro.metrics.jitter import JitterReport, jitter_report
from repro.mapping import (
    annealed_allocation,
    bfs_allocation,
    random_allocation,
    sequential_allocation,
)
from repro.metrics import SpikeStats, load_sweep
from repro.tfg import (
    Message,
    Task,
    TaskFlowGraph,
    TFGTiming,
    dvb_tfg,
    random_layered_tfg,
    speeds_for_ratio,
)
from repro.topology import (
    GeneralizedHypercube,
    Mesh,
    Torus,
    binary_hypercube,
    enumerate_minimal_paths,
    lsd_to_msd_route,
)
from repro.results import RunConfig, RunResult
from repro.solvers import available_backends, default_backend_name, get_backend
from repro.trace import (
    CompileProfile,
    CompileProfiler,
    TraceRecorder,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.viz import (
    link_occupancy_chart,
    node_gantt,
    sparkline,
    trace_occupancy_chart,
)
from repro.wormhole import (
    AdaptiveWormholeSimulator,
    OiRisk,
    WormholeSimulator,
    predict_oi_risks,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveWormholeSimulator",
    "CacheStats",
    "CommunicationSchedule",
    "CompileProfile",
    "CompileProfiler",
    "CompilerConfig",
    "ConformanceReport",
    "Diagnosis",
    "ExperimentSetup",
    "FeasibilityBounds",
    "Finding",
    "FuzzReport",
    "GeneralizedHypercube",
    "IntervalAllocationError",
    "IntervalSchedulingError",
    "JitterReport",
    "Mesh",
    "OiRisk",
    "Message",
    "Refutation",
    "ReproError",
    "RunConfig",
    "RunResult",
    "ScheduleCache",
    "ScheduleValidationError",
    "ScheduledRouting",
    "ScheduledRoutingExecutor",
    "SchedulingError",
    "SimulationError",
    "SpikeStats",
    "StaticallyRefutedError",
    "TFGTiming",
    "Task",
    "TaskFlowGraph",
    "Torus",
    "TraceRecorder",
    "VerificationReport",
    "UtilizationExceededError",
    "WormholeSimulator",
    "WrReport",
    "analyze_schedule",
    "analyze_wormhole",
    "annealed_allocation",
    "assign_paths",
    "available_backends",
    "bfs_allocation",
    "binary_hypercube",
    "compile_schedule",
    "compute_time_bounds",
    "default_backend_name",
    "diagnose_instance",
    "dvb_tfg",
    "enumerate_minimal_paths",
    "explain_assignment",
    "feasibility_bounds",
    "get_backend",
    "jitter_report",
    "link_occupancy_chart",
    "load_schedule",
    "load_sweep",
    "lsd_assignment",
    "lsd_to_msd_route",
    "mutate_schedule",
    "node_gantt",
    "pipeline_comparison",
    "predict_oi_risks",
    "random_allocation",
    "random_layered_tfg",
    "run_fuzz",
    "save_schedule",
    "schedule_cache_key",
    "sequential_allocation",
    "sparkline",
    "speeds_for_ratio",
    "standard_setup",
    "to_chrome_trace",
    "trace_occupancy_chart",
    "utilization_comparison",
    "verify_refutation",
    "verify_schedule",
    "write_chrome_trace",
    "__version__",
]
