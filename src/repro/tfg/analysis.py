"""Timing analysis of task-flow graphs.

Binds a :class:`~repro.tfg.graph.TaskFlowGraph` to concrete processor
speeds and a link bandwidth, and derives the quantities the paper's
formulation rests on:

- per-task execution times ``C_i / s_i`` and ``tau_c`` (the longest task),
- per-message transmission times ``m_i / B`` and ``tau_m`` (the longest
  message),
- the **ASAP schedule** in which every message is granted a transfer
  window of length ``tau_c`` — "by allowing each message transmission to
  be as long as the longest task, latency may increase, but the maximum
  possible throughput remains the same" (Section 4) — which fixes the
  start/finish instants ``t_s``/``t_f`` that release times and deadlines
  are read from,
- the **critical path** with *actual* message transfer times, whose length
  is the minimum invocation latency (Section 2) and the denominator of the
  paper's normalized latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import TFGError
from repro.tfg.graph import TaskFlowGraph
from repro.units import transmission_time


@dataclass(frozen=True)
class CriticalPath:
    """A maximum-weight input->output chain of tasks and messages.

    ``elements`` alternates task and message names starting and ending
    with tasks; ``length`` is the sum of the execution and transfer times
    along it (the paper's Lambda).
    """

    elements: tuple[str, ...]
    length: float


class TFGTiming:
    """Concrete timing of a TFG on a machine.

    Parameters
    ----------
    tfg:
        The task-flow graph (validated on construction).
    bandwidth:
        Link bandwidth in bytes per microsecond.
    speeds:
        Either a single float (every processor runs at that many
        operations per microsecond) or a mapping ``task name -> speed``.
    message_window:
        Length of the transfer window granted to every message in the
        ASAP schedule.  Defaults to ``tau_c`` per the paper; it must be at
        least ``tau_m`` or the longest message cannot fit its window.
    """

    def __init__(
        self,
        tfg: TaskFlowGraph,
        bandwidth: float,
        speeds: float | Mapping[str, float] = 1.0,
        message_window: float | None = None,
    ):
        tfg.validate()
        self.tfg = tfg
        self.bandwidth = float(bandwidth)
        if self.bandwidth <= 0:
            raise TFGError(f"bandwidth must be positive, got {bandwidth}")
        if isinstance(speeds, Mapping):
            missing = [t.name for t in tfg.tasks if t.name not in speeds]
            if missing:
                raise TFGError(f"speeds missing for tasks {missing}")
            bad = [n for n, s in speeds.items() if s <= 0]
            if bad:
                raise TFGError(f"non-positive speeds for tasks {bad}")
            self._speeds = dict(speeds)
        else:
            if speeds <= 0:
                raise TFGError(f"speed must be positive, got {speeds}")
            self._speeds = {t.name: float(speeds) for t in tfg.tasks}

        self.tau_c = max(self.exec_time(t.name) for t in tfg.tasks)
        self.tau_m = (
            max(self.xmit_time(m.name) for m in tfg.messages)
            if tfg.messages
            else 0.0
        )
        if message_window is None:
            message_window = self.tau_c
        if message_window < self.tau_m:
            raise TFGError(
                f"message window {message_window} is shorter than the longest "
                f"message transmission {self.tau_m}"
            )
        self.message_window = float(message_window)
        self._asap: dict[str, tuple[float, float]] | None = None

    # -- elementary times --------------------------------------------------

    def exec_time(self, task_name: str) -> float:
        """Execution time ``C_i / s_i`` of a task, in microseconds."""
        task = self.tfg.task(task_name)
        return task.ops / self._speeds[task_name]

    def xmit_time(self, message_name: str) -> float:
        """Transmission time ``m_i / B`` of a message, in microseconds."""
        message = self.tfg.message(message_name)
        return transmission_time(message.size_bytes, self.bandwidth)

    def speed(self, task_name: str) -> float:
        """Processor speed bound to a task (operations per microsecond)."""
        self.tfg.task(task_name)
        return self._speeds[task_name]

    # -- ASAP schedule with fixed message windows ----------------------------

    def asap_schedule(self) -> dict[str, tuple[float, float]]:
        """``task name -> (t_s, t_f)`` with every message taking
        :attr:`message_window` time.

        This is the static single-invocation schedule from which scheduled
        routing reads each message's availability instant; a task starts
        when the windows of all its incoming messages have closed.
        """
        if self._asap is not None:
            return dict(self._asap)
        schedule: dict[str, tuple[float, float]] = {}
        for name in self.tfg.topological_order():
            incoming = self.tfg.messages_in(name)
            if incoming:
                start = max(
                    schedule[m.src][1] + self.message_window for m in incoming
                )
            else:
                start = 0.0
            schedule[name] = (start, start + self.exec_time(name))
        self._asap = schedule
        return dict(schedule)

    def asap_latency(self) -> float:
        """Invocation latency of the windowed ASAP schedule — the latency
        scheduled routing achieves when feasible (paper Section 6)."""
        schedule = self.asap_schedule()
        return max(schedule[t.name][1] for t in self.tfg.output_tasks)

    def actual_asap_schedule(self) -> dict[str, tuple[float, float]]:
        """``task name -> (t_s, t_f)`` with *actual* transfer times.

        The contention-free baseline timetable: what one isolated
        invocation would do on an unloaded network.  Used by the
        wormhole OI-risk predictor (the paper's Section 3 conditions are
        phrased over these instants).
        """
        schedule: dict[str, tuple[float, float]] = {}
        for name in self.tfg.topological_order():
            incoming = self.tfg.messages_in(name)
            start = max(
                (
                    schedule[m.src][1] + self.xmit_time(m.name)
                    for m in incoming
                ),
                default=0.0,
            )
            schedule[name] = (start, start + self.exec_time(name))
        return schedule

    # -- critical path with actual transfer times ------------------------------

    def critical_path(self) -> CriticalPath:
        """The maximum-weight chain using *actual* message transfer times.

        Its length is the minimum possible invocation latency (the paper's
        Lambda, Section 2), used to normalize measured latencies.
        """
        best_finish: dict[str, float] = {}
        best_pred: dict[str, tuple[str, str] | None] = {}
        for name in self.tfg.topological_order():
            incoming = self.tfg.messages_in(name)
            start = 0.0
            pred: tuple[str, str] | None = None
            for message in incoming:
                candidate = best_finish[message.src] + self.xmit_time(message.name)
                if candidate > start:
                    start = candidate
                    pred = (message.src, message.name)
            best_finish[name] = start + self.exec_time(name)
            best_pred[name] = pred

        tail = max(
            (t.name for t in self.tfg.output_tasks),
            key=lambda n: best_finish[n],
        )
        chain: list[str] = [tail]
        while best_pred[chain[0]] is not None:
            src, msg = best_pred[chain[0]]  # type: ignore[misc]
            chain.insert(0, msg)
            chain.insert(0, src)
        return CriticalPath(tuple(chain), best_finish[tail])

    def min_period(self) -> float:
        """The smallest feasible input period, ``tau_c``: any faster and
        work accumulates without bound at the slowest task (Section 2)."""
        return self.tau_c

    def __repr__(self) -> str:
        return (
            f"<TFGTiming {self.tfg.name!r}: tau_c={self.tau_c:.3f}us, "
            f"tau_m={self.tau_m:.3f}us, B={self.bandwidth}B/us>"
        )


def speeds_for_ratio(
    tfg: TaskFlowGraph,
    bandwidth: float,
    ratio: float,
) -> dict[str, float]:
    """Per-task speeds making every task take ``tau_m / ratio`` time.

    This reproduces the paper's experimental setup: "Processing speeds of
    AP's of the multicomputer have been selected in such a way that
    tau_m / tau_c = 1 for B = 64 bytes/usec and 0.5 for B = 128" and "all
    tasks are assumed to take the same time" (Section 6).

    >>> from repro.tfg.graph import build_tfg
    >>> g = build_tfg("d", [("a", 10), ("b", 30)], [("m", "a", "b", 128)])
    >>> speeds = speeds_for_ratio(g, bandwidth=64.0, ratio=1.0)
    >>> [round(g.task(n).ops / speeds[n], 6) for n in ("a", "b")]
    [2.0, 2.0]
    """
    if ratio <= 0:
        raise TFGError(f"ratio must be positive, got {ratio}")
    if not tfg.messages:
        raise TFGError("speeds_for_ratio needs at least one message")
    tau_m = max(
        transmission_time(m.size_bytes, bandwidth) for m in tfg.messages
    )
    task_time = tau_m / ratio
    return {t.name: t.ops / task_time for t in tfg.tasks}
