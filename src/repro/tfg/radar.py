"""A radar signal-processing pipeline workload.

The paper motivates task-level pipelining with periodic real-time
processing; artificial vision (the DVB) is its example.  This module adds
a second workload from the same domain family — the classic radar
processing chain — used by tests, an example, and ablations to check that
nothing in the library is DVB-specific:

::

    adc --> beamform_c --> pulse_c --> doppler_c --.          (per channel c)
                                                    +--> cfar --> track
    adc ------------------------------> clutter ---'

Operation counts and message sizes are synthetic but sized like real
corner-turn traffic: the per-channel range/doppler matrices dominate
(2048-byte messages), detection lists are small (256 bytes).
"""

from __future__ import annotations

from repro.errors import TFGError
from repro.tfg.graph import TaskFlowGraph

ADC_OPS = 800.0
CHANNEL_OPS = 600.0
FUSION_OPS = 900.0
TRACK_OPS = 500.0

SAMPLE_BLOCK = 1024.0     # adc -> beamformer, per channel
MATRIX_BLOCK = 2048.0     # corner-turn matrices along the channel chain
CLUTTER_MAP = 1536.0      # adc -> clutter estimator
DETECTION_LIST = 256.0    # cfar -> tracker


def radar_tfg(n_channels: int = 4) -> TaskFlowGraph:
    """The radar chain for ``n_channels`` receive channels.

    ``4 + 3n`` tasks and ``3 + 4n`` messages.

    >>> g = radar_tfg(4)
    >>> g.num_tasks, g.num_messages
    (16, 19)
    >>> [t.name for t in g.input_tasks], [t.name for t in g.output_tasks]
    (['adc'], ['track'])
    """
    if n_channels < 1:
        raise TFGError(f"radar needs at least one channel, got {n_channels}")
    tfg = TaskFlowGraph(name=f"radar-{n_channels}")
    tfg.add_task("adc", ADC_OPS)
    tfg.add_task("clutter", CHANNEL_OPS)
    tfg.add_message("cl_in", "adc", "clutter", CLUTTER_MAP)
    for c in range(n_channels):
        tfg.add_task(f"beam{c}", CHANNEL_OPS)
        tfg.add_task(f"pulse{c}", CHANNEL_OPS)
        tfg.add_task(f"doppler{c}", CHANNEL_OPS)
        tfg.add_message(f"s{c}", "adc", f"beam{c}", SAMPLE_BLOCK)
        tfg.add_message(f"p{c}", f"beam{c}", f"pulse{c}", MATRIX_BLOCK)
        tfg.add_message(f"d{c}", f"pulse{c}", f"doppler{c}", MATRIX_BLOCK)
    tfg.add_task("cfar", FUSION_OPS)
    tfg.add_task("track", TRACK_OPS)
    for c in range(n_channels):
        tfg.add_message(f"m{c}", f"doppler{c}", "cfar", MATRIX_BLOCK)
    tfg.add_message("cl_out", "clutter", "cfar", CLUTTER_MAP)
    tfg.add_message("det", "cfar", "track", DETECTION_LIST)
    tfg.validate()
    return tfg
