"""Task-flow graph data model.

``TFG = {ST, SM}``: a set of tasks, each with an operation count, and a set
of messages, each with a byte size, a source task and a destination task
(paper Section 2).  Identical payloads to different destinations are
distinct messages.  A task sends its messages at the *end* of its
execution, and cannot start before every incoming message has arrived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import TFGError


@dataclass(frozen=True)
class Task:
    """A sequential task: ``ops`` operations executed on one processor."""

    name: str
    ops: float

    def __post_init__(self) -> None:
        if not self.name:
            raise TFGError("task name must be non-empty")
        if self.ops <= 0:
            raise TFGError(f"task {self.name!r}: ops must be positive, got {self.ops}")


@dataclass(frozen=True)
class Message:
    """A message of ``size_bytes`` from task ``src`` to task ``dst``."""

    name: str
    src: str
    dst: str
    size_bytes: float

    def __post_init__(self) -> None:
        if not self.name:
            raise TFGError("message name must be non-empty")
        if self.src == self.dst:
            raise TFGError(f"message {self.name!r}: src and dst are both {self.src!r}")
        if self.size_bytes <= 0:
            raise TFGError(
                f"message {self.name!r}: size must be positive, got {self.size_bytes}"
            )


class TaskFlowGraph:
    """A validated directed acyclic graph of tasks and messages.

    Tasks and messages are registered with :meth:`add_task` /
    :meth:`add_message`; :meth:`validate` (called lazily by the analysis
    layer) checks acyclicity and referential integrity.  Iteration orders
    are insertion orders, so graph construction is deterministic.
    """

    def __init__(self, name: str = "tfg"):
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._messages: dict[str, Message] = {}
        self._out: dict[str, list[str]] = {}
        self._in: dict[str, list[str]] = {}
        self._topo_cache: tuple[str, ...] | None = None

    # -- construction ------------------------------------------------------

    def add_task(self, name: str, ops: float) -> Task:
        """Register a task; names must be unique."""
        if name in self._tasks:
            raise TFGError(f"duplicate task {name!r}")
        task = Task(name, float(ops))
        self._tasks[name] = task
        self._out[name] = []
        self._in[name] = []
        self._topo_cache = None
        return task

    def add_message(self, name: str, src: str, dst: str, size_bytes: float) -> Message:
        """Register a message between two existing tasks."""
        if name in self._messages:
            raise TFGError(f"duplicate message {name!r}")
        for endpoint in (src, dst):
            if endpoint not in self._tasks:
                raise TFGError(
                    f"message {name!r} references unknown task {endpoint!r}"
                )
        message = Message(name, src, dst, float(size_bytes))
        self._messages[name] = message
        self._out[src].append(name)
        self._in[dst].append(name)
        self._topo_cache = None
        return message

    # -- access --------------------------------------------------------------

    @property
    def tasks(self) -> tuple[Task, ...]:
        """All tasks in insertion order."""
        return tuple(self._tasks.values())

    @property
    def messages(self) -> tuple[Message, ...]:
        """All messages in insertion order."""
        return tuple(self._messages.values())

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def num_messages(self) -> int:
        return len(self._messages)

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        try:
            return self._tasks[name]
        except KeyError:
            raise TFGError(f"unknown task {name!r}") from None

    def message(self, name: str) -> Message:
        """Look up a message by name."""
        try:
            return self._messages[name]
        except KeyError:
            raise TFGError(f"unknown message {name!r}") from None

    def messages_out(self, task_name: str) -> tuple[Message, ...]:
        """Messages sent by a task (at the end of its execution)."""
        self.task(task_name)
        return tuple(self._messages[m] for m in self._out[task_name])

    def messages_in(self, task_name: str) -> tuple[Message, ...]:
        """Messages a task must receive before it can start."""
        self.task(task_name)
        return tuple(self._messages[m] for m in self._in[task_name])

    def predecessors(self, task_name: str) -> tuple[Task, ...]:
        """Immediate predecessor tasks."""
        return tuple(self._tasks[m.src] for m in self.messages_in(task_name))

    def successors(self, task_name: str) -> tuple[Task, ...]:
        """Immediate successor tasks."""
        return tuple(self._tasks[m.dst] for m in self.messages_out(task_name))

    @property
    def input_tasks(self) -> tuple[Task, ...]:
        """Tasks with no predecessors; they start on input arrival."""
        return tuple(t for t in self.tasks if not self._in[t.name])

    @property
    def output_tasks(self) -> tuple[Task, ...]:
        """Tasks with no successors; their completion ends an invocation."""
        return tuple(t for t in self.tasks if not self._out[t.name])

    # -- structure ------------------------------------------------------------

    def topological_order(self) -> tuple[str, ...]:
        """Task names in a deterministic topological order.

        Raises :class:`~repro.errors.TFGError` if the graph has a cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        in_degree = {name: len(edges) for name, edges in self._in.items()}
        ready = [name for name in self._tasks if in_degree[name] == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for msg_name in self._out[name]:
                dst = self._messages[msg_name].dst
                in_degree[dst] -= 1
                if in_degree[dst] == 0:
                    ready.append(dst)
        if len(order) != len(self._tasks):
            stuck = sorted(n for n, d in in_degree.items() if d > 0)
            raise TFGError(f"TFG {self.name!r} has a cycle through {stuck}")
        self._topo_cache = tuple(order)
        return self._topo_cache

    def validate(self) -> None:
        """Check global invariants: acyclic, non-empty, has inputs/outputs."""
        if not self._tasks:
            raise TFGError(f"TFG {self.name!r} has no tasks")
        self.topological_order()
        if not self.input_tasks:  # pragma: no cover - implied by acyclicity
            raise TFGError(f"TFG {self.name!r} has no input tasks")
        if not self.output_tasks:  # pragma: no cover - implied by acyclicity
            raise TFGError(f"TFG {self.name!r} has no output tasks")

    def precedes(self, first: str, second: str) -> bool:
        """True when there is a directed task path ``first -> second``."""
        self.task(first)
        self.task(second)
        frontier = [first]
        seen = {first}
        while frontier:
            name = frontier.pop()
            for successor in self.successors(name):
                if successor.name == second:
                    return True
                if successor.name not in seen:
                    seen.add(successor.name)
                    frontier.append(successor.name)
        return False

    def __repr__(self) -> str:
        return (
            f"<TaskFlowGraph {self.name!r}: {self.num_tasks} tasks, "
            f"{self.num_messages} messages>"
        )


def build_tfg(
    name: str,
    tasks: Iterable[tuple[str, float]],
    messages: Iterable[tuple[str, str, str, float]],
) -> TaskFlowGraph:
    """Convenience constructor from plain tuples.

    >>> g = build_tfg("demo", [("a", 10), ("b", 20)], [("m", "a", "b", 64)])
    >>> g.num_tasks, g.num_messages
    (2, 1)
    """
    tfg = TaskFlowGraph(name)
    for task_name, ops in tasks:
        tfg.add_task(task_name, ops)
    for msg_name, src, dst, size in messages:
        tfg.add_message(msg_name, src, dst, size)
    tfg.validate()
    return tfg
