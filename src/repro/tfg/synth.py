"""Seeded random layered task-flow graphs.

Used by the test suite (hypothesis strategies wrap this) and by ablation
benches to exercise the compiler on workloads other than the DVB.
"""

from __future__ import annotations

import random

from repro.errors import TFGError
from repro.tfg.graph import TaskFlowGraph


def random_layered_tfg(
    seed: int,
    layers: int = 4,
    width: int = 4,
    edge_probability: float = 0.5,
    ops_range: tuple[float, float] = (100.0, 2000.0),
    size_range: tuple[float, float] = (128.0, 3200.0),
    name: str | None = None,
) -> TaskFlowGraph:
    """A random DAG organised in layers with forward edges only.

    Every non-input task is guaranteed at least one incoming message and
    every non-output task at least one outgoing message, so the graph has
    no isolated stages and pipelining is well defined.

    >>> g = random_layered_tfg(seed=7, layers=3, width=2)
    >>> g.validate()
    >>> all(g.messages_in(t.name) for t in g.tasks if t not in g.input_tasks)
    True
    """
    if layers < 2:
        raise TFGError(f"need at least 2 layers, got {layers}")
    if width < 1:
        raise TFGError(f"need width >= 1, got {width}")
    if not 0.0 <= edge_probability <= 1.0:
        raise TFGError(f"edge probability out of [0,1]: {edge_probability}")
    rng = random.Random(seed)
    tfg = TaskFlowGraph(name or f"synth-{seed}")

    grid: list[list[str]] = []
    for layer in range(layers):
        row = []
        for slot in range(width):
            task_name = f"t{layer}_{slot}"
            tfg.add_task(task_name, rng.uniform(*ops_range))
            row.append(task_name)
        grid.append(row)

    msg_index = 0

    def connect(src: str, dst: str) -> None:
        nonlocal msg_index
        tfg.add_message(f"m{msg_index}", src, dst, rng.uniform(*size_range))
        msg_index += 1

    for layer in range(1, layers):
        for dst in grid[layer]:
            sources = [s for s in grid[layer - 1] if rng.random() < edge_probability]
            if not sources:
                sources = [rng.choice(grid[layer - 1])]
            for src in sources:
                connect(src, dst)
    # Guarantee every non-output task feeds something downstream.
    for layer in range(layers - 1):
        for src in grid[layer]:
            if not tfg.messages_out(src):
                connect(src, rng.choice(grid[layer + 1]))

    tfg.validate()
    return tfg


def chain_tfg(
    num_tasks: int,
    ops: float = 400.0,
    size_bytes: float = 1024.0,
    name: str = "chain",
) -> TaskFlowGraph:
    """A simple linear pipeline ``t0 -> t1 -> ... -> t(n-1)``.

    The smallest TFG family that pipelines non-trivially; used widely in
    unit tests and as the substrate of the Section-3 OI construction.
    """
    if num_tasks < 1:
        raise TFGError(f"need at least one task, got {num_tasks}")
    tfg = TaskFlowGraph(name)
    for i in range(num_tasks):
        tfg.add_task(f"t{i}", ops)
    for i in range(num_tasks - 1):
        tfg.add_message(f"m{i}", f"t{i}", f"t{i + 1}", size_bytes)
    tfg.validate()
    return tfg


def fan_tfg(
    fan: int,
    ops: float = 400.0,
    size_bytes: float = 1024.0,
    name: str = "fan",
) -> TaskFlowGraph:
    """Fan-out/fan-in: one source, ``fan`` parallel stages, one sink."""
    if fan < 1:
        raise TFGError(f"need fan >= 1, got {fan}")
    tfg = TaskFlowGraph(name)
    tfg.add_task("src", ops)
    tfg.add_task("sink", ops)
    for i in range(fan):
        tfg.add_task(f"mid{i}", ops)
        tfg.add_message(f"out{i}", "src", f"mid{i}", size_bytes)
        tfg.add_message(f"in{i}", f"mid{i}", "sink", size_bytes)
    tfg.validate()
    return tfg
