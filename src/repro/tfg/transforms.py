"""Structure-preserving transformations of task-flow graphs.

Partitioning — choosing the grain of parallelism — happens *before* the
pipeline of the paper ("partitioning techniques attempt to minimize the
communication overhead", Section 1).  These transforms let experiments
explore that axis on the same workloads:

- :func:`merge_tasks` — fuse two tasks into one (their connecting
  messages become local and disappear),
- :func:`merge_linear_chains` — coarsen every single-in/single-out chain,
  the classic granularity knob,
- :func:`scale_message_sizes` — scale the communication volume,
- :func:`level_decomposition` — ASAP levels, for allocation heuristics.

All transforms return new graphs; inputs are never mutated.
"""

from __future__ import annotations

from repro.errors import TFGError
from repro.tfg.graph import TaskFlowGraph


def merge_tasks(
    tfg: TaskFlowGraph,
    first: str,
    second: str,
    merged_name: str | None = None,
) -> TaskFlowGraph:
    """Fuse ``second`` into ``first``.

    The merged task's operation count is the sum; messages between the
    two disappear (they become memory traffic inside one node); all other
    endpoints are redirected.  Raises :class:`~repro.errors.TFGError` if
    the fusion would create a cycle (i.e. another path connects the two
    tasks around the direct edge).
    """
    task_a = tfg.task(first)
    task_b = tfg.task(second)
    if first == second:
        raise TFGError(f"cannot merge {first!r} with itself")
    name = merged_name or first
    result = TaskFlowGraph(name=f"{tfg.name}+merge")
    for task in tfg.tasks:
        if task.name == first:
            result.add_task(name, task_a.ops + task_b.ops)
        elif task.name != second:
            result.add_task(task.name, task.ops)

    def redirect(endpoint: str) -> str:
        return name if endpoint in (first, second) else endpoint

    for message in tfg.messages:
        src = redirect(message.src)
        dst = redirect(message.dst)
        if src == dst:
            continue  # now internal to the merged task
        result.add_message(message.name, src, dst, message.size_bytes)
    try:
        result.validate()
    except TFGError as error:
        raise TFGError(
            f"merging {first!r} and {second!r} creates a cycle: {error}"
        ) from error
    return result


def merge_linear_chains(tfg: TaskFlowGraph) -> TaskFlowGraph:
    """Coarsen every maximal linear chain into a single task.

    A chain link is a message whose source has exactly one successor and
    whose destination has exactly one predecessor — fusing across it
    removes communication without reducing parallelism.  Chains are
    collapsed repeatedly until none remain.
    """
    current = tfg
    while True:
        fusable = None
        for message in current.messages:
            if (
                len(current.messages_out(message.src)) == 1
                and len(current.messages_in(message.dst)) == 1
            ):
                fusable = message
                break
        if fusable is None:
            return current
        current = merge_tasks(current, fusable.src, fusable.dst)


def scale_message_sizes(tfg: TaskFlowGraph, factor: float) -> TaskFlowGraph:
    """A copy of the graph with every message size scaled by ``factor``."""
    if factor <= 0:
        raise TFGError(f"scale factor must be positive, got {factor}")
    result = TaskFlowGraph(name=f"{tfg.name}x{factor:g}")
    for task in tfg.tasks:
        result.add_task(task.name, task.ops)
    for message in tfg.messages:
        result.add_message(
            message.name, message.src, message.dst,
            message.size_bytes * factor,
        )
    result.validate()
    return result


def level_decomposition(tfg: TaskFlowGraph) -> list[tuple[str, ...]]:
    """Tasks grouped by ASAP level (level 0 = input tasks).

    Levels are a cheap allocation hint: tasks in one level never
    communicate with each other and run concurrently in the pipeline.
    """
    level: dict[str, int] = {}
    for name in tfg.topological_order():
        incoming = tfg.messages_in(name)
        level[name] = (
            0 if not incoming
            else 1 + max(level[m.src] for m in incoming)
        )
    depth = max(level.values(), default=0)
    groups: list[list[str]] = [[] for _ in range(depth + 1)]
    for name in tfg.topological_order():
        groups[level[name]].append(name)
    return [tuple(group) for group in groups]
