"""The DARPA Vision Benchmark (DVB) task-flow graph — paper Fig. 1.

The paper's workload is a TFG for model-based object recognition of a
hypothetical object [WRHR88], parameterized by the number ``n`` of object
models; "the number of operations is estimated from the data supplied with
the sequential implementation and the data transferred is estimated from
the size of data structures".

Reconstruction note (documented per DESIGN.md Section 3): the scanned
figure is only partially legible.  What is legible — an input stage of
1925 operation-units fanning out to ``n`` parallel 400-unit stages, and
message size classes ``a=192, b=d=f=1536, c=3200, e=1728, g=h=768, i=384``
bytes — is preserved exactly.  The stage names and the exact wiring of the
convergence stages are a faithful-in-shape reconstruction of a model-based
recognition pipeline: low-level processing, feature extraction, per-model
matching/pose/probing, and fused verification/decision.  The performance
study is insensitive to the exact wiring because the paper sets all task
times equal (Section 6); what matters is the fan-out degree, the path
lengths after allocation, and the spread of message sizes, all of which
this reconstruction keeps.
"""

from __future__ import annotations

from repro.errors import TFGError
from repro.tfg.graph import TaskFlowGraph

#: Operation counts legible in Fig. 1 (thousands of operations).
LOWLEVEL_OPS = 1925.0
STAGE_OPS = 400.0

#: Message size classes legible in Fig. 1, in bytes.
SIZE_A = 192.0     # image features to the extraction stage
SIZE_B = 1536.0    # extracted features broadcast to each model matcher
SIZE_C = 3200.0    # match candidate sets (the largest message, tau_m)
SIZE_D = 1536.0    # pose hypotheses
SIZE_E = 1728.0    # probe results into fusion
SIZE_F = 1536.0    # fused hypothesis set to verification
SIZE_G = 768.0     # per-model match scores (skip edge to verification)
SIZE_H = 768.0     # verified hypotheses to decision
SIZE_I = 384.0     # fusion summary to decision (skip edge)


def dvb_tfg(n_models: int = 8) -> TaskFlowGraph:
    """The DVB recognition TFG for ``n_models`` object models.

    Structure (tasks x count / messages x count):

    ::

        lowlevel(1925) --a--> extract(400)
        extract --b_k--> match_k(400)          k = 0..n-1
        match_k --c_k--> pose_k(400)
        pose_k  --d_k--> probe_k(400)
        probe_k --e_k--> fuse(400)
        match_k --g_k--> verify(400)
        fuse    --f---> verify
        verify  --h---> decide(400)
        fuse    --i---> decide

    giving ``5 + 3n`` tasks and ``4 + 5n`` messages; ``n = 8`` fits a
    64-node machine with one task per node and room to spare, ``n = 16``
    nearly fills it.

    >>> g = dvb_tfg(8)
    >>> g.num_tasks, g.num_messages
    (29, 44)
    >>> [t.name for t in g.input_tasks], [t.name for t in g.output_tasks]
    (['lowlevel'], ['decide'])
    """
    if n_models < 1:
        raise TFGError(f"DVB needs at least one object model, got {n_models}")
    tfg = TaskFlowGraph(name=f"dvb-{n_models}")
    tfg.add_task("lowlevel", LOWLEVEL_OPS)
    tfg.add_task("extract", STAGE_OPS)
    tfg.add_message("a", "lowlevel", "extract", SIZE_A)
    for k in range(n_models):
        tfg.add_task(f"match{k}", STAGE_OPS)
        tfg.add_task(f"pose{k}", STAGE_OPS)
        tfg.add_task(f"probe{k}", STAGE_OPS)
        tfg.add_message(f"b{k}", "extract", f"match{k}", SIZE_B)
        tfg.add_message(f"c{k}", f"match{k}", f"pose{k}", SIZE_C)
        tfg.add_message(f"d{k}", f"pose{k}", f"probe{k}", SIZE_D)
    tfg.add_task("fuse", STAGE_OPS)
    tfg.add_task("verify", STAGE_OPS)
    tfg.add_task("decide", STAGE_OPS)
    for k in range(n_models):
        tfg.add_message(f"e{k}", f"probe{k}", "fuse", SIZE_E)
        tfg.add_message(f"g{k}", f"match{k}", "verify", SIZE_G)
    tfg.add_message("f", "fuse", "verify", SIZE_F)
    tfg.add_message("h", "verify", "decide", SIZE_H)
    tfg.add_message("i", "fuse", "decide", SIZE_I)
    tfg.validate()
    return tfg
