"""Task-flow graphs (TFGs) — the paper's application model (Section 2).

A TFG is a directed acyclic graph whose vertices are sequential tasks and
whose edges are messages; pipelining executes the whole TFG once per
periodic input arrival.  This package provides:

- :class:`~repro.tfg.graph.TaskFlowGraph` with :class:`~repro.tfg.graph.Task`
  and :class:`~repro.tfg.graph.Message`,
- :class:`~repro.tfg.analysis.TFGTiming` — execution/transmission times,
  the ASAP schedule with per-message windows, and critical paths,
- :func:`~repro.tfg.dvb.dvb_tfg` — the DARPA Vision Benchmark workload of
  the paper's Fig. 1 (reconstructed; see module docstring),
- :func:`~repro.tfg.synth.random_layered_tfg` — seeded random workloads,
- :mod:`~repro.tfg.io` — dict/JSON round-tripping.
"""

from repro.tfg.analysis import CriticalPath, TFGTiming, speeds_for_ratio
from repro.tfg.dvb import dvb_tfg
from repro.tfg.graph import Message, Task, TaskFlowGraph
from repro.tfg.io import tfg_from_dict, tfg_to_dict
from repro.tfg.synth import random_layered_tfg

__all__ = [
    "CriticalPath",
    "Message",
    "TFGTiming",
    "Task",
    "TaskFlowGraph",
    "dvb_tfg",
    "random_layered_tfg",
    "speeds_for_ratio",
    "tfg_from_dict",
    "tfg_to_dict",
]
